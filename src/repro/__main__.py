"""Command-line demo driver.

Usage::

    python -m repro                 # run the built-in demo
    python -m repro --concurrent 4  # the multi-query workload demo:
                                    # N queries share one simulation,
                                    # printing the admission/grant
                                    # timeline and the speed-up over
                                    # back-to-back execution
    python -m repro --concurrent 8 --shared
                                    # same, with shared-work folding:
                                    # identical subplans of concurrent
                                    # queries execute once and fan out
                                    # to every subscriber (also prints
                                    # the gain over private execution)
    python -m repro --figures       # regenerate the paper's figures
                                    # (alias of repro.bench.reporting)
    python -m repro run --explain --trace-out trace.json \\
                        --events-out events.jsonl
                                    # run one observed query: scheduler
                                    # explain + Chrome trace (open in
                                    # https://ui.perfetto.dev) + JSONL
                                    # event log
    python -m repro diagnose --theta 0.8 --record --run-id baseline
                                    # run the skewed-join diagnostics
                                    # demo: critical path + imbalance
                                    # doctor, optionally persisted to
                                    # the run registry
    python -m repro diagnose --from-events events.jsonl
                                    # diagnose a previously exported
                                    # JSONL event log instead
    python -m repro compare baseline candidate --gate
                                    # A/B two registry records; --gate
                                    # exits 1 on a regression
    python -m repro serve --overload 2 --policy edf --check
                                    # open-loop serving demo: seeded
                                    # arrivals at 2x saturation through
                                    # the overload-protection layer;
                                    # --check gates on goodput >= 80%
                                    # of saturation

The historic flag spellings (``--explain`` / ``--trace-out`` / … and
``--diagnose`` / ``--from-events`` without a subcommand) keep working
as aliases of ``run`` and ``diagnose``.

The demo loads two Wisconsin relations, runs each supported query
shape end to end and prints the plans, schedules and virtual-time
metrics — a two-minute tour of the system.
"""

from __future__ import annotations

import argparse
import sys

from repro import DBS3, generate_wisconsin
from repro.bench import reporting

#: The observed-run default query (a pipelined join, so the export
#: shows both queue disciplines: triggered transmit + pipelined join).
DEFAULT_OBSERVED_SQL = "SELECT * FROM A JOIN B ON A.unique1 = B.unique1"


def demo() -> None:
    """Run the guided tour: DDL, four query shapes, metrics."""
    print("DBS3 reproduction demo — EDBT'96 adaptive parallel execution\n")
    db = DBS3(processors=32)
    print("Loading Wisconsin relations A (20K tuples) and B (2K tuples),")
    print("hash partitioned on unique1 into 50 fragments each...\n")
    db.create_table(generate_wisconsin("A", 20_000, seed=1), "unique1", 50)
    db.create_table(generate_wisconsin("B", 2_000, seed=2), "unique1", 50)

    queries = [
        "SELECT unique1, unique2 FROM A WHERE unique1 < 200",
        "SELECT * FROM A JOIN B ON A.unique1 = B.unique1",
        ("SELECT A.unique2, B.unique2 FROM A JOIN B "
         "ON A.unique1 = B.unique1 WHERE B.four = 0"),
        "SELECT two, COUNT(*), AVG(unique1) FROM A GROUP BY two",
    ]
    for sql in queries:
        print(f"SQL> {sql}")
        print(db.explain(sql))
        result = db.query(sql)
        print(f"  -> {result.cardinality} rows, "
              f"{result.response_time:.3f}s virtual response time, "
              f"{result.execution.total_threads} threads\n")

    print("Every number above is *virtual time* on the modelled KSR1-class")
    print("machine; the rows are real relational results.  See examples/")
    print("for skew handling, partitioning tuning and the Allcache model.")


def concurrent_demo(count: int, shared: bool = False, report: bool = False,
                    events_out: str | None = None, monitors: bool = False,
                    profile: bool = False, prom_out: str | None = None,
                    profile_check: float | None = None,
                    policy: str = "static") -> int:
    """Run *count* queries concurrently in one shared simulation."""
    from repro.adapt.policy import SchedulingPolicy
    from repro.engine.executor import ObservabilityOptions
    from repro.obs.bus import QUERY_ADMIT, QUERY_FINISH, QUERY_GRANT
    from repro.obs.monitor import default_monitors
    from repro.workload.options import WorkloadOptions

    observe = report or events_out is not None or prom_out is not None
    rules = default_monitors() if monitors else ()
    scheduling = SchedulingPolicy(policy=policy)

    print(f"DBS3 concurrent workload demo — {count} queries, "
          f"one shared simulation"
          + (", shared-work folding ON" if shared else "")
          + (", monitors ON" if monitors else "")
          + (", self-profiler ON" if profile else "")
          + (", adaptive scheduling ON" if scheduling.adaptive else "")
          + "\n")
    db = DBS3(processors=72)
    db.create_table(generate_wisconsin("A", 12_000, seed=1), "unique1", 60)
    db.create_table(generate_wisconsin("B", 1_200, seed=2), "unique1", 60)
    db.create_table(generate_wisconsin("C", 9_000, seed=3), "unique1", 60)
    db.create_table(generate_wisconsin("D", 900, seed=4), "unique1", 60)
    shapes = [
        "SELECT * FROM A JOIN B ON A.unique1 = B.unique1",
        "SELECT * FROM C JOIN D ON C.unique1 = D.unique1",
        "SELECT * FROM A JOIN D ON A.unique1 = D.unique1",
        "SELECT * FROM C JOIN B ON C.unique1 = B.unique1",
    ]
    queries = [shapes[i % len(shapes)] for i in range(count)]

    serial = 0.0
    for sql in queries:
        serial += db.query(sql).execution.response_time

    def run_session(fold: bool):
        # The admission bound is lifted to the query count so every
        # duplicate arrives inside the foldability window (a queued
        # query cannot fold onto work that already started); the
        # private reference run gets the same bound for a fair gain.
        session = db.session(options=WorkloadOptions(
            max_concurrent=count, shared=fold, scheduling=scheduling,
            observability=ObservabilityOptions(
                observe=observe, monitors=rules, profile=profile)))
        for sql in queries:
            session.submit(sql)
        return session.run()

    private_makespan = None
    if shared:
        private_makespan = run_session(False).makespan
        result = run_session(True)
    else:
        session = db.session(options=WorkloadOptions(
            scheduling=scheduling,
            observability=ObservabilityOptions(
                observe=observe, monitors=rules, profile=profile)))
        for sql in queries:
            session.submit(sql)
        result = session.run()

    print("timeline (virtual time):")
    interesting = {QUERY_ADMIT: "admit ", QUERY_FINISH: "finish",
                   QUERY_GRANT: "grant "}
    for event in result.bus.events:
        label = interesting.get(event.kind)
        if label is None:
            continue
        detail = ", ".join(f"{k}={v}" for k, v in (event.data or {}).items())
        print(f"  t={event.t:8.4f}  {label}  {event.operation:<4} {detail}")
    print("\nper-query response times (from submission):")
    for tag in result.order:
        execution = result.execution(tag)
        folded = sum(1 for op in execution.operations.values()
                     if op.cost_share < 1.0)
        note = (f", {folded} shared op{'s' if folded != 1 else ''}"
                if folded else "")
        print(f"  {tag}: {execution.response_time:.4f}s, "
              f"peak {execution.total_threads} threads{note}")
    print(f"\nback-to-back serial : {serial:.4f}s")
    print(f"concurrent makespan : {result.makespan:.4f}s "
          f"({serial / result.makespan:.2f}x)")
    if private_makespan is not None:
        print(f"private makespan    : {private_makespan:.4f}s — folding "
              f"gains {private_makespan / result.makespan:.2f}x on top of "
              f"concurrency")
    print(f"throughput          : {result.throughput:.2f} queries/s")
    if report:
        print()
        print(result.report().render())
    if scheduling.adaptive:
        print()
        if result.decisions is not None and len(result.decisions):
            print(result.decisions.render())
        else:
            print("adaptive controller: no mid-flight decisions (no "
                  "queue-wait or Fig 12 signal fired)")
    if monitors:
        print()
        print(result.alerts.render())
    if profile:
        print()
        print(result.profile.render())
    if prom_out:
        with open(prom_out, "w", encoding="utf-8") as handle:
            handle.write(result.metrics.render_prom())
        print(f"\nwrote Prometheus text exposition to {prom_out}")
    if events_out:
        from repro.obs.export import write_workload_jsonl
        records = write_workload_jsonl(result, events_out)
        print(f"\nwrote {records} workload JSONL records to {events_out}")
    if profile_check is not None:
        coverage = result.profile.coverage() if profile else 0.0
        if coverage < profile_check:
            print(f"\nPROFILE COVERAGE GATE FAILED: attributed "
                  f"{coverage:.1%} of engine wall time "
                  f"(need >= {profile_check:.1%})")
            return 1
        print(f"\nprofile coverage gate: attributed {coverage:.1%} "
              f"of engine wall time (>= {profile_check:.1%})")
    return 0


def observed_run(sql: str, trace_out: str | None, events_out: str | None,
                 metrics_out: str | None, explain: bool,
                 threads: int | None = None) -> int:
    """Run one query with full observability and export the results."""
    from repro.engine.executor import ExecutionOptions, ObservabilityOptions
    from repro.obs.explain import ScheduleExplanation
    from repro.obs.export import (
        metrics_snapshot,
        verify_against_metrics,
        write_chrome_trace,
        write_jsonl,
    )

    db = DBS3(processors=32, options=ExecutionOptions(
        observability=ObservabilityOptions(observe=True)))
    # B is partitioned on unique2, so a join on unique1 redistributes
    # it — the observed run then shows both queue disciplines: the
    # triggered transmit and the pipelined join it feeds.
    db.create_table(generate_wisconsin("A", 8_000, seed=1), "unique1", 40)
    db.create_table(generate_wisconsin("B", 800, seed=2), "unique2", 40)
    print(f"SQL> {sql}")
    compiled = db.compile(sql)
    explanation = ScheduleExplanation()
    schedule = db.scheduler.schedule(compiled.plan, threads,
                                     explain=explanation)
    execution = db.executor.execute(compiled.plan, schedule)
    if explain:
        print(explanation.render())
        print()
    print(metrics_snapshot(execution))
    problems = verify_against_metrics(execution)
    if problems:
        print("\nOBS/METRICS MISMATCH:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    if events_out:
        records = write_jsonl(execution, events_out)
        print(f"\nwrote {records} JSONL records to {events_out}")
    if trace_out:
        count = write_chrome_trace(execution, trace_out)
        print(f"wrote {count} Chrome trace events to {trace_out} "
              f"(load in https://ui.perfetto.dev)")
    if metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as handle:
            handle.write(metrics_snapshot(execution) + "\n")
        print(f"wrote metrics snapshot to {metrics_out}")
    return 0


def diagnose_workload_log(path: str, run) -> int:
    """Post-mortem a reloaded *workload* JSONL log.

    Replays the schema-4 records (alerts, profile) and surfaces the
    ``verify_spans`` / ``verify_workload_jsonl`` self-audits that
    otherwise only run inside tests; exits nonzero on any invariant
    violation so CI can gate on a recorded run.
    """
    from types import SimpleNamespace

    from repro.obs.alerts import Alert, AlertBus
    from repro.obs.export import verify_workload_jsonl
    from repro.obs.spans import assemble_spans, verify_spans
    from repro.prof.profiler import EngineProfiler

    meta = run.meta
    print(f"workload event log: {path}")
    print(f"  schema {run.schema}, {meta.get('queries')} queries, "
          f"makespan {meta.get('makespan'):.4f}s virtual, "
          f"statuses {meta.get('statuses')}")

    if run.alerts:
        bus = AlertBus()
        for record in run.alerts:
            bus.add(Alert.from_json(record))
        print()
        print(bus.render())
    else:
        print("\nno alert records (the run carried no monitor rules)")
    if run.profile is not None:
        profile = EngineProfiler.from_json(run.profile)
        print()
        print(profile.render())

    from repro.obs.bus import SCHEDULE_RESPLIT, SCHEDULE_SWITCH
    decisions = [e for e in run.events
                 if e.kind in (SCHEDULE_RESPLIT, SCHEDULE_SWITCH)]
    if decisions:
        print("\nadaptive scheduling decisions:")
        for event in decisions:
            data = event.data or {}
            if event.kind == SCHEDULE_RESPLIT:
                print(f"  t={event.t:8.4f}  resplit {data.get('tag')}"
                      f"/w{data.get('wave')}: {data.get('before')} -> "
                      f"{data.get('after')} (drivers "
                      f"{data.get('drivers')}, boost "
                      f"{data.get('boost'):.2f})")
            else:
                print(f"  t={event.t:8.4f}  switch  "
                      f"{data.get('operation')}: {data.get('before')} "
                      f"-> {data.get('after')} (observed skew on "
                      f"{data.get('observed')})")

    # assemble_spans only reads ``bus.events`` — the reloaded events
    # are live Event objects, so the span model rebuilds faithfully.
    problems: list[str] = []
    try:
        spans = assemble_spans(SimpleNamespace(events=run.events))
        problems += verify_spans(spans, makespan=meta.get("makespan"))
    except Exception as error:  # truncated/garbled stream
        problems.append(f"span assembly failed: {error}")
    problems += verify_workload_jsonl(run)
    print()
    if problems:
        print("WORKLOAD LOG SELF-AUDIT FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("workload log self-audit: spans and metric snapshots are "
          "consistent (verify_spans + verify_workload_jsonl clean)")
    return 0


def diagnose_run(args: argparse.Namespace) -> int:
    """Diagnose a run (freshly executed or a reloaded JSONL log)."""
    from repro.bench.runners import default_machine
    from repro.bench.workloads import make_join_database
    from repro.diag import RunRecord, RunRegistry, diagnose
    from repro.engine.executor import (
        ExecutionOptions,
        Executor,
        ObservabilityOptions,
    )
    from repro.lera.plans import assoc_join_plan
    from repro.obs.explain import ScheduleExplanation
    from repro.obs.export import write_jsonl
    from repro.scheduler.adaptive import AdaptiveScheduler

    explanation_json = None
    workload: dict = {}
    execution = None
    if args.from_events:
        from repro.obs.export import read_jsonl
        run = read_jsonl(args.from_events)
        if run.is_workload:
            return diagnose_workload_log(args.from_events, run)
        diagnosis = diagnose(run)
        workload = {"source": str(args.from_events)}
    else:
        # The Figure 12 setup: AssocJoin over a Zipf-skewed stored
        # operand — the workload whose diagnosis the paper motivates.
        print(f"AssocJoin, 12000 x 1200 tuples over 60 fragments, "
              f"theta={args.theta}, {args.threads} threads, "
              f"{args.strategy} consumption\n")
        database = make_join_database(12_000, 1_200, degree=60,
                                      theta=args.theta)
        plan = assoc_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        machine = default_machine()
        explanation = ScheduleExplanation()
        schedule = AdaptiveScheduler(machine).schedule(
            plan, args.threads, explain=explanation)
        schedule = schedule.with_strategy("join", args.strategy)
        executor = Executor(machine, ExecutionOptions(
            observability=ObservabilityOptions(observe=True)))
        execution = executor.execute(plan, schedule)
        diagnosis = diagnose(execution)
        explanation_json = explanation.to_json()
        workload = {"plan": "assoc_join", "card_a": 12_000,
                    "card_b": 1_200, "degree": 60, "theta": args.theta,
                    "threads": args.threads, "strategy": args.strategy}
    print(diagnosis.render())
    if args.events_out and execution is not None:
        records = write_jsonl(execution, args.events_out)
        print(f"\nwrote {records} JSONL records to {args.events_out}")
    if args.record or args.run_id:
        run_id = args.run_id or "diagnose-demo"
        registry = RunRegistry(root=args.runs_dir)
        path = registry.save(RunRecord.from_diagnosis(
            diagnosis, run_id, label=args.label, workload=workload,
            explanation=explanation_json))
        print(f"\nrecorded run {run_id!r} -> {path}")
    return 0


def compare_runs(argv: list[str]) -> int:
    """``python -m repro compare RUN_A RUN_B``: A/B two records."""
    from repro.diag import RunRegistry, compare

    parser = argparse.ArgumentParser(
        prog="python -m repro compare",
        description="compare two recorded runs from the run registry")
    parser.add_argument("run_a", help="baseline run id (A)")
    parser.add_argument("run_b", help="candidate run id (B)")
    parser.add_argument("--runs-dir", metavar="DIR", default=None,
                        help="registry root (default: "
                             "benchmarks/results/runs or $REPRO_RUNS_DIR)")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="relative elapsed tolerance of the "
                             "regression gate (default 0.05)")
    parser.add_argument("--gate", action="store_true",
                        help="exit 1 when B regresses past the tolerance")
    args = parser.parse_args(argv)
    registry = RunRegistry(root=args.runs_dir)
    kwargs = {} if args.tolerance is None else \
        {"tolerance": args.tolerance}
    comparison = compare(registry.load(args.run_a),
                         registry.load(args.run_b), **kwargs)
    print(comparison.render())
    if args.gate and comparison.regressed:
        return 1
    return 0


def _add_observed_args(target) -> None:
    """The observed-run options (``run`` subcommand + legacy group)."""
    target.add_argument("--trace-out", metavar="PATH",
                        help="write a Chrome trace-event JSON (Perfetto)")
    target.add_argument("--events-out", metavar="PATH",
                        help="write the structured JSONL event log")
    target.add_argument("--metrics-out", metavar="PATH",
                        help="write the text metrics snapshot")
    target.add_argument("--explain", action="store_true",
                        help="print the scheduler's four-step decisions")
    target.add_argument("--sql", default=DEFAULT_OBSERVED_SQL,
                        help="query to observe (default: a pipelined join)")
    target.add_argument("--threads", type=int, default=None,
                        help="pin the degree of parallelism (default: let "
                             "scheduler step 1 choose)")


def _add_diag_args(target, subcommand: bool) -> None:
    """The diagnostics options (``diagnose`` subcommand + legacy group)."""
    if not subcommand:
        target.add_argument("--diagnose", action="store_true",
                            help="run the skewed-join diagnostics demo: "
                                 "critical path + imbalance doctor")
    target.add_argument("--from-events", metavar="PATH", default=None,
                        help="diagnose a previously exported JSONL event "
                             "log instead of executing a query")
    target.add_argument("--theta", type=float, default=0.8,
                        help="Zipf skew of the stored operand in the "
                             "diagnostics demo (default 0.8)")
    target.add_argument("--strategy", choices=("random", "lpt"),
                        default="random",
                        help="join consumption strategy of the demo")
    target.add_argument("--record", action="store_true",
                        help="persist the diagnosis to the run registry")
    target.add_argument("--run-id", metavar="ID", default=None,
                        help="registry id for --record "
                             "(default: diagnose-demo)")
    target.add_argument("--label", default="",
                        help="free-text label stored in the record")
    target.add_argument("--runs-dir", metavar="DIR", default=None,
                        help="registry root (default: "
                             "benchmarks/results/runs or $REPRO_RUNS_DIR)")


def run_command(argv: list[str]) -> int:
    """``python -m repro run``: one observed query with exports, or —
    with ``--concurrent`` — a telemetry-enabled workload run."""
    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description="run one observed query (scheduler explain + "
                    "trace/event/metrics exports), or a concurrent "
                    "workload with --concurrent/--report")
    parser.add_argument("--concurrent", type=int, metavar="N", default=None,
                        help="run the N-query concurrent workload instead "
                             "of a single observed query")
    parser.add_argument("--shared", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="with --concurrent: fold identical subplans "
                             "onto shared operators")
    parser.add_argument("--report", action="store_true",
                        help="with --concurrent: collect workload "
                             "telemetry and print the WorkloadReport "
                             "(latency percentiles, admission, grants, "
                             "folds, faults)")
    parser.add_argument("--monitors", action="store_true",
                        help="with --concurrent: install the default "
                             "virtual-time SLO monitor rules and print "
                             "the alert table")
    parser.add_argument("--profile", action="store_true",
                        help="with --concurrent: run the engine "
                             "self-profiler and print the per-subsystem "
                             "wall-clock attribution")
    parser.add_argument("--prom-out", metavar="PATH", default=None,
                        help="with --concurrent: write the final metrics "
                             "in Prometheus text exposition format")
    parser.add_argument("--profile-check", type=float, metavar="FRACTION",
                        default=None,
                        help="with --concurrent --profile: exit 1 unless "
                             "the profiler attributes at least FRACTION "
                             "of the engine wall time (CI smoke gate)")
    parser.add_argument("--policy", choices=("static", "adaptive"),
                        default="static",
                        help="with --concurrent: scheduling policy — "
                             "'adaptive' closes the loop (wave-boundary "
                             "grant re-splits, Random->LPT switches) and "
                             "prints the decision log")
    parser.add_argument("--adaptive", action="store_true",
                        help="shorthand for --policy adaptive")
    _add_observed_args(parser)
    args = parser.parse_args(argv)
    policy = "adaptive" if args.adaptive else args.policy
    if args.concurrent is not None:
        if args.concurrent < 1:
            parser.error("--concurrent needs at least one query")
        if args.profile_check is not None and not args.profile:
            parser.error("--profile-check needs --profile")
        return concurrent_demo(args.concurrent, shared=args.shared,
                               report=args.report,
                               events_out=args.events_out,
                               monitors=args.monitors,
                               profile=args.profile,
                               prom_out=args.prom_out,
                               profile_check=args.profile_check,
                               policy=policy)
    if args.report:
        parser.error("--report needs --concurrent (it summarizes a "
                     "workload, not a single query)")
    if args.monitors or args.profile or args.prom_out or \
            args.profile_check is not None:
        parser.error("--monitors/--profile/--prom-out/--profile-check "
                     "need --concurrent (they observe a workload run)")
    if policy != "static":
        parser.error("--adaptive/--policy need --concurrent (the "
                     "controller acts on a workload run)")
    return observed_run(args.sql, args.trace_out, args.events_out,
                        args.metrics_out, args.explain, args.threads)


def diagnose_command(argv: list[str]) -> int:
    """``python -m repro diagnose``: diagnostics demo / JSONL post-mortem."""
    parser = argparse.ArgumentParser(
        prog="python -m repro diagnose",
        description="diagnose a run: critical path + imbalance doctor, "
                    "optionally persisted to the run registry")
    _add_diag_args(parser, subcommand=True)
    parser.add_argument("--events-out", metavar="PATH", default=None,
                        help="also export the run's JSONL event log")
    parser.add_argument("--threads", type=int, default=10,
                        help="degree of parallelism of the demo query")
    args = parser.parse_args(argv)
    return diagnose_run(args)


def serve_command(argv: list[str]) -> int:
    """``python -m repro serve``: the open-loop serving demo.

    Drives a seeded arrival stream through the overload-protection
    layer (admission policy + bounded queue + load shedding) at a
    multiple of the measured saturation throughput, and prints the
    per-class fate of the overload.  ``--check`` turns it into the CI
    smoke gate: conservation, shedding engaged, and goodput >= 80 %
    of saturation.
    """
    from repro.bench.fig_serving import measure_saturation, serving_machine
    from repro.obs.bus import SERVE_BACKPRESSURE
    from repro.serve.harness import (
        decision_digest,
        default_templates,
        run_serving,
        serving_stats,
    )
    from repro.serve.policies import POLICIES, ServingPolicy
    from repro.workload.options import WorkloadOptions

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="open-loop serving demo: seeded arrivals through the "
                    "overload-protection layer (pluggable admission "
                    "policy, bounded wait queue, load shedding)")
    parser.add_argument("--arrival", choices=("poisson", "mmpp", "diurnal"),
                        default="poisson",
                        help="arrival process shape (default poisson)")
    parser.add_argument("--rate", type=float, default=None,
                        help="arrivals per virtual second (default: "
                             "--overload times the measured saturation)")
    parser.add_argument("--overload", type=float, default=2.0,
                        help="rate as a multiple of saturation when "
                             "--rate is not given (default 2.0)")
    parser.add_argument("--count", type=int, default=300,
                        help="number of arrivals (default 300)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--policy", choices=POLICIES, default="edf",
                        help="admission policy (default edf)")
    parser.add_argument("--queue-limit", type=int, default=6,
                        help="bounded wait-queue depth (default 6)")
    parser.add_argument("--unbounded", action="store_true",
                        help="drop the queue bound (no shedding, no "
                             "backpressure — the pure queueing system)")
    parser.add_argument("--mpl", type=int, default=2,
                        help="multiprogramming level (default 2)")
    parser.add_argument("--shared", action="store_true",
                        help="fold identical subplans of concurrent "
                             "queries onto shared operators")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the protection held "
                             "(conservation + shedding engaged + goodput "
                             ">= 80%% of saturation)")
    args = parser.parse_args(argv)
    if args.count < 1:
        parser.error("--count needs at least one arrival")

    templates = default_templates()
    machine = serving_machine()
    saturation = measure_saturation(templates, machine=machine,
                                    count=min(args.count, 200),
                                    seed=args.seed, max_concurrent=args.mpl)
    rate = args.rate if args.rate is not None else args.overload * saturation
    limit = None if args.unbounded else args.queue_limit
    workload = WorkloadOptions(
        max_concurrent=args.mpl, shared=args.shared,
        serving=ServingPolicy(policy=args.policy, queue_limit=limit))

    print(f"open-loop serving demo — {args.arrival} arrivals at "
          f"{rate:.1f} q/s ({rate / saturation:.1f}x the saturation "
          f"throughput {saturation:.1f} q/s)")
    print(f"policy={args.policy} queue_limit={limit} mpl={args.mpl} "
          f"count={args.count} seed={args.seed}"
          + (" shared" if args.shared else "") + "\n")

    result = run_serving(templates=templates, arrival=args.arrival,
                         rate=rate, count=args.count, seed=args.seed,
                         machine=machine, workload=workload)
    stats = serving_stats(result)

    class_names = {f"p{t.priority}": t.name for t in templates}
    statuses = " ".join(f"{k}={v}"
                        for k, v in sorted(stats["statuses"].items()))
    print(f"statuses : {statuses}")
    print(f"makespan : {stats['makespan']:.3f}s virtual")
    print(f"goodput  : {stats['goodput']:.1f} q/s completed within SLO")
    print("per class:")
    for klass, row in stats["classes"].items():
        name = class_names.get(klass, klass)
        tail = (f" p50={row['p50']:.3f}s p99={row['p99']:.3f}s"
                if "p99" in row else "")
        print(f"  {klass} {name:<12} submitted={row['submitted']:<4} "
              f"done={row['done']:<4} shed={row['shed']:<3} "
              f"timed_out={row['timed_out']:<3}{tail}")
    transitions = [e for e in result.bus.events
                   if e.kind == SERVE_BACKPRESSURE]
    print(f"backpressure transitions: {len(transitions)}")
    print(f"decision digest: {decision_digest(result)}")

    if not args.check:
        return 0
    failures = []
    if sum(stats["statuses"].values()) != args.count:
        failures.append(
            f"conservation: statuses sum to "
            f"{sum(stats['statuses'].values())}, expected {args.count}")
    if rate > saturation and limit is not None \
            and not stats["statuses"].get("shed", 0):
        failures.append("overload never shed a query — protection "
                        "unreachable at this rate?")
    if rate >= saturation and args.policy != "fifo" \
            and stats["goodput"] < 0.8 * saturation:
        failures.append(
            f"goodput {stats['goodput']:.1f} q/s < 80% of saturation "
            f"{saturation:.1f} q/s")
    print()
    if failures:
        print("SERVING CHECK FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"serving check: PASS (goodput {stats['goodput']:.1f} q/s vs "
          f"saturation {saturation:.1f} q/s, "
          f"{stats['statuses'].get('shed', 0)} shed)")
    return 0


def chaos_command(argv: list[str]) -> int:
    """``python -m repro chaos``: seeded fault-injection sweep."""
    from repro.bench import chaos
    return chaos.main(argv)


#: Subcommand dispatch of the harmonized CLI.
COMMANDS = {
    "run": run_command,
    "diagnose": diagnose_command,
    "compare": compare_runs,
    "chaos": chaos_command,
    "serve": serve_command,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in COMMANDS:
        return COMMANDS[argv[0]](argv[1:])
    # No subcommand: the demo surface, plus the historic flag
    # spellings routed to the same code paths as `run` / `diagnose`.
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DBS3 reproduction: demo driver, figure regeneration, "
                    "observed runs (see `run`) and diagnostics "
                    "(see `diagnose`, `compare`)")
    parser.add_argument("--concurrent", type=int, metavar="N", default=None,
                        help="run the N-query concurrent workload demo "
                             "(one shared simulation)")
    parser.add_argument("--shared", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="with --concurrent: fold identical subplans "
                             "of concurrent queries onto shared operators "
                             "(--no-shared restores the default private "
                             "execution)")
    parser.add_argument("--report", action="store_true",
                        help="with --concurrent: collect workload "
                             "telemetry and print the WorkloadReport")
    parser.add_argument("--adaptive", action="store_true",
                        help="with --concurrent: adaptive scheduling "
                             "(alias of `run --concurrent N --adaptive`)")
    parser.add_argument("--figures", action="store_true",
                        help="regenerate the paper's figures instead of "
                             "running the demo")
    parser.add_argument("--scale", choices=("small", "paper"),
                        default="small", help="figure workload scale")
    obs = parser.add_argument_group(
        "observability (alias of the `run` subcommand)")
    _add_observed_args(obs)
    diag = parser.add_argument_group(
        "diagnostics (alias of the `diagnose` subcommand)")
    _add_diag_args(diag, subcommand=False)
    args = parser.parse_args(argv)
    if args.figures:
        return reporting.main(["--scale", args.scale])
    if args.concurrent is not None:
        if args.concurrent < 1:
            parser.error("--concurrent needs at least one query")
        return concurrent_demo(
            args.concurrent, shared=args.shared, report=args.report,
            policy="adaptive" if args.adaptive else "static")
    if args.adaptive:
        parser.error("--adaptive needs --concurrent (the controller "
                     "acts on a workload run)")
    if args.diagnose or args.from_events:
        if args.threads is None:
            args.threads = 10
        return diagnose_run(args)
    if args.trace_out or args.events_out or args.metrics_out or args.explain:
        return observed_run(args.sql, args.trace_out, args.events_out,
                            args.metrics_out, args.explain, args.threads)
    demo()
    return 0


if __name__ == "__main__":
    sys.exit(main())
