"""Command-line demo driver.

Usage::

    python -m repro                 # run the built-in demo
    python -m repro --figures       # regenerate the paper's figures
                                    # (alias of repro.bench.reporting)
    python -m repro --explain --trace-out trace.json \\
                    --events-out events.jsonl
                                    # run one observed query: scheduler
                                    # explain + Chrome trace (open in
                                    # https://ui.perfetto.dev) + JSONL
                                    # event log

The demo loads two Wisconsin relations, runs each supported query
shape end to end and prints the plans, schedules and virtual-time
metrics — a two-minute tour of the system.
"""

from __future__ import annotations

import argparse
import sys

from repro import DBS3, generate_wisconsin
from repro.bench import reporting

#: The observed-run default query (a pipelined join, so the export
#: shows both queue disciplines: triggered transmit + pipelined join).
DEFAULT_OBSERVED_SQL = "SELECT * FROM A JOIN B ON A.unique1 = B.unique1"


def demo() -> None:
    """Run the guided tour: DDL, four query shapes, metrics."""
    print("DBS3 reproduction demo — EDBT'96 adaptive parallel execution\n")
    db = DBS3(processors=32)
    print("Loading Wisconsin relations A (20K tuples) and B (2K tuples),")
    print("hash partitioned on unique1 into 50 fragments each...\n")
    db.create_table(generate_wisconsin("A", 20_000, seed=1), "unique1", 50)
    db.create_table(generate_wisconsin("B", 2_000, seed=2), "unique1", 50)

    queries = [
        "SELECT unique1, unique2 FROM A WHERE unique1 < 200",
        "SELECT * FROM A JOIN B ON A.unique1 = B.unique1",
        ("SELECT A.unique2, B.unique2 FROM A JOIN B "
         "ON A.unique1 = B.unique1 WHERE B.four = 0"),
        "SELECT two, COUNT(*), AVG(unique1) FROM A GROUP BY two",
    ]
    for sql in queries:
        print(f"SQL> {sql}")
        print(db.explain(sql))
        result = db.query(sql)
        print(f"  -> {result.cardinality} rows, "
              f"{result.response_time:.3f}s virtual response time, "
              f"{result.execution.total_threads} threads\n")

    print("Every number above is *virtual time* on the modelled KSR1-class")
    print("machine; the rows are real relational results.  See examples/")
    print("for skew handling, partitioning tuning and the Allcache model.")


def observed_run(sql: str, trace_out: str | None, events_out: str | None,
                 metrics_out: str | None, explain: bool,
                 threads: int | None = None) -> int:
    """Run one query with full observability and export the results."""
    from repro.engine.executor import ExecutionOptions
    from repro.obs.explain import ScheduleExplanation
    from repro.obs.export import (
        metrics_snapshot,
        verify_against_metrics,
        write_chrome_trace,
        write_jsonl,
    )

    db = DBS3(processors=32, options=ExecutionOptions(observe=True))
    # B is partitioned on unique2, so a join on unique1 redistributes
    # it — the observed run then shows both queue disciplines: the
    # triggered transmit and the pipelined join it feeds.
    db.create_table(generate_wisconsin("A", 8_000, seed=1), "unique1", 40)
    db.create_table(generate_wisconsin("B", 800, seed=2), "unique2", 40)
    print(f"SQL> {sql}")
    compiled = db.compile(sql)
    explanation = ScheduleExplanation()
    schedule = db.scheduler.schedule(compiled.plan, threads,
                                     explain=explanation)
    execution = db.executor.execute(compiled.plan, schedule)
    if explain:
        print(explanation.render())
        print()
    print(metrics_snapshot(execution))
    problems = verify_against_metrics(execution)
    if problems:
        print("\nOBS/METRICS MISMATCH:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    if events_out:
        records = write_jsonl(execution, events_out)
        print(f"\nwrote {records} JSONL records to {events_out}")
    if trace_out:
        count = write_chrome_trace(execution, trace_out)
        print(f"wrote {count} Chrome trace events to {trace_out} "
              f"(load in https://ui.perfetto.dev)")
    if metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as handle:
            handle.write(metrics_snapshot(execution) + "\n")
        print(f"wrote metrics snapshot to {metrics_out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DBS3 reproduction: demo driver, figure regeneration "
                    "and observed runs")
    parser.add_argument("--figures", action="store_true",
                        help="regenerate the paper's figures instead of "
                             "running the demo")
    parser.add_argument("--scale", choices=("small", "paper"),
                        default="small", help="figure workload scale")
    obs = parser.add_argument_group(
        "observability", "run one observed query instead of the demo")
    obs.add_argument("--trace-out", metavar="PATH",
                     help="write a Chrome trace-event JSON (Perfetto)")
    obs.add_argument("--events-out", metavar="PATH",
                     help="write the structured JSONL event log")
    obs.add_argument("--metrics-out", metavar="PATH",
                     help="write the text metrics snapshot")
    obs.add_argument("--explain", action="store_true",
                     help="print the scheduler's four-step decisions")
    obs.add_argument("--sql", default=DEFAULT_OBSERVED_SQL,
                     help="query to observe (default: a pipelined join)")
    obs.add_argument("--threads", type=int, default=None,
                     help="pin the degree of parallelism (default: let "
                          "scheduler step 1 choose)")
    args = parser.parse_args(argv)
    if args.figures:
        return reporting.main(["--scale", args.scale])
    if args.trace_out or args.events_out or args.metrics_out or args.explain:
        return observed_run(args.sql, args.trace_out, args.events_out,
                            args.metrics_out, args.explain, args.threads)
    demo()
    return 0


if __name__ == "__main__":
    sys.exit(main())
