"""Command-line demo driver.

Usage::

    python -m repro                 # run the built-in demo
    python -m repro --figures       # regenerate the paper's figures
                                    # (alias of repro.bench.reporting)

The demo loads two Wisconsin relations, runs each supported query
shape end to end and prints the plans, schedules and virtual-time
metrics — a two-minute tour of the system.
"""

from __future__ import annotations

import argparse
import sys

from repro import DBS3, generate_wisconsin
from repro.bench import reporting


def demo() -> None:
    """Run the guided tour: DDL, four query shapes, metrics."""
    print("DBS3 reproduction demo — EDBT'96 adaptive parallel execution\n")
    db = DBS3(processors=32)
    print("Loading Wisconsin relations A (20K tuples) and B (2K tuples),")
    print("hash partitioned on unique1 into 50 fragments each...\n")
    db.create_table(generate_wisconsin("A", 20_000, seed=1), "unique1", 50)
    db.create_table(generate_wisconsin("B", 2_000, seed=2), "unique1", 50)

    queries = [
        "SELECT unique1, unique2 FROM A WHERE unique1 < 200",
        "SELECT * FROM A JOIN B ON A.unique1 = B.unique1",
        ("SELECT A.unique2, B.unique2 FROM A JOIN B "
         "ON A.unique1 = B.unique1 WHERE B.four = 0"),
        "SELECT two, COUNT(*), AVG(unique1) FROM A GROUP BY two",
    ]
    for sql in queries:
        print(f"SQL> {sql}")
        print(db.explain(sql))
        result = db.query(sql)
        print(f"  -> {result.cardinality} rows, "
              f"{result.response_time:.3f}s virtual response time, "
              f"{result.execution.total_threads} threads\n")

    print("Every number above is *virtual time* on the modelled KSR1-class")
    print("machine; the rows are real relational results.  See examples/")
    print("for skew handling, partitioning tuning and the Allcache model.")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DBS3 reproduction: demo driver and figure regeneration")
    parser.add_argument("--figures", action="store_true",
                        help="regenerate the paper's figures instead of "
                             "running the demo")
    parser.add_argument("--scale", choices=("small", "paper"),
                        default="small", help="figure workload scale")
    args = parser.parse_args(argv)
    if args.figures:
        return reporting.main(["--scale", args.scale])
    demo()
    return 0


if __name__ == "__main__":
    sys.exit(main())
