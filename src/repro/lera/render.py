"""Plan rendering — Figure 1's simple and extended views, in ASCII.

``render_simple`` prints the operator DAG (one box per operator, with
trigger mode, instance count and edge kinds); ``render_extended``
expands a node into its per-instance view, the way Figure 1 unfolds
``join`` into ``join_1 .. join_n`` with an activation queue each.
"""

from __future__ import annotations

from repro.lera.activation import TRIGGERED
from repro.lera.graph import LeraGraph


def _describe(node) -> str:
    spec = node.spec
    extras = []
    algorithm = getattr(spec, "algorithm", None)
    if algorithm is not None:
        extras.append(algorithm)
    grain = getattr(spec, "grain", 1)
    if grain > 1:
        extras.append(f"grain={grain}")
    group_by = getattr(spec, "group_by", None)
    if group_by is not None:
        extras.append(f"group by {group_by}")
    predicate = getattr(spec, "predicate", None)
    if predicate is not None and predicate.description != "true":
        extras.append(predicate.description)
    suffix = f" [{', '.join(extras)}]" if extras else ""
    return (f"{node.name} ({node.trigger_mode}, x{node.instances})"
            f"{suffix}")


def render_simple(plan: LeraGraph) -> str:
    """The simple view: chains in dataflow order, annotated edges.

    Pipeline edges are drawn as ``--tuples-->``, materialized
    dependencies as ``==stored==>`` between chains.
    """
    chains = plan.chains()
    dependencies = plan.chain_dependencies(chains)
    by_id = {chain.chain_id: chain for chain in chains}
    lines = []
    for chain in chains:
        parts = [_describe(node) for node in chain.nodes]
        lines.append(f"{chain.name}: " + "  --tuples-->  ".join(parts))
        for dependency in sorted(dependencies[chain.chain_id]):
            lines.append(f"     ^== stored result of "
                         f"{by_id[dependency].name}")
    return "\n".join(lines)


def render_extended(plan: LeraGraph, node_name: str,
                    max_instances: int = 8) -> str:
    """The extended view of one operator: one line per instance.

    Shows each instance's queue kind and (for triggered operators) the
    fragment it owns, eliding the middle when there are more than
    *max_instances* instances — the ``...`` of Figure 1.
    """
    node = plan.node(node_name)
    spec = node.spec
    fragments = (getattr(spec, "fragments", None)
                 or getattr(spec, "outer_fragments", None)
                 or getattr(spec, "stored_fragments", None)
                 or getattr(spec, "target_fragments", None))
    queue_kind = ("trigger" if node.trigger_mode == TRIGGERED
                  else "tuple")
    lines = [f"{node.name}: {node.instances} instances, "
             f"one {queue_kind} queue each"]

    def line_of(i: int) -> str:
        detail = ""
        if fragments is not None:
            fragment = fragments[i]
            detail = (f"  <- {fragment.relation_name}[{fragment.index}] "
                      f"({fragment.cardinality} tuples)")
        return f"  {node.name}_{i + 1} |{queue_kind} queue|{detail}"

    count = node.instances
    if count <= max_instances:
        lines.extend(line_of(i) for i in range(count))
    else:
        head = max_instances // 2
        lines.extend(line_of(i) for i in range(head))
        lines.append(f"  ... {count - max_instances} more instances ...")
        lines.extend(line_of(i) for i in range(count - (max_instances - head),
                                               count))
    return "\n".join(lines)


def render(plan: LeraGraph, extended: bool = False) -> str:
    """Render the whole plan; with *extended*, expand every node."""
    parts = [render_simple(plan)]
    if extended:
        for node in plan.nodes:
            parts.append("")
            parts.append(render_extended(plan, node.name))
    return "\n".join(parts)
