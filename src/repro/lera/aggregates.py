"""Aggregate expressions and accumulators.

Lera-par's expressive power is "an extended relational algebra"; this
module provides the aggregation slice of it: COUNT/SUM/MIN/MAX/AVG
expressions, their streaming accumulators, and result-column naming.
The pipelined aggregate operator
(:class:`~repro.lera.operators.AggregateSpec`) folds one accumulator
set per group per instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.storage.schema import Attribute, Schema

COUNT = "count"
SUM = "sum"
MIN = "min"
MAX = "max"
AVG = "avg"
AGGREGATE_FUNCTIONS = (COUNT, SUM, MIN, MAX, AVG)


@dataclass(frozen=True)
class AggregateExpr:
    """One aggregate in a SELECT list, e.g. ``SUM(payload)``.

    ``attribute`` is ``None`` only for ``COUNT(*)``.
    """

    function: str
    attribute: str | None = None

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise PlanError(
                f"unknown aggregate {self.function!r}; "
                f"expected one of {AGGREGATE_FUNCTIONS}")
        if self.function != COUNT and self.attribute is None:
            raise PlanError(f"{self.function.upper()} requires an attribute")

    @property
    def column_name(self) -> str:
        """Result-column name, e.g. ``sum_val`` or ``count``."""
        if self.attribute is None:
            return self.function
        return f"{self.function}_{self.attribute}"

    def column_kind(self) -> str:
        """Schema kind of the result column."""
        return "int" if self.function == COUNT else "float"


class Accumulator:
    """Streaming state for one (group, aggregate) pair."""

    __slots__ = ("function", "count", "total", "low", "high")

    def __init__(self, function: str) -> None:
        self.function = function
        self.count = 0
        self.total = 0.0
        self.low: object = None
        self.high: object = None

    def add(self, value: object) -> None:
        """Fold one input value (ignored for COUNT(*) semantics)."""
        self.count += 1
        if self.function in (SUM, AVG):
            self.total += value  # type: ignore[operator]
        elif self.function == MIN:
            if self.low is None or value < self.low:  # type: ignore[operator]
                self.low = value
        elif self.function == MAX:
            if self.high is None or value > self.high:  # type: ignore[operator]
                self.high = value

    def result(self) -> object:
        """Final aggregate value (None for MIN/MAX/AVG of nothing)."""
        if self.function == COUNT:
            return self.count
        if self.function == SUM:
            return self.total
        if self.function == AVG:
            return self.total / self.count if self.count else None
        if self.function == MIN:
            return self.low
        return self.high


def aggregate_output_schema(group_by: str | None,
                            aggregates: tuple[AggregateExpr, ...],
                            group_kind: str = "int") -> Schema:
    """Schema of an aggregate operator's result rows."""
    attributes = []
    if group_by is not None:
        attributes.append(Attribute(group_by, group_kind))
    taken = {a.name for a in attributes}
    for expr in aggregates:
        name = expr.column_name
        suffix = 2
        while name in taken:
            name = f"{expr.column_name}_{suffix}"
            suffix += 1
        taken.add(name)
        attributes.append(Attribute(name, expr.column_kind()))
    return Schema(attributes)
