"""Operator specifications — what a Lera-par plan node describes.

A spec is the *physical* description of one operator: which fragments
it reads, what relational function it applies, how many instances it
has (one per fragment of its partitioned input) and whether it is
triggered or pipelined.  Specs also expose cost *estimates* — used by
the adaptive scheduler (steps 1-3) and by the LPT consumption strategy
— computed from static information (fragment cardinalities), exactly
as the paper prescribes.

The executable behaviour for each spec lives in
:mod:`repro.engine.dbfuncs`; keeping estimation here and execution
there mirrors the compiler/run-time split of DBS3 itself.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.lera.activation import PIPELINED, TRIGGERED
from repro.lera.predicates import Predicate
from repro.machine.costs import CostModel
from repro.storage.fragment import Fragment
from repro.storage.schema import Schema

#: Join algorithms understood by the engine.
JOIN_NESTED_LOOP = "nested_loop"
JOIN_TEMP_INDEX = "temp_index"
JOIN_HASH = "hash"
JOIN_ALGORITHMS = (JOIN_NESTED_LOOP, JOIN_TEMP_INDEX, JOIN_HASH)


class OperatorSpec(ABC):
    """Base class for operator specifications."""

    #: ``TRIGGERED`` or ``PIPELINED`` — the kind of queue feeding the
    #: operator (class attribute on subclasses).
    trigger_mode: str = TRIGGERED

    @property
    @abstractmethod
    def instances(self) -> int:
        """Number of operator instances (degree of partitioning)."""

    @abstractmethod
    def estimated_instance_costs(self, costs: CostModel) -> list[float]:
        """Estimated sequential cost of each instance, in seconds.

        For triggered operators this is the estimated cost of the one
        activation of each instance; for pipelined operators it is the
        estimated cost of *one* activation served by that instance
        (what LPT ranks queues by).
        """

    def total_complexity(self, costs: CostModel) -> float:
        """Estimated total sequential work of the operator."""
        return sum(self.estimated_instance_costs(costs))

    def activations_per_instance(self) -> int:
        """Control activations seeded into each instance's queue.

        1 for classic triggered operators; the *grain* for chunked
        triggered operators (the finer grain of parallelism the
        paper's conclusion proposes as future work).
        """
        return 1

    def estimated_activations(self) -> int:
        """Estimated number of activations the operator will receive."""
        return self.instances * self.activations_per_instance()

    def _check_instances(self, *fragment_lists: list[Fragment]) -> None:
        lengths = {len(fragments) for fragments in fragment_lists}
        if len(lengths) != 1:
            raise PlanError(
                f"{type(self).__name__}: operand degrees differ: {sorted(lengths)}")
        if 0 in lengths:
            raise PlanError(f"{type(self).__name__}: needs at least one fragment")


@dataclass
class ScanFilterSpec(OperatorSpec):
    """Triggered scan + filter over one partitioned relation.

    Each instance, on its trigger, scans its fragment and emits the
    rows satisfying ``predicate`` (to the downstream operator, or to
    the query result when terminal).
    """

    fragments: list[Fragment]
    predicate: Predicate
    schema: Schema
    trigger_mode = TRIGGERED

    def __post_init__(self) -> None:
        self._check_instances(self.fragments)

    @property
    def instances(self) -> int:
        return len(self.fragments)

    def estimated_instance_costs(self, costs: CostModel) -> list[float]:
        return [f.cardinality * costs.filter_tuple for f in self.fragments]

    def estimated_output_cardinality(self) -> float:
        """Rows expected to pass the filter across all instances."""
        total = sum(f.cardinality for f in self.fragments)
        selectivity = self.predicate.selectivity
        return total * (selectivity if selectivity is not None else 1.0)


@dataclass
class JoinSpec(OperatorSpec):
    """Triggered join of two co-partitioned relations (IdealJoin's join).

    Instance ``i`` joins ``outer_fragments[i]`` with
    ``inner_fragments[i]``.  ``algorithm`` selects nested loop, temp
    (sorted) index built on the fly on the *outer* side, or hash join.

    ``grain`` implements the paper's future-work proposal of choosing
    the grain of parallelism independently of operator semantics: each
    instance receives ``grain`` control activations, each covering one
    slice of the outer fragment, so a triggered join can be balanced
    almost as finely as a pipelined one without repartitioning.  (With
    the temp-index algorithm, each chunk pays its own index build over
    its slice — a real cost of the finer grain.)
    """

    outer_fragments: list[Fragment]
    inner_fragments: list[Fragment]
    outer_key: str
    inner_key: str
    algorithm: str = JOIN_NESTED_LOOP
    grain: int = 1
    #: Scheduler estimates for operands that are *materialized at run
    #: time* (two-phase plans): when a fragment list is still empty at
    #: plan time, its expected total cardinality stands in.
    outer_expected_total: int | None = None
    inner_expected_total: int | None = None
    trigger_mode = TRIGGERED

    def __post_init__(self) -> None:
        self._check_instances(self.outer_fragments, self.inner_fragments)
        if self.algorithm not in JOIN_ALGORITHMS:
            raise PlanError(f"unknown join algorithm {self.algorithm!r}")
        if self.grain < 1:
            raise PlanError(f"grain must be >= 1, got {self.grain}")
        # Estimate memo: the scheduler (complexity + strategy selection)
        # and the runtime build each recompute the same per-instance
        # estimates; at high degrees that is thousands of cost-formula
        # evaluations per query.  Keyed by cost model identity and the
        # operand cardinalities, so two-phase plans that materialize
        # their operands between calls invalidate it automatically.
        self._estimate_cache: tuple[tuple, list[float]] | None = None

    @property
    def instances(self) -> int:
        return len(self.outer_fragments)

    def activations_per_instance(self) -> int:
        return self.grain

    def chunk_bounds(self, instance: int, chunk: int | None) -> tuple[int, int]:
        """Row range of the outer fragment covered by one activation."""
        cardinality = self.outer_fragments[instance].cardinality
        if chunk is None or self.grain == 1:
            return 0, cardinality
        if not 0 <= chunk < self.grain:
            raise PlanError(f"chunk {chunk} out of range for grain {self.grain}")
        low = cardinality * chunk // self.grain
        high = cardinality * (chunk + 1) // self.grain
        return low, high

    def _estimated_cardinality(self, fragment: Fragment,
                               expected_total: int | None) -> float:
        if fragment.cardinality or expected_total is None:
            return float(fragment.cardinality)
        return expected_total / self.instances

    def estimated_instance_costs(self, costs: CostModel) -> list[float]:
        """Per-*activation* estimates (whole instance divided by grain)."""
        state = (id(costs),
                 tuple(len(f.rows) for f in self.outer_fragments),
                 tuple(len(f.rows) for f in self.inner_fragments))
        cached = self._estimate_cache
        if cached is not None and cached[0] == state:
            return list(cached[1])
        estimates = []
        for outer, inner in zip(self.outer_fragments, self.inner_fragments):
            whole = _join_instance_estimate(
                costs, self.algorithm,
                self._estimated_cardinality(outer, self.outer_expected_total),
                self._estimated_cardinality(inner, self.inner_expected_total))
            estimates.append(whole / self.grain)
        self._estimate_cache = (state, list(estimates))
        return estimates

    def total_complexity(self, costs: CostModel) -> float:
        return sum(self.estimated_instance_costs(costs)) * self.grain

    @property
    def output_schema(self) -> Schema:
        return self.outer_fragments[0].schema.concat(
            self.inner_fragments[0].schema)


@dataclass
class TransmitSpec(OperatorSpec):
    """Triggered redistribution (AssocJoin's Transmit).

    Each instance, on its trigger, reads its fragment and sends every
    tuple to the downstream operator instance selected by hashing
    ``key`` modulo ``target_degree`` — dynamic repartitioning through
    the pipeline.
    """

    fragments: list[Fragment]
    key: str
    target_degree: int
    trigger_mode = TRIGGERED

    def __post_init__(self) -> None:
        self._check_instances(self.fragments)
        if self.target_degree < 1:
            raise PlanError(f"target_degree must be >= 1, got {self.target_degree}")

    @property
    def instances(self) -> int:
        return len(self.fragments)

    @property
    def key_position(self) -> int:
        return self.fragments[0].schema.position(self.key)

    def estimated_instance_costs(self, costs: CostModel) -> list[float]:
        return [f.cardinality * costs.transmit_tuple for f in self.fragments]

    def total_tuples(self) -> int:
        """Number of data activations the downstream operator receives."""
        return sum(f.cardinality for f in self.fragments)


@dataclass
class PipelinedJoinSpec(OperatorSpec):
    """Pipelined join against statically partitioned fragments.

    Instance ``i`` holds ``stored_fragments[i]`` (e.g. ``A_i``); each
    incoming data activation carries one tuple of the streamed operand
    (e.g. ``B'``), which is joined with the stored fragment.  With the
    temp-index algorithm the index over the stored fragment is built
    lazily, on the instance's first activation.
    """

    stored_fragments: list[Fragment]
    stored_key: str
    stream_schema: Schema
    stream_key: str
    algorithm: str = JOIN_NESTED_LOOP
    stream_cardinality: int = 0
    trigger_mode = PIPELINED

    def __post_init__(self) -> None:
        self._check_instances(self.stored_fragments)
        if self.algorithm not in JOIN_ALGORITHMS:
            raise PlanError(f"unknown join algorithm {self.algorithm!r}")

    @property
    def instances(self) -> int:
        return len(self.stored_fragments)

    @property
    def stored_key_position(self) -> int:
        return self.stored_fragments[0].schema.position(self.stored_key)

    @property
    def stream_key_position(self) -> int:
        return self.stream_schema.position(self.stream_key)

    def estimated_instance_costs(self, costs: CostModel) -> list[float]:
        """Per-*activation* cost estimate of each instance (LPT order)."""
        estimates = []
        for stored in self.stored_fragments:
            estimates.append(_probe_estimate(costs, self.algorithm,
                                             stored.cardinality))
        return estimates

    def total_complexity(self, costs: CostModel) -> float:
        """Total work: stream tuples spread evenly over instances."""
        if self.instances == 0:
            return 0.0
        per_instance = self.stream_cardinality / self.instances
        total = 0.0
        for stored in self.stored_fragments:
            total += per_instance * (costs.pipelined_activation
                                     + _probe_estimate(costs, self.algorithm,
                                                       stored.cardinality))
            if self.algorithm == JOIN_TEMP_INDEX:
                total += costs.index_build_cost(stored.cardinality)
        return total

    def estimated_activations(self) -> int:
        return self.stream_cardinality

    @property
    def output_schema(self) -> Schema:
        return self.stream_schema.concat(self.stored_fragments[0].schema)


@dataclass
class IndexScanSpec(OperatorSpec):
    """Triggered equality selection through a permanent index.

    Each instance, on its trigger, probes its fragment's index with
    ``value`` and emits the matches — the index-scan fast path the
    compiler picks when a selection is a single equality on an indexed
    attribute.  ``indexes[i]`` must be an index over
    ``fragments[i].rows`` on *attribute*.
    """

    fragments: list[Fragment]
    indexes: list
    attribute: str
    value: object
    schema: Schema
    trigger_mode = TRIGGERED

    def __post_init__(self) -> None:
        self._check_instances(self.fragments)
        if len(self.indexes) != len(self.fragments):
            raise PlanError(
                f"{len(self.indexes)} indexes for {len(self.fragments)} "
                f"fragments")
        self.schema.position(self.attribute)

    @property
    def instances(self) -> int:
        return len(self.fragments)

    def estimated_instance_costs(self, costs: CostModel) -> list[float]:
        """A probe plus an estimated 1% of the fragment emitted."""
        estimates = []
        for fragment in self.fragments:
            matches = max(1, fragment.cardinality // 100)
            estimates.append(costs.index_probe_cost(
                max(fragment.cardinality, 1), matches))
        return estimates


@dataclass
class AggregateSpec(OperatorSpec):
    """Pipelined grouped aggregation.

    Incoming tuples are routed by hashing the group-by attribute (all
    to instance 0 for a global aggregate); each instance folds
    accumulators per group and emits one result row per group when its
    input closes.  Always a query-terminal operator.
    """

    stream_schema: Schema
    group_by: str | None
    aggregates: tuple
    degree: int = 1
    stream_cardinality: int = 0
    trigger_mode = PIPELINED

    def __post_init__(self) -> None:
        from repro.lera.aggregates import AggregateExpr
        if not self.aggregates:
            raise PlanError("aggregate operator needs at least one aggregate")
        for expr in self.aggregates:
            if not isinstance(expr, AggregateExpr):
                raise PlanError(f"not an AggregateExpr: {expr!r}")
        if self.group_by is None and self.degree != 1:
            raise PlanError("a global aggregate has exactly one instance")
        if self.degree < 1:
            raise PlanError(f"degree must be >= 1, got {self.degree}")
        # Resolve positions eagerly so bad references fail at plan time.
        if self.group_by is not None:
            self.stream_schema.position(self.group_by)
        for expr in self.aggregates:
            if expr.attribute is not None:
                self.stream_schema.position(expr.attribute)

    @property
    def instances(self) -> int:
        return self.degree

    @property
    def group_position(self) -> int | None:
        if self.group_by is None:
            return None
        return self.stream_schema.position(self.group_by)

    def value_positions(self) -> list[int | None]:
        """Input position folded by each aggregate (None = COUNT(*))."""
        return [None if expr.attribute is None
                else self.stream_schema.position(expr.attribute)
                for expr in self.aggregates]

    def estimated_instance_costs(self, costs: CostModel) -> list[float]:
        """Per-activation estimate: one accumulator update per aggregate."""
        per_activation = (costs.pipelined_activation
                          + len(self.aggregates) * costs.aggregate_tuple)
        return [per_activation] * self.degree

    def total_complexity(self, costs: CostModel) -> float:
        per_activation = (costs.pipelined_activation
                          + len(self.aggregates) * costs.aggregate_tuple)
        return self.stream_cardinality * per_activation

    def estimated_activations(self) -> int:
        return self.stream_cardinality

    @property
    def output_schema(self) -> Schema:
        from repro.lera.aggregates import aggregate_output_schema
        group_kind = ("int" if self.group_by is None
                      else self.stream_schema[self.stream_schema.position(
                          self.group_by)].kind)
        return aggregate_output_schema(self.group_by, tuple(self.aggregates),
                                       group_kind)


@dataclass
class StoreSpec(OperatorSpec):
    """Pipelined materialization into hash-partitioned fragments.

    The tail of a producer chain in multi-chain plans: incoming tuples
    are routed by hashing ``key`` and appended to
    ``target_fragments[instance]``, which later chains read as a
    statically partitioned operand.  ``expected_cardinality`` feeds
    scheduler estimates, since the fragments are empty at plan time.
    """

    target_fragments: list[Fragment]
    stream_schema: Schema
    key: str
    expected_cardinality: int = 0
    trigger_mode = PIPELINED

    def __post_init__(self) -> None:
        self._check_instances(self.target_fragments)
        self.stream_schema.position(self.key)

    @property
    def instances(self) -> int:
        return len(self.target_fragments)

    @property
    def key_position(self) -> int:
        return self.stream_schema.position(self.key)

    def estimated_instance_costs(self, costs: CostModel) -> list[float]:
        per_activation = costs.pipelined_activation + costs.store_tuple
        return [per_activation] * self.instances

    def total_complexity(self, costs: CostModel) -> float:
        per_activation = costs.pipelined_activation + costs.store_tuple
        return self.expected_cardinality * per_activation

    def estimated_activations(self) -> int:
        return self.expected_cardinality


def _join_instance_estimate(costs: CostModel, algorithm: str,
                            outer: int, inner: int) -> float:
    """Estimated cost of joining an (outer, inner) fragment pair."""
    if algorithm == JOIN_NESTED_LOOP:
        return costs.nested_loop_cost(outer, inner, matches=0)
    if algorithm == JOIN_TEMP_INDEX:
        build = costs.index_build_cost(outer)
        probe = inner * costs.index_probe_cost(max(outer, 1), matches=0)
        return build + probe
    # Hash join: linear build on outer, linear probe with inner.
    return (outer + inner) * costs.index_compare


def _probe_estimate(costs: CostModel, algorithm: str, stored: int) -> float:
    """Estimated cost of probing one stored fragment with one tuple."""
    if algorithm == JOIN_NESTED_LOOP:
        return stored * costs.tuple_pair
    if algorithm == JOIN_TEMP_INDEX:
        return costs.index_probe_cost(max(stored, 1), matches=0)
    return costs.index_compare
