"""Activations: Lera-par's unit of sequential work.

"An activator denotes either a tuple (data activation) or a control
message (control activation).  In either case, when an operator
receives an activation, the corresponding sequential operation is
executed."  (Section 2.)

A *triggered* operator instance receives exactly one control
activation that starts it on its whole fragment; a *pipelined*
operator instance receives one data activation per tuple flowing
through the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.tuples import Row

#: Activation kinds.
CONTROL = "control"
DATA = "data"

#: Operator trigger modes (what kind of queue feeds the operator).
TRIGGERED = "triggered"
PIPELINED = "pipelined"


@dataclass(frozen=True, slots=True)
class Activation:
    """One activation bound for one operator instance.

    Attributes:
        kind: ``CONTROL`` (trigger) or ``DATA`` (one tuple).
        instance: Target operator-instance number.
        row: The carried tuple for data activations; ``None`` for
            control activations.
        chunk: Sub-activation index for *chunked* triggered operators
            (the grain-of-parallelism extension sketched in the
            paper's conclusion); ``None`` for classic whole-fragment
            triggers.
    """

    kind: str
    instance: int
    row: Row | None = None
    chunk: int | None = None

    @property
    def is_control(self) -> bool:
        return self.kind == CONTROL

    @property
    def is_data(self) -> bool:
        return self.kind == DATA


def trigger(instance: int) -> Activation:
    """The control activation that starts a triggered instance."""
    return Activation(CONTROL, instance)


def chunk_trigger(instance: int, chunk: int) -> Activation:
    """One of several control activations covering a fragment slice."""
    return Activation(CONTROL, instance, None, chunk)


def tuple_activation(instance: int, row: Row) -> Activation:
    """A data activation conveying one pipelined tuple."""
    return Activation(DATA, instance, row)
