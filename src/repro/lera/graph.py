"""Lera-par dataflow graphs.

A Lera-par program is a dataflow graph whose nodes are operators and
whose edges are activators (Section 2).  We distinguish

* **pipeline edges** — data activations flow tuple-by-tuple from
  producer instances to consumer instances at run time, and
* **materialized edges** — the producer's result is a stored relation
  the consumer reads as a fragment operand, so the consumer's chain
  only starts when the producer's chain is finished.

A maximal subgraph connected by pipeline edges is a **chain**
(the paper's *subquery*, e.g. Sq1..Sq5 in Figure 5); the chain DAG
induced by materialized edges drives scheduler step 2 and the
executor's wave-by-wave evaluation.

The *simple view* of the graph is the node/edge structure here; the
*extended view* (one instance per fragment, Figure 1) is produced by
the engine when it builds operation runtimes from the specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import PlanError
from repro.lera.activation import PIPELINED, TRIGGERED
from repro.lera.operators import OperatorSpec

#: Edge kinds.
PIPELINE = "pipeline"
MATERIALIZED = "materialized"


@dataclass
class LeraNode:
    """One operator node of the simple view."""

    name: str
    spec: OperatorSpec

    @property
    def trigger_mode(self) -> str:
        """``triggered`` or ``pipelined`` (from the spec)."""
        return self.spec.trigger_mode

    @property
    def instances(self) -> int:
        """Number of operator instances (extended-view width)."""
        return self.spec.instances

    def __repr__(self) -> str:
        return f"LeraNode({self.name!r}, {self.trigger_mode}, x{self.instances})"


@dataclass(frozen=True)
class LeraEdge:
    """A producer -> consumer activator edge."""

    producer: str
    consumer: str
    kind: str = PIPELINE

    def __post_init__(self) -> None:
        if self.kind not in (PIPELINE, MATERIALIZED):
            raise PlanError(f"unknown edge kind {self.kind!r}")


@dataclass
class Chain:
    """A pipeline chain (the paper's subquery).

    ``nodes`` are in dataflow order: ``nodes[0]`` is the chain's
    triggered head; every later node is pipelined from its
    predecessor.
    """

    chain_id: int
    nodes: list[LeraNode]

    @property
    def name(self) -> str:
        """The paper's subquery naming: ``Sq<k>``."""
        return f"Sq{self.chain_id}"

    @property
    def head(self) -> LeraNode:
        """The chain's triggered entry operator."""
        return self.nodes[0]

    @property
    def tail(self) -> LeraNode:
        """The chain's last (result-producing) operator."""
        return self.nodes[-1]

    def node_names(self) -> list[str]:
        """Operator names in dataflow order."""
        return [node.name for node in self.nodes]


class LeraGraph:
    """The simple view of a parallel execution plan."""

    def __init__(self) -> None:
        self._nodes: dict[str, LeraNode] = {}
        self._edges: list[LeraEdge] = []
        self._fingerprints: dict[str, tuple | None] | None = None

    # -- construction ---------------------------------------------------------

    def add_node(self, name: str, spec: OperatorSpec) -> LeraNode:
        """Add one operator node; names must be unique."""
        if name in self._nodes:
            raise PlanError(f"duplicate node name {name!r}")
        node = LeraNode(name, spec)
        self._nodes[name] = node
        self._fingerprints = None
        return node

    def add_edge(self, producer: str, consumer: str, kind: str = PIPELINE) -> LeraEdge:
        """Connect two existing nodes with a pipeline/materialized edge."""
        for endpoint in (producer, consumer):
            if endpoint not in self._nodes:
                raise PlanError(f"edge references unknown node {endpoint!r}")
        if producer == consumer:
            raise PlanError(f"self-edge on {producer!r}")
        edge = LeraEdge(producer, consumer, kind)
        self._edges.append(edge)
        self._fingerprints = None
        return edge

    # -- access ---------------------------------------------------------------

    def node(self, name: str) -> LeraNode:
        """Look up a node; raises :class:`PlanError` if absent."""
        try:
            return self._nodes[name]
        except KeyError:
            raise PlanError(f"unknown node {name!r}") from None

    @property
    def nodes(self) -> list[LeraNode]:
        """All nodes, in insertion order."""
        return list(self._nodes.values())

    @property
    def edges(self) -> list[LeraEdge]:
        """All edges, in insertion order."""
        return list(self._edges)

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def __iter__(self) -> Iterator[LeraNode]:
        return iter(self._nodes.values())

    def pipeline_consumer(self, name: str) -> str | None:
        """The node fed by *name* through a pipeline edge, if any."""
        for edge in self._edges:
            if edge.producer == name and edge.kind == PIPELINE:
                return edge.consumer
        return None

    def pipeline_producers(self, name: str) -> list[str]:
        """Nodes feeding *name* through pipeline edges."""
        return [e.producer for e in self._edges
                if e.consumer == name and e.kind == PIPELINE]

    def fingerprints(self) -> dict[str, tuple | None]:
        """Canonical subplan fingerprints, memoized on the plan.

        Maps node name to a hashable identity tuple (``None`` when the
        node must never be shared); see :mod:`repro.lera.fingerprint`
        for the rules.  The memo is invalidated by graph mutation.
        """
        if self._fingerprints is None:
            from repro.lera.fingerprint import compute_fingerprints
            self._fingerprints = compute_fingerprints(self)
        return self._fingerprints

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Structural checks; raises :class:`PlanError` on violation.

        * a pipelined node must have at least one pipeline producer;
        * a triggered node must have none (it is started by a trigger);
        * each node has at most one pipeline consumer (linear chains,
          as in all the paper's plans);
        * the graph is acyclic.
        """
        if not self._nodes:
            raise PlanError("empty plan")
        out_pipeline: dict[str, int] = {name: 0 for name in self._nodes}
        for edge in self._edges:
            if edge.kind == PIPELINE:
                out_pipeline[edge.producer] += 1
        for name, count in out_pipeline.items():
            if count > 1:
                raise PlanError(f"node {name!r} has {count} pipeline consumers")
        for node in self._nodes.values():
            producers = self.pipeline_producers(node.name)
            if node.trigger_mode == TRIGGERED and producers:
                raise PlanError(
                    f"triggered node {node.name!r} has pipeline producers "
                    f"{producers}")
            if node.trigger_mode == PIPELINED and not producers:
                raise PlanError(
                    f"pipelined node {node.name!r} has no pipeline producer")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        adjacency: dict[str, list[str]] = {name: [] for name in self._nodes}
        indegree: dict[str, int] = {name: 0 for name in self._nodes}
        for edge in self._edges:
            adjacency[edge.producer].append(edge.consumer)
            indegree[edge.consumer] += 1
        frontier = [name for name, deg in indegree.items() if deg == 0]
        seen = 0
        while frontier:
            name = frontier.pop()
            seen += 1
            for succ in adjacency[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    frontier.append(succ)
        if seen != len(self._nodes):
            raise PlanError("plan graph contains a cycle")

    # -- chain decomposition -----------------------------------------------------

    def chains(self) -> list[Chain]:
        """Decompose the plan into pipeline chains, in dataflow order."""
        consumed: set[str] = set()
        chains: list[Chain] = []
        heads = [node for node in self._nodes.values()
                 if not self.pipeline_producers(node.name)]
        for chain_id, head in enumerate(heads, start=1):
            nodes = [head]
            consumed.add(head.name)
            current = head.name
            while True:
                successor = self.pipeline_consumer(current)
                if successor is None:
                    break
                if successor in consumed:
                    raise PlanError(
                        f"node {successor!r} belongs to two chains")
                nodes.append(self.node(successor))
                consumed.add(successor)
                current = successor
            chains.append(Chain(chain_id, nodes))
        missing = set(self._nodes) - consumed
        if missing:
            raise PlanError(f"nodes unreachable from any chain head: {missing}")
        return chains

    def chain_dependencies(self, chains: list[Chain]) -> dict[int, set[int]]:
        """Chain-level DAG: chain -> set of chains it must wait for."""
        owner: dict[str, int] = {}
        for chain in chains:
            for node in chain.nodes:
                owner[node.name] = chain.chain_id
        dependencies: dict[int, set[int]] = {c.chain_id: set() for c in chains}
        for edge in self._edges:
            if edge.kind != MATERIALIZED:
                continue
            producer_chain = owner[edge.producer]
            consumer_chain = owner[edge.consumer]
            if producer_chain != consumer_chain:
                dependencies[consumer_chain].add(producer_chain)
        return dependencies

    def chain_waves(self) -> list[list[Chain]]:
        """Topological *waves* of chains: each wave runs concurrently,
        waves run in order.  Wave k holds the chains whose longest
        dependency path has length k."""
        chains = self.chains()
        dependencies = self.chain_dependencies(chains)
        by_id = {c.chain_id: c for c in chains}
        level: dict[int, int] = {}

        def level_of(chain_id: int, visiting: frozenset[int] = frozenset()) -> int:
            if chain_id in level:
                return level[chain_id]
            if chain_id in visiting:
                raise PlanError("cycle among chains")
            deps = dependencies[chain_id]
            value = 0 if not deps else 1 + max(
                level_of(d, visiting | {chain_id}) for d in deps)
            level[chain_id] = value
            return value

        for chain in chains:
            level_of(chain.chain_id)
        max_level = max(level.values())
        waves = [[] for _ in range(max_level + 1)]
        for chain_id, lvl in level.items():
            waves[lvl].append(by_id[chain_id])
        return waves
