"""Canonical subplan fingerprints over Lera-par graphs.

Shared-work execution (the workload engine's fold pass) needs to
decide, at admission time, whether a subplan of an incoming query
computes *exactly* the same row multiset as a subplan of an
already-admitted query.  The fingerprint is that decision procedure:
two nodes with equal, non-``None`` fingerprints denote semantically
identical operator subtrees over the *same* stored operands, so one
execution can serve both queries.

Identity rules (Section 2's operator taxonomy):

* **Scan/filter** — the scanned fragment *objects* (base-table
  fragments are owned by the catalog, so two compilations of the same
  relation reference the very same :class:`~repro.storage.fragment
  .Fragment` objects) plus the predicate's description and
  selectivity (:class:`~repro.lera.predicates.Predicate` equality
  deliberately excludes the compiled closure).
* **Index scan** — fragments, probed attribute and probe value.
* **Co-partitioned join** — both operand fragment lists, the join
  keys, the algorithm and the grain (strategy-relevant: grain changes
  the activation decomposition, not the rows, but a folded operator
  is executed once so its physical shape must satisfy every
  subscriber's schedule assumptions).
* **Transmit** — fragments, redistribution key and target degree (the
  degree decides the consumer-side partitioning of the stream).
* **Pipelined join / aggregate** — own identity fields plus the
  fingerprints of every pipeline producer, recursively: a pipelined
  operator's output is a function of its input stream, so its
  identity must capture the producer cone.

Anything else — in particular :class:`~repro.lera.operators
.StoreSpec`, which writes per-query temporary fragments — fingerprints
to ``None`` (never shareable).  So does any node downstream of a
materialized edge: its operands are runtime-materialized temporaries
whose contents are private to the owning query.  This is what makes
fingerprinting *sound by construction* for two-phase plans: the
shared-work layer can only fold operators whose inputs are immutable
base relations.

Fragment identity is object identity (``id``).  That is sound because
the fingerprints of two plans are only ever compared while both plans
are alive (they sit in the same workload), and each plan keeps its
fragments alive through its specs — two distinct live fragments can
never alias one id.

Fingerprints are memoized on the plan (:meth:`~repro.lera.graph
.LeraGraph.fingerprints`); mutating the graph invalidates the memo.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lera.graph import MATERIALIZED, LeraGraph
from repro.lera.operators import (
    AggregateSpec,
    IndexScanSpec,
    JoinSpec,
    PipelinedJoinSpec,
    ScanFilterSpec,
    TransmitSpec,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.storage.fragment import Fragment

#: A fingerprint is a nested tuple (hashable, directly comparable);
#: ``None`` marks a node that must never be folded.
Fingerprint = tuple


def _fragment_key(fragments: "list[Fragment]") -> tuple[int, ...]:
    return tuple(id(fragment) for fragment in fragments)


def _spec_key(spec) -> Fingerprint | None:
    """The node-local identity component (producers excluded)."""
    if isinstance(spec, ScanFilterSpec):
        return ("scan", _fragment_key(spec.fragments),
                spec.predicate.description, spec.predicate.selectivity)
    if isinstance(spec, IndexScanSpec):
        return ("index_scan", _fragment_key(spec.fragments),
                spec.attribute, repr(spec.value))
    if isinstance(spec, JoinSpec):
        return ("join", _fragment_key(spec.outer_fragments),
                _fragment_key(spec.inner_fragments),
                spec.outer_key, spec.inner_key, spec.algorithm, spec.grain)
    if isinstance(spec, TransmitSpec):
        return ("transmit", _fragment_key(spec.fragments),
                spec.key, spec.target_degree)
    if isinstance(spec, PipelinedJoinSpec):
        return ("pipelined_join", _fragment_key(spec.stored_fragments),
                spec.stored_key, spec.stream_key, spec.algorithm)
    if isinstance(spec, AggregateSpec):
        return ("aggregate", spec.group_by,
                tuple((expr.function, expr.attribute)
                      for expr in spec.aggregates),
                spec.degree)
    return None  # StoreSpec and anything unknown: never shareable


def compute_fingerprints(plan: LeraGraph) -> dict[str, Fingerprint | None]:
    """Fingerprint every node of *plan* (``None`` = not shareable).

    Called through the memoizing :meth:`LeraGraph.fingerprints`; the
    result maps node name to fingerprint.
    """
    materialized_into: set[str] = {
        edge.consumer for edge in plan.edges if edge.kind == MATERIALIZED}
    fingerprints: dict[str, Fingerprint | None] = {}

    def of(name: str) -> Fingerprint | None:
        if name in fingerprints:
            return fingerprints[name]
        node = plan.node(name)
        result: Fingerprint | None = None
        if name not in materialized_into:
            key = _spec_key(node.spec)
            if key is not None:
                producers = sorted(plan.pipeline_producers(name))
                upstream = tuple(of(producer) for producer in producers)
                if not any(part is None for part in upstream):
                    result = key + (upstream,) if upstream else key
        fingerprints[name] = result
        return result

    for node in plan.nodes:
        of(node.name)
    return fingerprints
