"""Selection predicates with cardinality estimates.

A :class:`Predicate` wraps a row-level boolean function together with
a human-readable description and an optional selectivity estimate used
by the scheduler's complexity estimation.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import CompilationError
from repro.storage.schema import Schema
from repro.storage.tuples import Row

_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
}


@dataclass(frozen=True)
class Predicate:
    """A row-level filter with metadata.

    Attributes:
        description: Display form, e.g. ``"unique1 < 1000"``.
        fn: The compiled row -> bool function.
        selectivity: Estimated fraction of rows passing, in [0, 1];
            ``None`` when unknown (the scheduler then assumes 1.0 for
            complexity and output-size purposes).
    """

    description: str
    fn: Callable[[Row], bool] = field(compare=False)
    selectivity: float | None = None

    def __call__(self, row: Row) -> bool:
        return self.fn(row)


#: Accepts every row — scanning without filtering.
TRUE = Predicate("true", lambda row: True, selectivity=1.0)


def attribute_predicate(schema: Schema, attribute: str, op: str,
                        value: object, selectivity: float | None = None) -> Predicate:
    """Compile ``attribute OP constant`` into a fast closure.

    The attribute is resolved to a tuple position once, so evaluation
    is a single indexed comparison per row.
    """
    comparator = _COMPARATORS.get(op)
    if comparator is None:
        raise CompilationError(
            f"unknown comparison operator {op!r}; expected one of "
            f"{sorted(_COMPARATORS)}")
    position = schema.position(attribute)

    def evaluate(row: Row, _pos: int = position, _cmp=comparator, _v=value) -> bool:
        return _cmp(row[_pos], _v)

    return Predicate(f"{attribute} {op} {value!r}", evaluate, selectivity)


def conjunction(*predicates: Predicate) -> Predicate:
    """AND-combine predicates; selectivities multiply when all known."""
    if not predicates:
        return TRUE
    if len(predicates) == 1:
        return predicates[0]
    selectivity: float | None = 1.0
    for p in predicates:
        if p.selectivity is None:
            selectivity = None
            break
        selectivity *= p.selectivity
    fns = tuple(p.fn for p in predicates)

    def evaluate(row: Row, _fns=fns) -> bool:
        return all(fn(row) for fn in _fns)

    description = " AND ".join(p.description for p in predicates)
    return Predicate(description, evaluate, selectivity)
