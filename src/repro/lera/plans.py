"""Plan builders for the paper's execution plans.

Three shapes cover the whole evaluation section:

* **selection** — Figure 8's parallel scan/filter;
* **IdealJoin** (Figure 10) — both operands partitioned on the join
  attribute with the same degree: one triggered join node;
* **AssocJoin** (Figure 11) — one operand must be dynamically
  repartitioned: a triggered Transmit node pipelines tuples into a
  pipelined join node.

A fourth builder reproduces Figure 1's filter-join pipeline, and
:func:`materialized` glues sub-plans into multi-chain queries like
Figure 5.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.lera.aggregates import AggregateExpr
from repro.lera.graph import MATERIALIZED, PIPELINE, LeraGraph
from repro.lera.operators import (
    JOIN_NESTED_LOOP,
    AggregateSpec,
    IndexScanSpec,
    JoinSpec,
    PipelinedJoinSpec,
    ScanFilterSpec,
    StoreSpec,
    TransmitSpec,
)
from repro.lera.predicates import TRUE, Predicate
from repro.storage.catalog import TableEntry
from repro.storage.fragment import Fragment


def selection_plan(entry: TableEntry, predicate: Predicate,
                   node_name: str = "filter") -> LeraGraph:
    """Parallel selection: one triggered filter node, one instance per
    fragment."""
    graph = LeraGraph()
    graph.add_node(node_name, ScanFilterSpec(
        fragments=entry.fragments,
        predicate=predicate,
        schema=entry.relation.schema,
    ))
    graph.validate()
    return graph


def index_scan_plan(entry: TableEntry, attribute: str, value: object,
                    node_name: str = "index_scan") -> LeraGraph:
    """Equality selection through a permanent index.

    Requires ``entry.create_index(attribute)`` to have been run; each
    instance probes its fragment's index instead of scanning.
    """
    indexes = entry.index_on(attribute)
    if indexes is None:
        raise PlanError(
            f"no index on {entry.name}.{attribute}; call create_index first")
    graph = LeraGraph()
    graph.add_node(node_name, IndexScanSpec(
        fragments=entry.fragments,
        indexes=indexes,
        attribute=attribute,
        value=value,
        schema=entry.relation.schema,
    ))
    graph.validate()
    return graph


def ideal_join_plan(outer: TableEntry, inner: TableEntry,
                    outer_key: str, inner_key: str,
                    algorithm: str = JOIN_NESTED_LOOP,
                    node_name: str = "join",
                    grain: int = 1) -> LeraGraph:
    """IdealJoin: both operands co-partitioned on the join attribute.

    ``grain > 1`` enables the chunked-trigger extension: each join
    instance is split into *grain* sub-activations over outer-fragment
    slices (see :class:`~repro.lera.operators.JoinSpec`).

    Raises :class:`PlanError` when the operands are not
    co-partitioned on the join keys — the compiler should have chosen
    an AssocJoin in that case.
    """
    if not outer.spec.compatible_with(inner.spec):
        raise PlanError(
            f"IdealJoin requires compatible partitionings; "
            f"{outer.name} has degree {outer.degree}, "
            f"{inner.name} has degree {inner.degree}")
    if outer.spec.keys != (outer_key,) or inner.spec.keys != (inner_key,):
        raise PlanError(
            "IdealJoin requires both relations partitioned on the join "
            f"attribute (got {outer.spec.keys} vs {outer_key!r} and "
            f"{inner.spec.keys} vs {inner_key!r})")
    graph = LeraGraph()
    graph.add_node(node_name, JoinSpec(
        outer_fragments=outer.fragments,
        inner_fragments=inner.fragments,
        outer_key=outer_key,
        inner_key=inner_key,
        algorithm=algorithm,
        grain=grain,
    ))
    graph.validate()
    return graph


def assoc_join_plan(stored: TableEntry, streamed: TableEntry,
                    stored_key: str, stream_key: str,
                    algorithm: str = JOIN_NESTED_LOOP,
                    transmit_name: str = "transmit",
                    join_name: str = "join") -> LeraGraph:
    """AssocJoin: *streamed* is repartitioned through a Transmit into a
    pipelined join against the statically partitioned *stored* operand.

    The stored operand must be partitioned on its join attribute (the
    paper: "the other one (A) is partitioned on the join attribute").
    """
    if stored.spec.keys != (stored_key,):
        raise PlanError(
            f"AssocJoin: stored operand {stored.name!r} must be partitioned "
            f"on the join attribute {stored_key!r}, got {stored.spec.keys}")
    graph = LeraGraph()
    graph.add_node(transmit_name, TransmitSpec(
        fragments=streamed.fragments,
        key=stream_key,
        target_degree=stored.degree,
    ))
    graph.add_node(join_name, PipelinedJoinSpec(
        stored_fragments=stored.fragments,
        stored_key=stored_key,
        stream_schema=streamed.relation.schema,
        stream_key=stream_key,
        algorithm=algorithm,
        stream_cardinality=streamed.cardinality,
    ))
    graph.add_edge(transmit_name, join_name, PIPELINE)
    graph.validate()
    return graph


def filter_join_plan(filtered: TableEntry, stored: TableEntry,
                     predicate: Predicate, filtered_key: str, stored_key: str,
                     algorithm: str = JOIN_NESTED_LOOP,
                     filter_name: str = "filter",
                     join_name: str = "join") -> LeraGraph:
    """Figure 1's plan: filter R, pipeline survivors into a join with S.

    The filter output is dynamically repartitioned on the join key as
    it flows into the pipelined join (each result tuple "is sent to
    one join instance which is automatically activated").
    """
    if stored.spec.keys != (stored_key,):
        raise PlanError(
            f"filter-join: stored operand {stored.name!r} must be "
            f"partitioned on {stored_key!r}, got {stored.spec.keys}")
    selectivity = predicate.selectivity if predicate.selectivity is not None else 1.0
    graph = LeraGraph()
    graph.add_node(filter_name, ScanFilterSpec(
        fragments=filtered.fragments,
        predicate=predicate,
        schema=filtered.relation.schema,
    ))
    graph.add_node(join_name, PipelinedJoinSpec(
        stored_fragments=stored.fragments,
        stored_key=stored_key,
        stream_schema=filtered.relation.schema,
        stream_key=filtered_key,
        algorithm=algorithm,
        stream_cardinality=int(filtered.cardinality * selectivity),
    ))
    graph.add_edge(filter_name, join_name, PIPELINE)
    graph.validate()
    return graph


def aggregate_plan(entry: TableEntry, aggregates: tuple[AggregateExpr, ...],
                   group_by: str | None = None,
                   predicate: Predicate = TRUE,
                   degree: int | None = None,
                   filter_name: str = "filter",
                   aggregate_name: str = "aggregate") -> LeraGraph:
    """Grouped aggregation: scan/filter pipelined into an aggregate.

    The filter's survivors are routed by hashing the group-by
    attribute into one aggregate instance per hash bucket; a global
    aggregate (``group_by=None``) has a single instance.  Each
    instance emits its groups when the pipeline closes.
    """
    if degree is None:
        degree = entry.degree if group_by is not None else 1
    graph = LeraGraph()
    graph.add_node(filter_name, ScanFilterSpec(
        fragments=entry.fragments,
        predicate=predicate,
        schema=entry.relation.schema,
    ))
    selectivity = predicate.selectivity if predicate.selectivity is not None else 1.0
    graph.add_node(aggregate_name, AggregateSpec(
        stream_schema=entry.relation.schema,
        group_by=group_by,
        aggregates=tuple(aggregates),
        degree=degree,
        stream_cardinality=int(entry.cardinality * selectivity),
    ))
    graph.add_edge(filter_name, aggregate_name, PIPELINE)
    graph.validate()
    return graph


def chain_join_plan(first_outer: TableEntry, first_inner: TableEntry,
                    first_outer_key: str, first_inner_key: str,
                    extensions: list[tuple[TableEntry, str, str]],
                    algorithm: str = JOIN_NESTED_LOOP,
                    expected_cardinalities: list[int] | None = None
                    ) -> LeraGraph:
    """An n-way left-deep join as a sequence of materialized chains.

    Phase 1 runs ``first_outer IdealJoin first_inner``.  Each extension
    ``(entry, intermediate_key, entry_key)`` adds a phase: the previous
    phase's result is piped into a Store that hash-partitions it on
    *intermediate_key* with *entry*'s degree (so the next join is an
    IdealJoin against *entry*, which must be partitioned on
    *entry_key*).  This is the multi-subquery execution of Figure 5,
    chains separated by result materializations.

    ``intermediate_key`` names an attribute of the *running*
    concatenated schema (colliding names carry the ``_2`` suffix of
    :meth:`~repro.storage.schema.Schema.concat`).
    ``expected_cardinalities[i]`` estimates phase ``i+1``'s input for
    the scheduler; defaults to the running minimum operand cardinality.
    """
    if not first_outer.spec.compatible_with(first_inner.spec):
        raise PlanError("first join operands are not co-partitioned")
    if not extensions:
        raise PlanError("chain_join_plan needs at least one extension; "
                        "use ideal_join_plan for a single join")

    graph = LeraGraph()
    graph.add_node("join1", JoinSpec(
        outer_fragments=first_outer.fragments,
        inner_fragments=first_inner.fragments,
        outer_key=first_outer_key,
        inner_key=first_inner_key,
        algorithm=algorithm,
    ))
    running_schema = first_outer.relation.schema.concat(
        first_inner.relation.schema)
    running_expected = min(first_outer.cardinality, first_inner.cardinality)
    previous_join = "join1"
    for phase, (entry, intermediate_key, entry_key) in enumerate(extensions,
                                                                 start=1):
        if entry.spec.keys != (entry_key,):
            raise PlanError(
                f"operand {entry.name!r} must be partitioned on "
                f"{entry_key!r}, got {entry.spec.keys}")
        running_schema.position(intermediate_key)  # fail fast
        if expected_cardinalities is not None:
            expected = expected_cardinalities[phase - 1]
        else:
            expected = min(running_expected, entry.cardinality)
        intermediate_name = f"T{phase}"
        target_fragments = [Fragment(intermediate_name, i, running_schema)
                            for i in range(entry.degree)]
        store_name = f"store{phase}"
        join_name = f"join{phase + 1}"
        graph.add_node(store_name, StoreSpec(
            target_fragments=target_fragments,
            stream_schema=running_schema,
            key=intermediate_key,
            expected_cardinality=expected,
        ))
        graph.add_edge(previous_join, store_name, PIPELINE)
        graph.add_node(join_name, JoinSpec(
            outer_fragments=target_fragments,
            inner_fragments=entry.fragments,
            outer_key=intermediate_key,
            inner_key=entry_key,
            algorithm=algorithm,
            outer_expected_total=expected,
        ))
        graph.add_edge(store_name, join_name, MATERIALIZED)
        running_schema = running_schema.concat(entry.relation.schema)
        running_expected = expected
        previous_join = join_name
    graph.validate()
    return graph


def two_phase_join_plan(first_outer: TableEntry, first_inner: TableEntry,
                        first_outer_key: str, first_inner_key: str,
                        second: TableEntry, intermediate_key: str,
                        second_key: str,
                        algorithm: str = JOIN_NESTED_LOOP,
                        expected_intermediate: int | None = None,
                        intermediate_name: str = "T1") -> LeraGraph:
    """A three-way join as two chains with a materialized intermediate.

    Thin wrapper over :func:`chain_join_plan` with a single extension,
    kept for its more explicit signature.  Node names are ``join1``,
    ``store1`` (aliased to ``store`` semantics in earlier releases) and
    ``join2``.
    """
    expected = None if expected_intermediate is None else [expected_intermediate]
    return chain_join_plan(
        first_outer, first_inner, first_outer_key, first_inner_key,
        [(second, intermediate_key, second_key)],
        algorithm=algorithm,
        expected_cardinalities=expected,
    )


def materialized(producer_plan: LeraGraph, consumer_plan: LeraGraph,
                 producer_node: str, consumer_node: str) -> LeraGraph:
    """Merge two plans with a materialized dependency between them.

    The producer's chain must complete before the consumer's chain
    starts; this is how Figure 5's multi-subquery graphs are built.
    Node names must be disjoint across the two plans.
    """
    merged = LeraGraph()
    for plan in (producer_plan, consumer_plan):
        for node in plan.nodes:
            if node.name in merged:
                raise PlanError(f"node name collision on {node.name!r}")
            merged.add_node(node.name, node.spec)
        for edge in plan.edges:
            merged.add_edge(edge.producer, edge.consumer, edge.kind)
    merged.add_edge(producer_node, consumer_node, MATERIALIZED)
    merged.validate()
    return merged
