"""Workload-level execution knobs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.executor import ObservabilityOptions
from repro.errors import WorkloadError


@dataclass(frozen=True)
class WorkloadOptions:
    """Knobs of the multi-query execution layer.

    Per-query execution knobs (placement, seed, per-query
    observability) stay in :class:`~repro.engine.executor
    .ExecutionOptions`; this block only holds what exists *between*
    queries.
    """

    max_concurrent: int = 4
    """Admission bound: at most this many queries execute at once;
    later arrivals queue (FIFO) until a running query completes."""
    memory_limit_bytes: int | None = None
    """Admission memory gate: a query is only admitted while the
    estimated stored-data footprint of all running queries plus its
    own stays within this budget.  ``None`` disables the gate."""
    thread_budget: int | None = None
    """Machine thread budget "step 0" distributes across running
    queries; defaults to the machine's processor count."""
    shared: bool = False
    """Shared-work execution: at admission time, fold an incoming
    query's subplans onto identical subplans of already-admitted
    queries (canonical fingerprints over the Lera-par graph), so one
    shared operator's output fans out to every subscriber.  Off (the
    default), the engine is bit-identical to the pre-sharing engine —
    the escape hatch every layer keeps."""
    rebalance: bool = True
    """Dynamic reallocation: when a query completes, re-grant its
    share of the budget to the remaining queries *mid-wave* (helper
    threads join their pools).  Off, grants still adapt but only at
    the next wave boundary of each query."""
    observability: ObservabilityOptions = field(
        default_factory=ObservabilityOptions)
    """Workload-level telemetry knobs.  ``observe=True`` turns on the
    :class:`~repro.obs.metrics.MetricsRegistry` and per-query
    :class:`~repro.obs.spans.QuerySpan` assembly for this run
    (``result.metrics`` / ``result.spans`` / ``result.report()``);
    per-query ``ExecutionOptions.observability.observe`` implies it.
    The raw workload event stream (submit/admit/grant/finish) is
    always collected — it is O(queries), not O(activations)."""
    faults: object | None = None
    """Optional :class:`~repro.faults.FaultPlan` applied to the whole
    workload's shared simulation.  ``None`` (the default) leaves the
    engine hot path untouched — fault-free runs are bit-identical
    with or without the faults layer imported."""

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise WorkloadError(
                f"max_concurrent must be >= 1, got {self.max_concurrent} "
                f"(a zero-capacity workload could never admit a query)")
        if self.memory_limit_bytes is not None and self.memory_limit_bytes <= 0:
            raise WorkloadError(
                f"memory_limit_bytes must be positive, got "
                f"{self.memory_limit_bytes}")
        if self.thread_budget is not None and self.thread_budget < 1:
            raise WorkloadError(
                f"thread_budget must be >= 1, got {self.thread_budget}")
