"""Workload-level execution knobs."""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field

from repro.adapt.policy import SchedulingPolicy
from repro.engine.executor import ObservabilityOptions
from repro.errors import WorkloadError
from repro.serve.policies import ServingPolicy


@dataclass(frozen=True)
class WorkloadOptions:
    """Knobs of the multi-query execution layer.

    Per-query execution knobs (placement, seed, per-query
    observability) stay in :class:`~repro.engine.executor
    .ExecutionOptions`; this block only holds what exists *between*
    queries.

    Scheduling behaviour lives in the nested
    :class:`~repro.adapt.policy.SchedulingPolicy` block
    (``scheduling=``).  The old flat ``rebalance=`` boolean is kept as
    a deprecated constructor alias for
    ``scheduling=SchedulingPolicy(rebalance=...)`` and as a read-only
    property.
    """

    max_concurrent: int = 4
    """Admission bound: at most this many queries execute at once;
    later arrivals queue (FIFO) until a running query completes."""
    memory_limit_bytes: int | None = None
    """Admission memory gate: a query is only admitted while the
    estimated stored-data footprint of all running queries plus its
    own stays within this budget.  ``None`` disables the gate."""
    thread_budget: int | None = None
    """Machine thread budget "step 0" distributes across running
    queries; defaults to the machine's processor count."""
    shared: bool = False
    """Shared-work execution: at admission time, fold an incoming
    query's subplans onto identical subplans of already-admitted
    queries (canonical fingerprints over the Lera-par graph), so one
    shared operator's output fans out to every subscriber.  Off (the
    default), the engine is bit-identical to the pre-sharing engine —
    the escape hatch every layer keeps."""
    scheduling: SchedulingPolicy = field(default_factory=SchedulingPolicy)
    """The :class:`~repro.adapt.policy.SchedulingPolicy` block:
    ``policy="static"`` (default, bit-identical to the pre-controller
    engine) or ``policy="adaptive"``, plus the mid-wave ``rebalance``
    toggle and the adaptive decision thresholds."""
    observability: ObservabilityOptions = field(
        default_factory=ObservabilityOptions)
    """Workload-level telemetry knobs.  ``observe=True`` turns on the
    :class:`~repro.obs.metrics.MetricsRegistry` and per-query
    :class:`~repro.obs.spans.QuerySpan` assembly for this run
    (``result.metrics`` / ``result.spans`` / ``result.report()``);
    per-query ``ExecutionOptions.observability.observe`` implies it.
    The raw workload event stream (submit/admit/grant/finish) is
    always collected — it is O(queries), not O(activations)."""
    faults: object | None = None
    """Optional :class:`~repro.faults.FaultPlan` applied to the whole
    workload's shared simulation.  ``None`` (the default) leaves the
    engine hot path untouched — fault-free runs are bit-identical
    with or without the faults layer imported."""
    serving: ServingPolicy | None = None
    """The :class:`~repro.serve.policies.ServingPolicy` block:
    overload protection for open-loop serving — pluggable admission
    order (FIFO / priority / fair-share / EDF), a bounded wait queue
    with backpressure and load shedding, and brownout degradation.
    ``None`` (the default) disables the whole layer: queries that
    cannot ever be admitted *raise* instead of being rejected, the
    queue is unbounded, and the run is bit-identical to the
    pre-serving engine — the escape hatch every layer keeps."""

    # Hand-written so the deprecated flat ``rebalance=`` keyword can be
    # accepted (with a warning) without being a field.  ``@dataclass``
    # skips generating ``__init__`` when the class defines one.
    def __init__(self, max_concurrent: int = 4,
                 memory_limit_bytes: int | None = None,
                 thread_budget: int | None = None,
                 shared: bool = False,
                 scheduling: SchedulingPolicy | None = None,
                 observability: ObservabilityOptions | None = None,
                 faults: object | None = None,
                 serving: ServingPolicy | None = None,
                 rebalance: bool | None = None) -> None:
        if rebalance is not None:
            if scheduling is not None:
                raise WorkloadError(
                    "pass rebalance inside SchedulingPolicy "
                    "(scheduling=SchedulingPolicy(rebalance=...)), not "
                    "both scheduling= and the deprecated rebalance= flag")
            warnings.warn(
                "WorkloadOptions(rebalance=...) is deprecated; use "
                "WorkloadOptions(scheduling=SchedulingPolicy("
                "rebalance=...))",
                DeprecationWarning, stacklevel=2)
            scheduling = SchedulingPolicy(rebalance=rebalance)
        object.__setattr__(self, "max_concurrent", max_concurrent)
        object.__setattr__(self, "memory_limit_bytes", memory_limit_bytes)
        object.__setattr__(self, "thread_budget", thread_budget)
        object.__setattr__(self, "shared", shared)
        object.__setattr__(self, "scheduling",
                           scheduling if scheduling is not None
                           else SchedulingPolicy())
        object.__setattr__(self, "observability",
                           observability if observability is not None
                           else ObservabilityOptions())
        object.__setattr__(self, "faults", faults)
        object.__setattr__(self, "serving", serving)
        self.__post_init__()

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise WorkloadError(
                f"max_concurrent must be >= 1, got {self.max_concurrent} "
                f"(a zero-capacity workload could never admit a query)")
        if self.memory_limit_bytes is not None and self.memory_limit_bytes <= 0:
            raise WorkloadError(
                f"memory_limit_bytes must be positive, got "
                f"{self.memory_limit_bytes}")
        if self.thread_budget is not None and self.thread_budget < 1:
            raise WorkloadError(
                f"thread_budget must be >= 1, got {self.thread_budget}")
        if not isinstance(self.scheduling, SchedulingPolicy):
            raise WorkloadError(
                f"scheduling must be a SchedulingPolicy, got "
                f"{type(self.scheduling).__name__}")
        if not isinstance(self.observability, ObservabilityOptions):
            raise WorkloadError(
                f"observability must be an ObservabilityOptions, got "
                f"{type(self.observability).__name__}")
        if (self.serving is not None
                and not isinstance(self.serving, ServingPolicy)):
            raise WorkloadError(
                f"serving must be a ServingPolicy (or None), got "
                f"{type(self.serving).__name__}")

    # Read-only view for the old flat name (engine call sites and user
    # code keep reading ``options.rebalance``).
    @property
    def rebalance(self) -> bool:
        """Deprecated alias for ``scheduling.rebalance``."""
        return self.scheduling.rebalance

    def replace(self, **changes) -> "WorkloadOptions":
        """Copy with the given fields replaced (ergonomic twin of
        :func:`dataclasses.replace`)."""
        return dataclasses.replace(self, **changes)
