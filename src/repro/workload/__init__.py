"""Multi-query workloads: several queries in one shared simulation.

The single-query :class:`~repro.engine.executor.Executor` stops the
paper's adaptivity story at the query boundary.  This package lifts it
one level: an admission controller bounds how many queries run at
once, the four-step scheduler's proportional-complexity split is
applied *across* running queries ("step 0"), and — the paper's dynamic
allocation, generalized inter-query — threads freed by a completing
query are re-granted to the remaining ones mid-flight.

Public face: :class:`~repro.workload.session.Session` /
:class:`~repro.workload.session.QueryHandle`, reachable through
``DBS3.session()``.  A lone submitted query executes bit-identically
to ``Executor.execute`` (golden-trace tested), so ``db.query()`` is a
thin wrapper over a one-query session.
"""

from repro.adapt.policy import (
    POLICIES,
    POLICY_ADAPTIVE,
    POLICY_STATIC,
    SchedulingPolicy,
)
from repro.workload.engine import (
    QuerySubmission,
    WorkloadExecutor,
    WorkloadResult,
)
from repro.workload.options import WorkloadOptions
from repro.workload.session import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    REJECTED,
    SHED,
    TIMED_OUT,
    QueryHandle,
    Session,
)

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "PENDING",
    "POLICIES",
    "POLICY_ADAPTIVE",
    "POLICY_STATIC",
    "REJECTED",
    "SHED",
    "TIMED_OUT",
    "QueryHandle",
    "QuerySubmission",
    "SchedulingPolicy",
    "Session",
    "WorkloadExecutor",
    "WorkloadOptions",
    "WorkloadResult",
]
