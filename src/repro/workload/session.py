"""The Session API: the blessed way to run queries, one or many.

A :class:`Session` collects query submissions — each with an optional
virtual-time arrival offset — and executes them all in one shared
simulation when :meth:`Session.run` is called (or lazily, the first
time any handle's :meth:`QueryHandle.result` is asked for).

    >>> session = db.session()
    >>> h1 = session.submit("SELECT * FROM A JOIN B ON ...")
    >>> h2 = session.submit("SELECT * FROM C JOIN D ON ...", at=5.0)
    >>> h1.result().cardinality        # drives the whole workload
    >>> h2.execution.response_time     # includes its admission wait

``db.query()`` is a thin wrapper over a one-query session; a lone
query through this path is bit-identical to the single-query executor
(golden-trace tested).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.compiler.parallelizer import CompiledQuery
from repro.core.results import QueryResult
from repro.engine.executor import QuerySchedule
from repro.engine.metrics import QueryExecution
from repro.errors import WorkloadError
from repro.lera.graph import LeraGraph
from repro.lera.operators import JOIN_NESTED_LOOP
from repro.storage.schema import Schema
from repro.workload.admission import AdmissionController, plan_footprint
from repro.workload.engine import (
    QuerySubmission,
    WorkloadExecutor,
    WorkloadResult,
)
from repro.workload.options import WorkloadOptions

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.core.database import DBS3

#: Handle states.
PENDING = "pending"
DONE = "done"
FAILED = "failed"


class QueryHandle:
    """One submitted query's future result."""

    def __init__(self, session: Session, tag: str, compiled: CompiledQuery,
                 schedule: QuerySchedule, arrival: float) -> None:
        self._session = session
        self.tag = tag
        self.compiled = compiled
        self.schedule = schedule
        """The four-step schedule computed for this query at submit
        time (its per-operation thread demands; step 0 may rescale
        them when other queries run concurrently)."""
        self.arrival = arrival

    def __repr__(self) -> str:
        return (f"QueryHandle(tag={self.tag!r}, at={self.arrival}, "
                f"status={self.status!r})")

    @property
    def status(self) -> str:
        """``pending`` before the workload ran, then ``done``/``failed``."""
        return self._session._status_of(self.tag)

    @property
    def execution(self) -> QueryExecution:
        """Execution metrics; drives the workload if it has not run."""
        return self._session.run().execution(self.tag)

    def result(self) -> QueryResult:
        """The query's relational result; drives the workload if it
        has not run yet (so ``result()`` before completion simply
        executes everything submitted so far)."""
        execution = self.execution
        rows = self.compiled.shape_rows(execution.result_rows)
        return QueryResult(
            rows=rows,
            schema=self.compiled.final_schema,
            execution=execution,
            description=self.compiled.description,
        )


class Session:
    """A batch of queries destined for one shared simulation.

    Obtained from :meth:`repro.core.database.DBS3.session`.  Submissions
    accumulate; :meth:`run` executes them all at once (virtual arrival
    offsets stagger them inside the simulation, not in wall time) and
    is idempotent — every handle shares the one
    :class:`~repro.workload.engine.WorkloadResult`.
    """

    def __init__(self, db: DBS3, options: WorkloadOptions | None = None) -> None:
        self.db = db
        self.options = options or WorkloadOptions()
        self.handles: list[QueryHandle] = []
        self._result: WorkloadResult | None = None
        self._failed: Exception | None = None

    def __repr__(self) -> str:
        state = ("failed" if self._failed is not None
                 else "done" if self._result is not None
                 else "pending")
        return f"Session(queries={len(self.handles)}, state={state!r})"

    # -- submission ------------------------------------------------------------

    def submit(self, sql: str, at: float = 0.0, threads: int | None = None,
               algorithm: str = JOIN_NESTED_LOOP,
               schedule: QuerySchedule | None = None,
               tag: str | None = None) -> QueryHandle:
        """Compile *sql* and queue it for execution at offset *at*."""
        compiled = self.db.compile(sql, algorithm)
        return self.submit_compiled(compiled, at=at, threads=threads,
                                    schedule=schedule, tag=tag)

    def submit_plan(self, plan: LeraGraph, output_schema: Schema,
                    at: float = 0.0, threads: int | None = None,
                    schedule: QuerySchedule | None = None,
                    tag: str | None = None,
                    description: str = "custom plan") -> QueryHandle:
        """Queue a hand-built Lera-par plan."""
        compiled = CompiledQuery(plan, output_schema, None, description)
        return self.submit_compiled(compiled, at=at, threads=threads,
                                    schedule=schedule, tag=tag)

    def submit_compiled(self, compiled: CompiledQuery, at: float = 0.0,
                        threads: int | None = None,
                        schedule: QuerySchedule | None = None,
                        tag: str | None = None) -> QueryHandle:
        """Queue an already-compiled query.

        The schedule is computed here (submit time), so
        ``handle.schedule`` is inspectable before the workload runs.
        A query whose lone memory footprint exceeds the workload's
        limit fails *now* with :class:`~repro.errors.AdmissionError`
        rather than poisoning the whole batch at :meth:`run`.
        """
        if self._result is not None or self._failed is not None:
            raise WorkloadError(
                "session already ran; open a new session to submit more "
                "queries")
        if tag is None:
            tag = f"q{len(self.handles)}"
        elif any(h.tag == tag for h in self.handles):
            raise WorkloadError(f"duplicate query tag {tag!r} in session")
        compiled.plan.validate()
        if self.options.memory_limit_bytes is not None:
            footprint = plan_footprint(compiled.plan, self.db.machine.costs)
            AdmissionController(self.options).check_admissible(tag, footprint)
        if schedule is None:
            schedule = self.db.scheduler.schedule(compiled.plan, threads)
        handle = QueryHandle(self, tag, compiled, schedule, at)
        # QuerySubmission re-validates the arrival offset; building it
        # here keeps bad offsets from surfacing only at run().
        QuerySubmission(tag, compiled, schedule, at)
        self.handles.append(handle)
        return handle

    # -- execution -------------------------------------------------------------

    def run(self) -> WorkloadResult:
        """Execute every submitted query in one shared simulation.

        Idempotent: the first call runs the workload, later calls
        (and every handle's ``result()``) return the same
        :class:`~repro.workload.engine.WorkloadResult`.  An empty
        session yields an empty result.
        """
        if self._failed is not None:
            raise WorkloadError(
                f"session already failed: {self._failed}") from self._failed
        if self._result is not None:
            return self._result
        submissions = [QuerySubmission(h.tag, h.compiled, h.schedule, h.arrival)
                       for h in self.handles]
        executor = WorkloadExecutor(self.db.machine, self.db.executor.options,
                                    self.options)
        try:
            self._result = executor.execute(submissions)
        except Exception as error:
            self._failed = error
            raise
        return self._result

    @property
    def result(self) -> WorkloadResult | None:
        """The workload result, or ``None`` before :meth:`run`."""
        return self._result

    # -- handle support --------------------------------------------------------

    def _status_of(self, tag: str) -> str:
        if self._failed is not None:
            return FAILED
        if self._result is None:
            return PENDING
        return DONE
