"""The Session API: the blessed way to run queries, one or many.

A :class:`Session` collects query submissions — each with an optional
virtual-time arrival offset — and executes them all in one shared
simulation when :meth:`Session.run` is called (or lazily, the first
time any handle's :meth:`QueryHandle.result` is asked for).

    >>> session = db.session()
    >>> h1 = session.submit("SELECT * FROM A JOIN B ON ...")
    >>> h2 = session.submit("SELECT * FROM C JOIN D ON ...", at=5.0)
    >>> h1.result().cardinality        # drives the whole workload
    >>> h2.execution.response_time     # includes its admission wait

``db.query()`` is a thin wrapper over a one-query session; a lone
query through this path is bit-identical to the single-query executor
(golden-trace tested).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.compiler.parallelizer import CompiledQuery
from repro.core.results import QueryResult
from repro.engine.executor import QuerySchedule
from repro.engine.metrics import (
    STATUS_CANCELLED,
    STATUS_FAILED,
    STATUS_REJECTED,
    STATUS_SHED,
    STATUS_TIMED_OUT,
    QueryExecution,
)
from repro.errors import (
    ExecutionFaultError,
    QueryCancelledError,
    QueryRejectedError,
    QueryShedError,
    QueryTimeoutError,
    WorkloadError,
)
from repro.lera.graph import LeraGraph
from repro.lera.operators import JOIN_NESTED_LOOP
from repro.storage.schema import Schema
from repro.workload.admission import AdmissionController, plan_footprint
from repro.workload.engine import (
    QuerySubmission,
    WorkloadExecutor,
    WorkloadResult,
)
from repro.workload.options import WorkloadOptions

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.core.database import DBS3

#: Handle states.  The terminal ones mirror the execution statuses.
PENDING = "pending"
DONE = "done"
FAILED = "failed"
CANCELLED = STATUS_CANCELLED
TIMED_OUT = STATUS_TIMED_OUT
REJECTED = STATUS_REJECTED
SHED = STATUS_SHED


class QueryHandle:
    """One submitted query's future result."""

    def __init__(self, session: Session, tag: str, compiled: CompiledQuery,
                 schedule: QuerySchedule, arrival: float,
                 timeout: float | None = None, priority: int = 0,
                 tenant: str = "default") -> None:
        self._session = session
        self.tag = tag
        self.compiled = compiled
        self.schedule = schedule
        """The four-step schedule computed for this query at submit
        time (its per-operation thread demands; step 0 may rescale
        them when other queries run concurrently)."""
        self.arrival = arrival
        self.timeout = timeout
        self.priority = priority
        self.tenant = tenant
        self.cancel_at: float | None = None

    def __repr__(self) -> str:
        return (f"QueryHandle(tag={self.tag!r}, at={self.arrival}, "
                f"status={self.status!r})")

    def cancel(self, at: float | None = None) -> None:
        """Schedule this query's cancellation at virtual time *at*.

        With ``at=None`` the query is cancelled at its own arrival
        instant — it is withdrawn before admission and never runs.
        The simulation is virtual-time, so cancellation is scheduled
        *before* :meth:`Session.run`, not raced against it; cancelling
        after the workload ran is an error.
        """
        if self._session.result is not None:
            raise WorkloadError(
                f"cannot cancel {self.tag!r}: the workload already ran")
        instant = self.arrival if at is None else at
        if instant < self.arrival:
            raise WorkloadError(
                f"cancel_at ({instant}) must be >= arrival "
                f"({self.arrival}) for {self.tag!r}")
        self.cancel_at = instant

    @property
    def status(self) -> str:
        """``pending`` before the workload ran; afterwards the query's
        terminal status: ``done`` / ``cancelled`` / ``timed_out`` /
        ``failed`` — or, under a serving policy, ``rejected`` /
        ``shed`` for queries the overload-protection layer turned
        away before admission."""
        return self._session._status_of(self.tag)

    @property
    def execution(self) -> QueryExecution:
        """Execution metrics; drives the workload if it has not run.

        Available for *every* terminal status — a cancelled or failed
        query exposes its partial metrics here even though
        :meth:`result` raises."""
        return self._session.run().execution(self.tag)

    def result(self) -> QueryResult:
        """The query's relational result; drives the workload if it
        has not run yet (so ``result()`` before completion simply
        executes everything submitted so far).

        Raises :class:`~repro.errors.QueryCancelledError` /
        :class:`~repro.errors.QueryTimeoutError` /
        :class:`~repro.errors.ExecutionFaultError` when the query did
        not run to completion — a partial result set must never be
        mistaken for the real one (inspect :attr:`execution` instead).
        """
        execution = self.execution
        if execution.status == STATUS_TIMED_OUT:
            raise QueryTimeoutError(
                f"query {self.tag!r} timed out after {self.timeout} virtual "
                f"seconds; partial metrics are on handle.execution")
        if execution.status == STATUS_CANCELLED:
            raise QueryCancelledError(
                f"query {self.tag!r} was cancelled; partial metrics are on "
                f"handle.execution")
        if execution.status == STATUS_FAILED:
            message = self._session.run().errors.get(
                self.tag, "activation retries exhausted")
            raise ExecutionFaultError(
                f"query {self.tag!r} aborted: {message}")
        if execution.status == STATUS_SHED:
            raise QueryShedError(
                f"query {self.tag!r} was load-shed before admission; "
                f"resubmit when the system is less loaded")
        if execution.status == STATUS_REJECTED:
            raise QueryRejectedError(
                f"query {self.tag!r} was rejected at admission; it could "
                f"never have been admitted under the workload limits")
        rows = self.compiled.shape_rows(execution.result_rows)
        return QueryResult(
            rows=rows,
            schema=self.compiled.final_schema,
            execution=execution,
            description=self.compiled.description,
        )

    @property
    def span(self):
        """This query's :class:`~repro.obs.spans.QuerySpan`; drives the
        workload if it has not run.  Requires workload observability
        (``WorkloadOptions(observability=...)`` or per-query
        ``observe``) — raises :class:`~repro.errors.WorkloadError`
        otherwise, the telemetry twin of :attr:`execution`.
        """
        result = self._session.run()
        if result.spans is None:
            raise WorkloadError(
                f"no span for {self.tag!r}: the workload ran without "
                f"observability; enable WorkloadOptions(observability="
                f"ObservabilityOptions(observe=True))")
        return result.spans.of(self.tag)


class Session:
    """A batch of queries destined for one shared simulation.

    Obtained from :meth:`repro.core.database.DBS3.session`.  Submissions
    accumulate; :meth:`run` executes them all at once (virtual arrival
    offsets stagger them inside the simulation, not in wall time) and
    is idempotent — every handle shares the one
    :class:`~repro.workload.engine.WorkloadResult`.
    """

    def __init__(self, db: DBS3, options: WorkloadOptions | None = None) -> None:
        self.db = db
        self.options = options or WorkloadOptions()
        self.handles: list[QueryHandle] = []
        self._result: WorkloadResult | None = None
        self._failed: Exception | None = None

    def __repr__(self) -> str:
        state = ("failed" if self._failed is not None
                 else "done" if self._result is not None
                 else "pending")
        return f"Session(queries={len(self.handles)}, state={state!r})"

    # -- submission ------------------------------------------------------------

    def submit(self, sql: str, at: float = 0.0, threads: int | None = None,
               algorithm: str = JOIN_NESTED_LOOP,
               schedule: QuerySchedule | None = None,
               tag: str | None = None,
               timeout: float | None = None,
               priority: int = 0,
               tenant: str = "default") -> QueryHandle:
        """Compile *sql* and queue it for execution at offset *at*."""
        compiled = self.db.compile(sql, algorithm)
        return self.submit_compiled(compiled, at=at, threads=threads,
                                    schedule=schedule, tag=tag,
                                    timeout=timeout, priority=priority,
                                    tenant=tenant)

    def submit_plan(self, plan: LeraGraph, output_schema: Schema,
                    at: float = 0.0, threads: int | None = None,
                    schedule: QuerySchedule | None = None,
                    tag: str | None = None,
                    timeout: float | None = None,
                    priority: int = 0,
                    tenant: str = "default",
                    description: str = "custom plan") -> QueryHandle:
        """Queue a hand-built Lera-par plan."""
        compiled = CompiledQuery(plan, output_schema, None, description)
        return self.submit_compiled(compiled, at=at, threads=threads,
                                    schedule=schedule, tag=tag,
                                    timeout=timeout, priority=priority,
                                    tenant=tenant)

    def submit_compiled(self, compiled: CompiledQuery, at: float = 0.0,
                        threads: int | None = None,
                        schedule: QuerySchedule | None = None,
                        tag: str | None = None,
                        timeout: float | None = None,
                        priority: int = 0,
                        tenant: str = "default") -> QueryHandle:
        """Queue an already-compiled query.

        The schedule is computed here (submit time), so
        ``handle.schedule`` is inspectable before the workload runs.
        A query whose lone memory footprint exceeds the workload's
        limit fails *now* with :class:`~repro.errors.AdmissionError`
        rather than poisoning the whole batch at :meth:`run`.
        ``timeout`` (virtual seconds after arrival) bounds the query's
        time on the machine; see :meth:`QueryHandle.cancel` for
        explicit cancellation.
        """
        if self._result is not None or self._failed is not None:
            raise WorkloadError(
                "session already ran; open a new session to submit more "
                "queries")
        if tag is None:
            tag = f"q{len(self.handles)}"
        elif any(h.tag == tag for h in self.handles):
            raise WorkloadError(f"duplicate query tag {tag!r} in session")
        compiled.plan.validate()
        if (self.options.memory_limit_bytes is not None
                and self.options.serving is None):
            # Under a serving policy the engine *rejects* an impossible
            # query (terminal status ``rejected``) instead of the
            # session raising eagerly — an open-loop stream has no
            # caller to raise into.
            footprint = plan_footprint(compiled.plan, self.db.machine.costs)
            AdmissionController(self.options).check_admissible(tag, footprint)
        if schedule is None:
            schedule = self.db.scheduler.schedule(compiled.plan, threads)
        handle = QueryHandle(self, tag, compiled, schedule, at,
                             timeout=timeout, priority=priority,
                             tenant=tenant)
        # QuerySubmission re-validates the arrival offset, timeout and
        # serving attributes; building it here keeps bad values from
        # surfacing only at run().
        QuerySubmission(tag, compiled, schedule, at, timeout=timeout,
                        priority=priority, tenant=tenant)
        self.handles.append(handle)
        return handle

    # -- execution -------------------------------------------------------------

    def run(self) -> WorkloadResult:
        """Execute every submitted query in one shared simulation.

        Idempotent: the first call runs the workload, later calls
        (and every handle's ``result()``) return the same
        :class:`~repro.workload.engine.WorkloadResult`.  An empty
        session yields an empty result.
        """
        if self._failed is not None:
            raise WorkloadError(
                f"session already failed: {self._failed}") from self._failed
        if self._result is not None:
            return self._result
        submissions = [QuerySubmission(h.tag, h.compiled, h.schedule,
                                       h.arrival, timeout=h.timeout,
                                       cancel_at=h.cancel_at,
                                       priority=h.priority,
                                       tenant=h.tenant)
                       for h in self.handles]
        executor = WorkloadExecutor(self.db.machine, self.db.executor.options,
                                    self.options)
        try:
            self._result = executor.execute(submissions)
        except Exception as error:
            self._failed = error
            raise
        return self._result

    @property
    def result(self) -> WorkloadResult | None:
        """The workload result, or ``None`` before :meth:`run`."""
        return self._result

    def metrics(self):
        """The run's :class:`~repro.obs.metrics.MetricsRegistry`;
        drives the workload if it has not run.  Raises
        :class:`WorkloadError` when the run was not observed.
        """
        registry = self.run().metrics
        if registry is None:
            raise WorkloadError(
                "no metrics: the workload ran without observability; "
                "enable WorkloadOptions(observability="
                "ObservabilityOptions(observe=True))")
        return registry

    def alerts(self):
        """The run's :class:`~repro.obs.alerts.AlertBus`; drives the
        workload if it has not run.  Raises :class:`WorkloadError`
        when no monitor rules were installed.
        """
        bus = self.run().alerts
        if bus is None:
            raise WorkloadError(
                "no alerts: the workload ran without monitor rules; "
                "enable WorkloadOptions(observability="
                "ObservabilityOptions(monitors=default_monitors()))")
        return bus

    def report(self):
        """The run's :class:`~repro.obs.report.WorkloadReport`; drives
        the workload if it has not run (requires observability)."""
        return self.run().report()

    # -- handle support --------------------------------------------------------

    def _status_of(self, tag: str) -> str:
        if self._failed is not None:
            return FAILED
        if self._result is None:
            return PENDING
        return self._result.execution(tag).status
