"""The multi-query workload engine.

Admits several compiled queries into **one** shared virtual-time
simulation.  Each query keeps its own plan, schedule, observability
bus and trace; the machine — processors, dilation, the event heap —
is shared, so concurrent queries contend exactly the way the paper's
threads do inside one query.

Life of a query here:

1. **submit** at its arrival offset; it enters the FIFO admission
   queue (:class:`~repro.workload.admission.AdmissionController`).
2. **admit** when capacity and the memory gate allow; its sequential
   initialization is charged on the single init thread (start-ups of
   co-arriving queries serialize, as in the single-query executor).
3. **grant**: "step 0" — :func:`~repro.scheduler.allocation
   .allocate_to_queries` splits the machine's thread budget across
   running queries by estimated complexity, capped at each query's
   own demand.  A lone query gets its full demand, which is what
   makes the one-query path bit-identical to
   :class:`~repro.engine.executor.Executor` (golden-trace tested).
4. **waves** run through the shared simulator; each wave's
   per-operation split rescales the query's own schedule to its
   current grant (largest-remainder, the paper's step-3 rule).
5. **re-grant**: when a query completes, the freed capacity is
   redistributed; with ``rebalance`` on, still-running queries grow
   their *current* wave mid-flight with helper threads (pure
   secondary consumers — the paper's dynamic allocation generalized
   across queries).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.parallelizer import CompiledQuery
from repro.engine.executor import (
    ExecutionOptions,
    Executor,
    QuerySchedule,
    _router_for,
)
from repro.engine.metrics import (
    STATUS_CANCELLED,
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_REJECTED,
    STATUS_SHED,
    STATUS_TIMED_OUT,
    OperationMetrics,
    QueryExecution,
)
from repro.engine.operation import DeliveryTap, OperationRuntime
from repro.engine.simulator import Simulator
from repro.engine.threads import WorkerThread
from repro.engine.trace import ExecutionTrace
from repro.errors import AdmissionError, ExecutionFaultError, WorkloadError
from repro.lera.graph import PIPELINE
from repro.machine.machine import Machine
from repro.obs.alerts import AlertBus
from repro.obs.bus import (
    QUERY_ABORT,
    QUERY_ADMIT,
    QUERY_CANCEL,
    QUERY_FINISH,
    QUERY_GRANT,
    QUERY_REJECT,
    QUERY_SUBMIT,
    SERVE_BACKPRESSURE,
    SERVE_BROWNOUT,
    WAVE_END,
    WAVE_START,
    EventBus,
)
from repro.obs.metrics import (
    ADMISSION_QUEUE_DEPTH,
    ADMISSION_WAIT,
    BACKPRESSURE_ENGAGED,
    BROWNOUT_ACTIVE,
    FOLD_ATTEMPTS,
    FOLD_COST_SHARE,
    FOLD_HITS,
    FOLD_SUBSCRIBERS,
    GRANTED_THREADS,
    GRANTS,
    POOL_UTILIZATION,
    QUERIES_ADMITTED,
    QUERIES_FINISHED,
    QUERIES_REJECTED,
    QUERIES_SHED,
    QUERIES_SUBMITTED,
    QUERY_LATENCY,
    RUNNING_QUERIES,
    MetricsRegistry,
)
from repro.obs.monitor import (
    POINT_ADMISSION,
    POINT_FINISH,
    POINT_REGRANT,
    POINT_WAVE,
    MonitorEngine,
)
from repro.obs.explain import ScheduleExplanation
from repro.obs.spans import SpanSet, assemble_spans
from repro.adapt.controller import AdaptiveController
from repro.prof.profiler import EngineProfiler, active_profiler
from repro.scheduler.allocation import (
    ResourceVector,
    _largest_remainder,
    allocate_to_queries,
)
from repro.scheduler.complexity import operator_complexity, query_complexity
from repro.serve.policies import (
    REJECT_IDLE,
    REJECT_MEMORY,
    SHED_DEADLINE_INFEASIBLE,
    SHED_QUEUE_FULL,
    make_admission_policy,
    provably_infeasible,
)
from repro.workload.admission import AdmissionController, runtime_footprint
from repro.workload.options import WorkloadOptions
from repro.workload.sharing import (
    FoldRegistry,
    SharedOperator,
    node_footprints,
    plan_folds,
    projected_footprint,
)

#: Job states.  The terminal ones reuse the ``QueryExecution`` status
#: strings, so a job's final state doubles as its execution's status.
QUEUED = "queued"
RUNNING = "running"
CANCELLING = "cancelling"    # drain requested, threads still unwinding
DONE = STATUS_DONE
CANCELLED = STATUS_CANCELLED
TIMED_OUT = STATUS_TIMED_OUT
FAILED = STATUS_FAILED
REJECTED = STATUS_REJECTED   # pre-admission: could never run
SHED = STATUS_SHED           # pre-admission: dropped under overload

#: States a job can legally end the run in.
TERMINAL_STATES = (DONE, CANCELLED, TIMED_OUT, FAILED, REJECTED, SHED)


@dataclass(frozen=True)
class QuerySubmission:
    """One query handed to the workload engine.

    Attributes:
        tag: Unique name; events and results are keyed by it.
        compiled: The compiled query (plan + result shaping).
        schedule: Its own four-step schedule — the per-operation
            thread demands step 0 rescales.
        arrival: Virtual-time submission offset (>= 0).
        timeout: Abort the query ``timeout`` virtual seconds after
            arrival (terminal state ``timed_out``), if it has not
            finished by then.
        cancel_at: Cancel the query at this absolute virtual time
            (terminal state ``cancelled``).  Must be >= ``arrival``;
            at exactly ``arrival`` the query is withdrawn before
            admission and never runs.
        priority: Serving priority class (higher is more important);
            read by the ``priority`` admission policy and the
            per-class latency labels.  Ignored without ``serving``.
        tenant: Serving tenant name; read by the ``fair_share``
            admission policy.  Ignored without ``serving``.
    """

    tag: str
    compiled: CompiledQuery
    schedule: QuerySchedule
    arrival: float = 0.0
    timeout: float | None = None
    cancel_at: float | None = None
    priority: int = 0
    tenant: str = "default"

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise WorkloadError(
                f"arrival must be >= 0, got {self.arrival} for {self.tag!r}")
        if self.timeout is not None and self.timeout <= 0:
            raise WorkloadError(
                f"timeout must be > 0, got {self.timeout} for {self.tag!r}")
        if self.cancel_at is not None and self.cancel_at < self.arrival:
            raise WorkloadError(
                f"cancel_at ({self.cancel_at}) must be >= arrival "
                f"({self.arrival}) for {self.tag!r}")
        if not self.tenant:
            raise WorkloadError(f"empty tenant for {self.tag!r}")


@dataclass(frozen=True)
class WorkloadResult:
    """Outcome of one executed workload."""

    executions: dict[str, QueryExecution]
    """Per-query execution (metrics, rows, trace, obs), keyed by tag."""
    order: tuple[str, ...]
    """Tags in submission order."""
    makespan: float
    """Virtual time at which the last query finished."""
    bus: EventBus
    """Workload-level event stream: query.submit / query.admit /
    query.grant / query.finish (plus query.cancel / query.abort when
    faults or cancellation are in play), tagged with query names."""
    errors: dict[str, str] = field(default_factory=dict)
    """Abort messages for queries that ended ``failed``, keyed by tag."""
    metrics: MetricsRegistry | None = None
    """Workload telemetry registry (counters / gauges / latency
    histograms), populated when workload observability is on —
    ``WorkloadOptions(observability=ObservabilityOptions(observe=True))``
    or per-query ``observe``.  ``None`` when disabled: the engine then
    pays one ``is not None`` check per site and nothing else."""
    spans: SpanSet | None = None
    """Per-query lifecycle spans assembled from :attr:`bus` after the
    run (same gating as :attr:`metrics`)."""
    alerts: AlertBus | None = None
    """Alerts fired by the streaming monitor rules, populated when
    ``ObservabilityOptions(monitors=...)`` is non-empty.  ``None`` when
    no rules are installed (the usual guarded no-op)."""
    profile: EngineProfiler | None = None
    """Wall-clock self-profile of the engine's own hot paths,
    populated when ``ObservabilityOptions(profile=True)``.  Measures
    the simulator, not the simulated system."""
    decisions: ScheduleExplanation | None = None
    """Mid-flight decision log of the adaptive controller (resplits
    and strategy switches with their evidence), populated when
    ``SchedulingPolicy(policy="adaptive")``.  ``None`` under the
    static policy — the controller does not exist then."""

    def __post_init__(self) -> None:
        if self.makespan < 0:
            raise WorkloadError(f"negative makespan {self.makespan}")

    def report(self):
        """Aggregate telemetry as a
        :class:`~repro.obs.report.WorkloadReport` (requires the run to
        have been observed)."""
        from repro.obs.report import build_workload_report
        return build_workload_report(self)

    @property
    def throughput(self) -> float:
        """Successfully completed queries per virtual second."""
        if self.makespan <= 0:
            raise WorkloadError("zero makespan")
        done = sum(1 for e in self.executions.values()
                   if e.status == STATUS_DONE)
        return done / self.makespan

    def status_of(self, tag: str) -> str:
        """Terminal status of one query: ``done`` / ``cancelled`` /
        ``timed_out`` / ``failed``."""
        return self.execution(tag).status

    @property
    def mean_response_time(self) -> float:
        if not self.executions:
            raise WorkloadError("empty workload result")
        return (sum(e.response_time for e in self.executions.values())
                / len(self.executions))

    def execution(self, tag: str) -> QueryExecution:
        try:
            return self.executions[tag]
        except KeyError:
            raise WorkloadError(f"no query tagged {tag!r}") from None


class _QueryJob:
    """Mutable per-query execution state inside one workload run."""

    def __init__(self, submission: QuerySubmission, order: int,
                 machine: Machine, executor: Executor,
                 exec_options: ExecutionOptions,
                 shared: bool = False) -> None:
        self.tag = submission.tag
        self.compiled = submission.compiled
        self.plan = submission.compiled.plan
        self.schedule = submission.schedule
        self.arrival = submission.arrival
        self.timeout = submission.timeout
        self.cancel_at = submission.cancel_at
        self.priority = submission.priority
        self.tenant = submission.tenant
        self.order = order
        self.plan.validate()
        self.waves = self.plan.chain_waves()
        self.complexity = query_complexity(self.plan, machine.costs)
        self.shared_mode = shared
        #: Shared-work state.  All empty/None on the private path, so
        #: every sharing branch below reduces to the legacy behaviour.
        self.folds: dict[str, SharedOperator] = {}
        self.hosted: list[SharedOperator] = []
        self.shared_results: dict[str, list] = {}
        self.current_wave_shared: list[SharedOperator] = []
        self.node_complexities: dict[str, float] | None = None
        self.node_footprints: dict[str, int] | None = None
        if not shared:
            self.runtimes = executor.build_runtimes(self.plan, self.schedule)
            executor.wire_pipelines(self.plan, self.runtimes)
            self.startup = executor.startup_time(self.runtimes, self.schedule)
            self.wave_totals = [
                sum(self.schedule.of(node.name).threads
                    for chain in wave for node in chain.nodes)
                for wave in self.waves
            ]
            #: Step-0 demand: more threads than the widest wave asks
            #: for could never be used.
            self.demand = max(self.wave_totals)
            self.footprint = runtime_footprint(self.runtimes)
            self.materialized = True
        else:
            # Runtime construction is deferred to admission time: the
            # fold pass needs the registry state *then*, and folded
            # nodes never build runtimes at all.
            self.runtimes = {}
            self.node_complexities = {
                node.name: operator_complexity(node.spec, machine.costs)
                for node in self.plan.nodes}
            self.node_footprints = node_footprints(self.plan, machine.costs)
            self.wave_totals = [
                sum(self.schedule.of(node.name).threads
                    for chain in wave for node in chain.nodes)
                for wave in self.waves
            ]
            self.demand = max(self.wave_totals)
            self.startup = 0.0
            self.footprint = sum(self.node_footprints.values())
            self.materialized = False
        self.bus = EventBus() if exec_options.observe else None
        self.tracer = (ExecutionTrace()
                       if exec_options.trace or exec_options.observe
                       else None)
        if self.materialized:
            executor.attach_observability(self.runtimes, self.bus, self.tracer)
        self.state = QUEUED
        self.wave_started_at = 0.0
        self.grant = 0
        self.wave_index = -1
        self.current_wave_ops: list[OperationRuntime] = []
        self.wave_threads = 0
        self.max_threads = 0
        self.max_dilation = 1.0
        self.admitted_at: float | None = None
        self.finished_at: float | None = None
        self.execution: QueryExecution | None = None
        #: Terminal state this job is headed for while CANCELLING.
        self.outcome = DONE
        self.error: ExecutionFaultError | None = None
        self.cancel_requested_at: float | None = None

    @property
    def deadline(self) -> tuple[float, str] | None:
        """Earliest scheduled cancellation instant ``(t, outcome)``."""
        candidates = []
        if self.cancel_at is not None:
            candidates.append((self.cancel_at, CANCELLED))
        if self.timeout is not None:
            candidates.append((self.arrival + self.timeout, TIMED_OUT))
        return min(candidates) if candidates else None

    # -- shared-work materialization -------------------------------------------

    def materialize(self, executor: Executor, registry: FoldRegistry,
                    folds: dict[str, SharedOperator], footprint: int,
                    now: float) -> None:
        """Build this query's private runtimes given its fold set.

        Runs at admission time (shared mode only).  Folded nodes get
        no runtimes — instead the host operator gains a delivery tap
        at each *frontier* folded node (one whose pipeline consumer is
        private, or which is terminal here); interior folded nodes
        need nothing, their data flows inside the host's own wiring.
        Afterwards the query's start-up, demand and footprint are
        recomputed over the private remainder: what folded rides free.
        """
        self.folds = folds
        own = {node.name for node in self.plan.nodes} - set(folds)
        self.runtimes = executor.build_runtimes(self.plan, self.schedule,
                                                only=own)
        for edge in self.plan.edges:
            if (edge.kind != PIPELINE or edge.producer in folds
                    or edge.consumer in folds):
                continue
            producer = self.runtimes[edge.producer]
            consumer = self.runtimes[edge.consumer]
            producer.consumer = consumer
            producer.router = _router_for(consumer)
            consumer.producers_remaining += 1
        for name, shared in folds.items():
            consumer_name = self.plan.pipeline_consumer(name)
            if consumer_name is not None and consumer_name in folds:
                continue  # interior fold: data flows inside the host
            if consumer_name is None:
                collector: list = []
                self.shared_results[name] = collector
                tap = DeliveryTap(self.tag, name, collector=collector)
            else:
                consumer = self.runtimes[consumer_name]
                tap = DeliveryTap(self.tag, name, consumer=consumer,
                                  router=_router_for(consumer))
                consumer.producers_remaining += 1
            shared.runtime.taps.append(tap)
            shared.attach(self.tag, tap)
        # Offer this query's own shareable first-wave operators as fold
        # targets for later arrivals (first live entry wins; duplicate
        # subplans within one plan stay private).
        wave0 = {node.name for chain in self.waves[0] for node in chain.nodes}
        fingerprints = self.plan.fingerprints()
        for node in self.plan.nodes:
            name = node.name
            if name in folds or name not in wave0:
                continue
            fingerprint = fingerprints[name]
            if fingerprint is None:
                continue
            shared = SharedOperator(
                runtime=self.runtimes[name], host_tag=self.tag,
                fingerprint=fingerprint,
                complexity=self.node_complexities[name],
                footprint=self.node_footprints[name])
            if registry.register(shared, now):
                self.hosted.append(shared)
        self.startup = executor.startup_time(self.runtimes, self.schedule)
        self.wave_totals = [
            sum(self.schedule.of(node.name).threads
                for chain in wave for node in chain.nodes
                if node.name not in folds)
            for wave in self.waves
        ]
        self.demand = max(1, max(self.wave_totals))
        self.footprint = footprint
        executor.attach_observability(self.runtimes, self.bus, self.tracer)
        self.materialized = True

    @property
    def effective_complexity(self) -> float:
        """Step-0 weight with shared operators priced fractionally.

        A subscriber pays ``complexity/len(active_tags)`` for each
        operator it folded onto; a host's own shared operators shrink
        the same way once they gain subscribers.  Without any sharing
        this is exactly :attr:`complexity`, keeping the private path
        bit-identical.
        """
        if not self.folds and not self.hosted:
            return self.complexity
        total = self.complexity
        seen: set[int] = set()
        for name, shared in self.folds.items():
            total -= self.node_complexities[name]
            if id(shared) in seen:
                continue
            seen.add(id(shared))
            total += shared.complexity / max(1, len(shared.active_tags))
        for shared in self.hosted:
            count = len(shared.active_tags)
            if count > 1:
                total -= shared.complexity * (count - 1) / count
        return max(total, 1e-9)

    def _share_of(self, runtime: OperationRuntime) -> float:
        """Metrics cost share of one of this query's own runtimes."""
        for shared in self.hosted:
            if shared.runtime is runtime and len(shared.all_tags) > 1:
                return 1.0 / len(shared.all_tags)
        return 1.0

    def build_execution(self, executor: Executor,
                        status: str = STATUS_DONE) -> QueryExecution:
        """Freeze metrics once the last wave finished.

        ``response_time`` is measured from *submission*, so it
        includes any admission-queue wait — for a query submitted at
        t=0 and admitted immediately it equals the absolute finish
        time, exactly as the single-query executor reports it.

        A non-``done`` status freezes a *partial* execution: only the
        operations that actually finished (normally or via a drain)
        contribute metrics, and ``result_rows`` holds whatever the
        final operator emitted before the query was stopped.

        With shared work in play, folded operators appear here under
        this query's node names, carrying the host runtime's raw
        counters at ``cost_share = 1/len(all subscribers)``; a host's
        own shared operators get the same fractional share.  Result
        rows of a folded terminal node come from its delivery tap's
        collector.
        """
        assert self.finished_at is not None
        if not self.materialized:
            # Withdrawn before admission (shared mode defers building).
            operations: dict[str, OperationMetrics] = {}
            result_rows: list = []
        elif not self.folds and not self.hosted:
            operations = {name: OperationMetrics.of(rt)
                          for name, rt in self.runtimes.items()
                          if rt.finished_at is not None}
            result_rows = executor.collect_results(self.plan, self.runtimes)
        else:
            operations = {}
            result_rows = []
            for node in self.plan.nodes:
                name = node.name
                shared = self.folds.get(name)
                if shared is not None:
                    rt = shared.runtime
                    if rt.finished_at is not None:
                        operations[name] = OperationMetrics.of(
                            rt, cost_share=1.0 / len(shared.all_tags),
                            name=name)
                    if name in self.shared_results:
                        result_rows.extend(self.shared_results[name])
                else:
                    rt = self.runtimes[name]
                    if rt.finished_at is not None:
                        operations[name] = OperationMetrics.of(
                            rt, cost_share=self._share_of(rt))
                    if rt.consumer is None:
                        result_rows.extend(rt.result_rows)
        return QueryExecution(
            response_time=self.finished_at - self.arrival,
            startup_time=self.startup,
            total_threads=self.max_threads,
            dilation=self.max_dilation,
            operations=operations,
            result_rows=result_rows,
            trace=self.tracer,
            obs=self.bus,
            status=status,
        )


class WorkloadExecutor:
    """Executes a batch of submissions in one shared simulation."""

    def __init__(self, machine: Machine | None = None,
                 options: ExecutionOptions | None = None,
                 workload: WorkloadOptions | None = None) -> None:
        self.machine = machine or Machine.uniform()
        self.options = options or ExecutionOptions()
        self.workload = workload or WorkloadOptions()

    def execute(self, submissions: list[QuerySubmission]) -> WorkloadResult:
        """Run every submission; returns per-query executions + events."""
        tags = [s.tag for s in submissions]
        if len(set(tags)) != len(tags):
            raise WorkloadError(f"duplicate query tags in workload: {tags}")
        run = _WorkloadRun(self.machine, self.options, self.workload,
                           submissions)
        return run.run()


class _WorkloadRun:
    """One workload execution in flight (all mutable run state)."""

    def __init__(self, machine: Machine, exec_options: ExecutionOptions,
                 workload: WorkloadOptions,
                 submissions: list[QuerySubmission]) -> None:
        self.machine = machine
        self.workload = workload
        self.executor = Executor(machine, exec_options)
        #: Shared-work state: ``None`` keeps every sharing branch off
        #: the hot path (shared=False is bit-identical to the
        #: pre-sharing engine).
        self.sharing = FoldRegistry() if workload.shared else None
        self.jobs = [_QueryJob(s, i, machine, self.executor, exec_options,
                               shared=workload.shared)
                     for i, s in enumerate(submissions)]
        #: Subscribers waiting on a shared runtime (keyed by id) to
        #: complete before their current wave can advance.
        self._waiters_of: dict[int, list[_QueryJob]] = {}
        self.bus = EventBus()
        #: Workload telemetry: ``None`` keeps every metrics branch off
        #: the hot path (same guarded no-op pattern as the per-query
        #: bus); on, it is populated purely from the lifecycle sites
        #: that already emit bus events.
        #: Monitor rules come from either options block; non-empty
        #: rules imply metrics (the rules read the registry).
        rules = (workload.observability.monitors
                 or exec_options.observability.monitors)
        self.metrics = (MetricsRegistry()
                        if exec_options.observe
                        or workload.observability.observe
                        or rules else None)
        self.monitors = (MonitorEngine(rules, self.metrics)
                         if rules else None)
        #: Adaptive scheduling controller: ``None`` under the static
        #: policy keeps every adaptive branch off the hot path — the
        #: same escape-hatch shape as sharing, metrics and monitors,
        #: and what makes ``policy="static"`` bit-identical to the
        #: pre-controller engine.
        self.adapt = (AdaptiveController(workload.scheduling, self.bus)
                      if workload.scheduling.adaptive else None)
        self.admission = AdmissionController(workload,
                                             metrics=self.metrics)
        self.budget = workload.thread_budget or machine.processors
        self.simulator = Simulator(
            machine, seed=exec_options.seed,
            use_ready_index=exec_options.use_ready_index)
        self.simulator.on_operation_complete = self._on_operation_complete
        self.simulator.on_query_abort = self._on_query_abort
        #: Self-profiling: an explicit ``profile=True`` option makes
        #: the run own a fresh profiler (started/stopped around
        #: :meth:`run`, so coverage is structural); an enclosing
        #: ``profile()`` block is picked up without owning it.
        self._profile_requested = (exec_options.observability.profile
                                   or workload.observability.profile)
        ambient = active_profiler()
        self.profiler = (EngineProfiler()
                         if self._profile_requested and ambient is None
                         else ambient)
        self._own_profiler = self._profile_requested and ambient is None
        if self.profiler is not None:
            self.simulator.attach_profiler(self.profiler)
        if workload.faults is not None:
            from repro.faults.injector import FaultInjector
            self.simulator.attach_faults(
                FaultInjector(workload.faults, bus=self.bus,
                              metrics=self.metrics))
        self.running: list[_QueryJob] = []
        #: Serving layer: ``None`` keeps every overload-protection
        #: branch off the hot path — serving-off runs are bit-identical
        #: to the pre-serving engine.  The wait queue is always a
        #: policy object; without serving it is the FIFO deque, whose
        #: admission order matches the old list exactly (it just stops
        #: paying O(waiting) per admitted query).
        self.serving = workload.serving
        self.queue = make_admission_policy(workload.serving)
        self.brownout = False
        self._backpressure = False
        self.next_thread_id = 0
        #: The single sequential-initialization thread: start-ups of
        #: co-admitted queries serialize behind each other.
        self.startup_free_at = 0.0
        self._job_of: dict[int, _QueryJob] = {}

    # -- outer loop -----------------------------------------------------------

    def run(self) -> WorkloadResult:
        profiler = self.profiler
        if self._own_profiler:
            profiler.start()
        try:
            return self._run(profiler)
        finally:
            if self._own_profiler:
                profiler.stop()

    def _run(self, profiler) -> WorkloadResult:
        # Control points: query arrivals plus scheduled cancellation /
        # timeout deadlines, in one merged timeline.  Arrivals sort
        # before deadlines at the same instant (a query cancelled at
        # its own arrival must exist before it can be withdrawn).
        events: list[tuple[float, int, int, str]] = []
        for job in self.jobs:
            events.append((job.arrival, 0, job.order, "arrive"))
            deadline = job.deadline
            if deadline is not None:
                events.append((deadline[0], 1, job.order, deadline[1]))
        events.sort()
        index = 0
        while index < len(events):
            now = events[index][0]
            # Drain the simulation up to (and including) the control
            # instant, so admission sees the machine state at that
            # virtual time — completions at t <= now already applied.
            if profiler is not None:
                profiler.enter("sim")
            self.simulator.run(until=now)
            if profiler is not None:
                profiler.exit()
                profiler.enter("control")
            self._maybe_recycle_thread_ids()
            arrived = False
            deadlines: list[tuple[_QueryJob, str]] = []
            while index < len(events) and events[index][0] <= now:
                _, _, order, kind = events[index]
                index += 1
                job = self.jobs[order]
                if kind == "arrive":
                    if self.serving is None:
                        self.bus.emit(QUERY_SUBMIT, job.arrival, job.tag,
                                      demand=job.demand,
                                      footprint=job.footprint)
                        self.admission.check_admissible(job.tag,
                                                        job.footprint)
                        self.queue.push(job)
                        if self.metrics is not None:
                            self.metrics.counter(QUERIES_SUBMITTED).inc(now)
                            self.metrics.gauge(ADMISSION_QUEUE_DEPTH).set(
                                now, len(self.queue))
                    else:
                        self._submit_serving(job, now)
                    arrived = True
                else:
                    deadlines.append((job, kind))
            # Deadlines apply before admission: a query cancelled at
            # its arrival instant is withdrawn from the FIFO queue and
            # never touches the machine.
            for job, outcome in deadlines:
                self._apply_deadline(job, now, outcome)
            if arrived:
                self._try_admit(now)
            if profiler is not None:
                profiler.exit()
        if profiler is not None:
            profiler.enter("sim")
        self.simulator.run()
        if profiler is not None:
            profiler.exit()
            profiler.enter("assemble")
        try:
            stuck = [job.tag for job in self.jobs
                     if job.state not in TERMINAL_STATES]
            if stuck:
                raise WorkloadError(
                    f"workload did not complete: queries {stuck} never "
                    f"finished (deadlock or admission starvation)")
            makespan = max((job.finished_at for job in self.jobs),
                           default=0.0)
            executions = {job.tag: job.execution for job in self.jobs}
            spans = (assemble_spans(self.bus, executions)
                     if self.metrics is not None else None)
            return WorkloadResult(
                executions=executions,
                order=tuple(job.tag for job in self.jobs),
                makespan=makespan,
                bus=self.bus,
                errors={job.tag: str(job.error) for job in self.jobs
                        if job.error is not None},
                metrics=self.metrics,
                spans=spans,
                alerts=(self.monitors.alerts
                        if self.monitors is not None else None),
                profile=(self.profiler
                         if self._profile_requested else None),
                decisions=(self.adapt.explanation
                           if self.adapt is not None else None),
            )
        finally:
            if profiler is not None:
                profiler.exit()

    def _maybe_recycle_thread_ids(self) -> None:
        """Reset thread-id allocation when the machine is quiescent.

        With nothing running and nothing queued, every prior thread
        has terminated, so a query arriving now can reuse ids from 0 —
        giving it the *same* thread ids (hence bit-identical events
        and trace) as if the earlier queries had never been submitted.
        That is what makes cancellation side-effect-free for late
        survivors.  Allcache machines are exempt: thread ids name
        per-processor local caches there, and reusing an id would
        alias warmed cache state that a fresh run would not have.
        """
        if (self.next_thread_id and not self.running and not self.queue
                and self.machine.directory is None):
            self.next_thread_id = 0
            self.startup_free_at = 0.0

    # -- cancellation / abort --------------------------------------------------

    def _apply_deadline(self, job: _QueryJob, now: float,
                        outcome: str) -> None:
        """Cancel or time out one query at its requested instant.

        A queued query is withdrawn immediately.  A running one enters
        ``CANCELLING``: its pending activations are discarded *now*,
        but threads are cooperative — each finishes its in-flight
        activation and then terminates, so the terminal bookkeeping
        happens in :meth:`_on_operation_complete` when the truncated
        wave reaches its forced boundary.
        """
        if job.state not in (QUEUED, RUNNING):
            return  # already finished, failed, or being drained
        reason = "timeout" if outcome == TIMED_OUT else "cancel"
        if job.state == QUEUED:
            self.queue.remove(job)
            job.state = outcome
            job.finished_at = now
            job.execution = job.build_execution(self.executor, status=outcome)
            self.bus.emit(QUERY_CANCEL, now, job.tag, reason=reason,
                          admitted=False, discarded=0)
            self._record_terminal(job, now, outcome)
            return
        job.state = CANCELLING
        job.outcome = outcome
        job.cancel_requested_at = now
        if self.sharing is not None:
            self._release_shared(job, now)
        discarded = self.simulator.drain_operations(job.current_wave_ops, now)
        self.bus.emit(QUERY_CANCEL, now, job.tag, reason=reason,
                      admitted=True, discarded=discarded)
        if self.sharing is not None:
            # A wave emptied by detaching shared operators (or one
            # that was only waiting on shared work) has no thread left
            # to unwind, so the terminal bookkeeping happens here.
            self._maybe_finish_cancelling(job, now)

    def _on_query_abort(self, operation: OperationRuntime,
                        error: ExecutionFaultError, at: float) -> None:
        """Simulator callback: an activation exhausted its retries.

        The owning query fails cleanly — its wave is drained and its
        capacity eventually regranted to survivors — instead of the
        fault tearing down the whole workload.
        """
        job = self._job_of.get(id(operation))
        if job is None:
            raise error
        shared = (self.sharing.by_runtime(id(operation))
                  if self.sharing is not None else None)
        cohort: list[_QueryJob] = []
        if job.state != CANCELLING:
            cohort.append(job)
        if shared is not None:
            # A shared operator failed: every live subscriber loses the
            # rows it was counting on, so the whole cohort aborts.
            shared.dead = True
            for other in self.jobs:
                if (other is not job and other.tag in shared.active_tags
                        and other.state == RUNNING):
                    cohort.append(other)
        if not cohort:
            return  # already draining; the failing thread just winds down
        for member in cohort:
            member.state = CANCELLING
            member.outcome = FAILED
            member.error = error if member is job else ExecutionFaultError(
                f"shared operation {operation.name!r} (hosted by "
                f"{job.tag!r}) aborted: {error}")
            member.cancel_requested_at = at
        if self.sharing is not None:
            for member in cohort:
                self._release_shared(member, at, detach=False)
        for member in cohort:
            discarded = self.simulator.drain_operations(
                member.current_wave_ops, at)
            self.bus.emit(QUERY_ABORT, at, member.tag,
                          error=str(member.error),
                          failed_operation=operation.name,
                          discarded=discarded)
        if self.sharing is not None:
            for member in cohort:
                self._maybe_finish_cancelling(member, at)

    def _terminate(self, job: _QueryJob, finish: float) -> None:
        """Terminal bookkeeping once a stopped query's truncated wave
        has fully unwound (mirrors :meth:`_complete`)."""
        job.state = job.outcome
        job.finished_at = finish
        job.execution = job.build_execution(self.executor,
                                            status=job.outcome)
        self.running.remove(job)
        self.admission.release(job.footprint, at=finish)
        self.bus.emit(QUERY_FINISH, finish, job.tag,
                      response_time=finish - job.arrival,
                      threads=job.max_threads, status=job.outcome)
        self._record_terminal(job, finish, job.outcome)
        self._try_admit(finish)
        if self.running:
            self._refresh_grants(finish, grow=self.workload.rebalance)

    def _record_terminal(self, job: _QueryJob, finish: float,
                         status: str) -> None:
        """Telemetry of one query reaching a terminal state: the
        end-to-end latency observation, the per-status tally, the
        machine-level levels, and — from the frozen execution — each
        pool's thread utilization and fractional cost shares."""
        if self.monitors is not None:
            self.monitors.observe(
                POINT_FINISH, finish, tag=job.tag, status=status,
                latency=finish - job.arrival,
                queue_depth=len(self.queue), running=len(self.running),
                used_bytes=self.admission.used_bytes,
                memory_limit=self.workload.memory_limit_bytes)
        if self.metrics is None:
            return
        metrics = self.metrics
        metrics.counter(QUERIES_FINISHED, status=status).inc(finish)
        if self.serving is not None:
            # Per-class series: the serving benchmark's per-priority /
            # per-tenant tail latencies read these.  Only with serving
            # on — legacy runs keep the exact legacy label sets.
            metrics.histogram(QUERY_LATENCY, status=status,
                              klass=f"p{job.priority}",
                              tenant=job.tenant).observe(
                finish, finish - job.arrival)
        else:
            metrics.histogram(QUERY_LATENCY, status=status).observe(
                finish, finish - job.arrival)
        metrics.gauge(RUNNING_QUERIES).set(finish, len(self.running))
        metrics.gauge(ADMISSION_QUEUE_DEPTH).set(finish, len(self.queue))
        execution = job.execution
        if execution is None:
            return
        for name, op in execution.operations.items():
            window = op.finished_at - op.started_at
            if op.threads and window > 0:
                metrics.gauge(POOL_UTILIZATION, query=job.tag,
                              pool=name).set(
                    finish, op.busy_time / (op.threads * window))
            if op.cost_share < 1.0:
                metrics.gauge(FOLD_COST_SHARE, query=job.tag,
                              operator=name).set(finish, op.cost_share)

    def _release_shared(self, job: _QueryJob, now: float,
                        detach: bool = True) -> None:
        """Unsubscribe *job* from every shared operator it touches.

        Subscriptions: taps deactivate (the host stops delivering to
        this query) and the reference count drops; an operator whose
        host already detached and whose last subscriber just left is
        an orphan and is drained.  Hosted operators: with surviving
        subscribers the runtime is *detached* — primary delivery and
        its enqueue charge stop, the operator leaves the host's drain
        set and keeps running for the survivors; without survivors it
        stays in the host's wave and is drained with it.  Idempotent.
        """
        if self.sharing is None or not job.materialized:
            return
        seen: set[int] = set()
        for shared in job.folds.values():
            if id(shared) in seen:
                continue
            seen.add(id(shared))
            shared.active_tags.discard(job.tag)
            for tap in shared.taps.pop(job.tag, ()):
                tap.active = False
            waiters = self._waiters_of.get(id(shared.runtime))
            if waiters is not None and job in waiters:
                waiters.remove(job)
            runtime = shared.runtime
            if (not shared.active_tags and runtime.primary_detached
                    and runtime.threads and not runtime.complete):
                self.simulator.drain_operations([runtime], now)
        for shared in job.hosted:
            shared.active_tags.discard(job.tag)
            shared.dead = True
            runtime = shared.runtime
            if runtime.complete:
                continue
            if detach and shared.active_tags and runtime.threads:
                runtime.primary_detached = True
                if runtime in job.current_wave_ops:
                    job.current_wave_ops.remove(runtime)

    def _maybe_finish_cancelling(self, job: _QueryJob, now: float) -> None:
        """Terminate a CANCELLING query whose wave has nothing left to
        unwind (every remaining own operation already complete — e.g.
        after detaching shared operators left the wave empty)."""
        if job.state != CANCELLING:
            return
        if any(not op.complete for op in job.current_wave_ops):
            return
        finish = max((op.finished_at for op in job.current_wave_ops),
                     default=now)
        self._terminate(job, max(finish, now))

    # -- serving / overload protection ----------------------------------------

    def _submit_serving(self, job: _QueryJob, now: float) -> None:
        """Arrival under the serving layer: reject instead of raise.

        An open-loop arrival stream has no caller to raise into — a
        query whose footprint can never fit becomes a terminal
        ``rejected`` status the client reads back, and the run keeps
        serving everyone else.
        """
        self.bus.emit(QUERY_SUBMIT, job.arrival, job.tag,
                      demand=job.demand, footprint=job.footprint,
                      priority=job.priority, tenant=job.tenant)
        if self.metrics is not None:
            self.metrics.counter(QUERIES_SUBMITTED).inc(now)
        try:
            self.admission.check_admissible(job.tag, job.footprint)
        except AdmissionError as error:
            self._reject(job, now, REJECTED, REJECT_MEMORY,
                         detail=str(error))
            return
        self.queue.push(job)
        if self.metrics is not None:
            self.metrics.gauge(ADMISSION_QUEUE_DEPTH).set(
                now, len(self.queue))

    def _reject(self, job: _QueryJob, now: float, status: str,
                reason: str, detail: str | None = None) -> None:
        """Terminate a never-admitted query as ``rejected``/``shed``.

        Mirrors the pre-admission withdrawal path of
        :meth:`_apply_deadline`: the job freezes an empty execution
        carrying the terminal status, emits the ``query.reject``
        terminal event, and goes through the same terminal telemetry
        as every other outcome — so conservation (every submission
        reaches exactly one terminal state) holds by construction.
        The caller has already removed the job from the wait queue.
        """
        job.state = status
        job.finished_at = now
        job.execution = job.build_execution(self.executor, status=status)
        payload = {"status": status, "reason": reason}
        if detail is not None:
            payload["detail"] = detail
        self.bus.emit(QUERY_REJECT, now, job.tag, **payload)
        if self.metrics is not None:
            name = QUERIES_SHED if status == SHED else QUERIES_REJECTED
            self.metrics.counter(name, reason=reason).inc(now)
        self._record_terminal(job, now, status)

    def _enforce_queue_bound(self, now: float) -> None:
        """Shed down to the bounded queue and signal backpressure.

        Runs after every admission pass (arrivals are the only thing
        that grows the queue, and they always trigger one).  The
        policy picks the victim — lowest-priority/youngest, most
        over-share, or most-doomed-deadline — and sheds only QUEUED
        queries, which is what keeps shedding cohort-safe under
        shared-work execution: folds happen at admission, so a waiter
        holds no shared subscriptions yet.
        """
        serving = self.serving
        limit = serving.queue_limit
        if limit is None:
            return
        while len(self.queue) > limit:
            victim = self.queue.victim(now)
            self.queue.remove(victim)
            self._reject(victim, now, SHED, SHED_QUEUE_FULL)
        engaged = len(self.queue) >= limit
        if engaged != self._backpressure:
            self._backpressure = engaged
            self.bus.emit(SERVE_BACKPRESSURE, now, engaged=engaged,
                          depth=len(self.queue), limit=limit)
            if self.metrics is not None:
                self.metrics.gauge(BACKPRESSURE_ENGAGED).set(
                    now, 1.0 if engaged else 0.0)

    def _update_brownout(self, now: float) -> None:
        """Trip (or clear) brownout from the monitor alert state.

        Brownout follows the *level* of the critical serving signals —
        the latency-SLO burn-rate alert and the retry-storm alert.
        While active, step-0 grants shrink by ``brownout_factor``
        (degrade per-query parallelism before shedding anyone) and
        fully folded queries may be admitted past the concurrency
        bound (they ride running work for free).
        """
        serving = self.serving
        if not serving.brownout or self.monitors is None:
            return
        alerts = self.monitors.alerts
        active = (alerts.is_active("latency_slo", "burn")
                  or alerts.is_active("retry_storm", "total"))
        if active != self.brownout:
            self.brownout = active
            self.bus.emit(SERVE_BROWNOUT, now, active=active,
                          factor=serving.brownout_factor)
            if self.metrics is not None:
                self.metrics.gauge(BROWNOUT_ACTIVE).set(
                    now, 1.0 if active else 0.0)

    # -- admission ------------------------------------------------------------

    def _try_admit(self, now: float) -> None:
        """Admit as many queued queries as capacity allows, FIFO.

        Co-admissible queries (e.g. simultaneous arrivals at t=0)
        are admitted as one *batch*: grants are computed once over
        the whole new running set before any of their first waves
        launch, so step 0's proportional split applies to all of
        them — the first arrival does not grab its full demand just
        because it was popped first.
        """
        profiler = self.profiler
        if profiler is not None:
            profiler.enter("admission")
        try:
            self._try_admit_now(now)
            if self.serving is not None:
                self._enforce_queue_bound(now)
        finally:
            if profiler is not None:
                profiler.exit()

    def _try_admit_now(self, now: float) -> None:
        profiler = self.profiler
        serving = self.serving
        if serving is not None:
            self._update_brownout(now)
        admitted: list[_QueryJob] = []
        while True:
            job = self.queue.peek()
            if job is None:
                break
            if (serving is not None and self.queue.sheds_infeasible
                    and provably_infeasible(job, now)):
                # EDF: the head's sequential start-up alone already
                # overruns its deadline — admitting it would only burn
                # machine time on work guaranteed to time out.
                self.queue.pop(job)
                self._reject(job, now, SHED, SHED_DEADLINE_INFEASIBLE)
                continue
            if self.sharing is not None and not job.materialized:
                # Fold pass: price the query with its foldable subplans
                # shared before asking the memory gate.
                if profiler is not None:
                    profiler.enter("fold")
                folds = plan_folds(job.plan, self.sharing, now)
                footprint = projected_footprint(
                    job.plan, job.node_footprints, folds)
                if profiler is not None:
                    profiler.exit()
            else:
                folds = None
                footprint = job.footprint
            if not self.admission.fits(footprint):
                if (serving is not None and self.brownout
                        and folds is not None and folds
                        and len(folds) == len(job.plan.nodes)
                        and self.admission.fits_memory(footprint)):
                    # Brownout fold-through: every node of this query
                    # folds onto already-running work, so admitting it
                    # past the concurrency bound adds no machine load —
                    # it only lets the fold amortize further.
                    pass
                elif not self.running and not admitted:
                    # Nothing runs, yet the head still does not fit:
                    # no future completion can free capacity.
                    if serving is not None:
                        self.queue.pop(job)
                        self._reject(job, now, REJECTED, REJECT_IDLE)
                        continue
                    raise AdmissionError(
                        f"query {job.tag!r} cannot be admitted on an idle "
                        f"machine (footprint {footprint} bytes, "
                        f"{len(self.queue)} queued)")
                else:
                    break
            self.queue.pop(job)
            self.queue.on_admit(job)
            if folds is not None:
                if profiler is not None:
                    profiler.enter("fold")
                job.materialize(self.executor, self.sharing, folds,
                                footprint, now)
                if self.metrics is not None:
                    self._record_fold_pass(job, folds, now)
                if profiler is not None:
                    profiler.exit()
            job.state = RUNNING
            job.admitted_at = now
            self.running.append(job)
            self.admission.acquire(job.footprint, at=now)
            admitted.append(job)
        if not admitted:
            return
        grants = self._grants()
        for job in admitted:
            job.grant = grants[job.tag]
            # The folds payload names the hosting query of every folded
            # node — the span model's subscriber->host link.  Only
            # attached when non-empty, so unfolded admissions (and
            # every shared=False run) keep the exact legacy payload.
            extra = ({"folds": {name: shared.host_tag
                                for name, shared in job.folds.items()}}
                     if job.folds else {})
            self.bus.emit(QUERY_ADMIT, now, job.tag,
                          running=len(self.running), queued=len(self.queue),
                          footprint=job.footprint, **extra)
            self.bus.emit(QUERY_GRANT, now, job.tag, threads=job.grant,
                          budget=self.budget, reason="admission")
            if self.metrics is not None:
                self.metrics.counter(QUERIES_ADMITTED).inc(now)
                self.metrics.histogram(ADMISSION_WAIT).observe(
                    now, now - job.arrival)
                self.metrics.counter(GRANTS, reason="admission").inc(now)
                self.metrics.gauge(GRANTED_THREADS, query=job.tag).set(
                    now, job.grant)
        if self.metrics is not None:
            self.metrics.gauge(ADMISSION_QUEUE_DEPTH).set(
                now, len(self.queue))
            self.metrics.gauge(RUNNING_QUERIES).set(now, len(self.running))
        if self.monitors is not None:
            self.monitors.observe(
                POINT_ADMISSION, now,
                admitted=[(job.tag, now - job.arrival) for job in admitted],
                queue_depth=len(self.queue), running=len(self.running),
                used_bytes=self.admission.used_bytes,
                memory_limit=self.workload.memory_limit_bytes)
        # Queries admitted earlier shrink to their new fair share —
        # applied at their next wave boundary (running pools are never
        # revoked mid-wave).  Growth (an admission triggered by a
        # completion can leave a survivor with a *larger* share) is
        # left to the _refresh_grants pass that follows every
        # completion, which also recruits helper threads.
        for job in self.running:
            if job in admitted or grants[job.tag] >= job.grant:
                continue
            job.grant = grants[job.tag]
            self.bus.emit(QUERY_GRANT, now, job.tag, threads=job.grant,
                          budget=self.budget, reason="shrink")
            if self.metrics is not None:
                self.metrics.counter(GRANTS, reason="shrink").inc(now)
                self.metrics.gauge(GRANTED_THREADS, query=job.tag).set(
                    now, job.grant)
        for job in admitted:
            begin = max(now, self.startup_free_at)
            self.startup_free_at = begin + job.startup
            self._start_wave(job, begin + job.startup)

    def _record_fold_pass(self, job: _QueryJob,
                          folds: dict[str, SharedOperator],
                          now: float) -> None:
        """Fold hit-rate telemetry of one admission-time fold pass:
        how many of the plan's shareable (fingerprintable) nodes
        actually folded, and each shared operator's subscriber count.
        ``plan.fingerprints()`` is memoized — :func:`plan_folds` just
        computed it — so the attempt count is a dictionary walk."""
        metrics = self.metrics
        shareable = sum(1 for fingerprint in job.plan.fingerprints().values()
                        if fingerprint is not None)
        if shareable:
            metrics.counter(FOLD_ATTEMPTS).inc(now, shareable)
        if folds:
            metrics.counter(FOLD_HITS).inc(now, len(folds))
            for shared in {id(s): s for s in folds.values()}.values():
                metrics.gauge(
                    FOLD_SUBSCRIBERS,
                    operator=shared.runtime.name).set(
                    now, len(shared.active_tags))

    def _grants(self) -> dict[str, int]:
        """Step 0 over the currently running set.

        Weights are :attr:`_QueryJob.effective_complexity`: shared
        operators count fractionally toward every subscriber, so a
        query riding mostly on folded work asks for (and is granted)
        proportionally less of the machine.  Without sharing the
        property degenerates to the plain complexity.
        """
        profiler = self.profiler
        if profiler is not None:
            profiler.enter("allocate")
        policy = self.workload.scheduling
        if policy.multi_resource:
            # Garofalakis-style step 0: the grant is capped at the
            # thread-equivalent of each query's binding resource.  The
            # stored-data footprint stands in for both the memory and
            # the streamed-from-disk demand of the simulated query.
            grants = allocate_to_queries(
                self.budget,
                [job.demand for job in self.running],
                [job.effective_complexity for job in self.running],
                resources=[ResourceVector(cpu=job.demand,
                                          memory_bytes=job.footprint,
                                          disk_bytes=job.footprint)
                           for job in self.running],
                capacities=ResourceVector(
                    cpu=self.budget,
                    memory_bytes=self.workload.memory_limit_bytes,
                    disk_bytes=policy.disk_bandwidth_bytes),
            )
        else:
            grants = allocate_to_queries(
                self.budget,
                [job.demand for job in self.running],
                [job.effective_complexity for job in self.running],
            )
        if profiler is not None:
            profiler.exit()
        if self.brownout:
            # Browned out: trade per-query parallelism (and its
            # dilation cost) for throughput before shedding anyone.
            factor = self.serving.brownout_factor
            grants = [max(1, int(grant * factor)) for grant in grants]
        return {job.tag: grant
                for job, grant in zip(self.running, grants)}

    # -- waves ---------------------------------------------------------------

    def _start_wave(self, job: _QueryJob, at: float) -> None:
        if self.sharing is not None and job.folds:
            self._start_wave_shared(job, at)
            return
        profiler = self.profiler
        if profiler is not None:
            profiler.enter("wave_prep")
        job.wave_index += 1
        job.wave_started_at = at
        wave = job.waves[job.wave_index]
        wave_ops = [job.runtimes[node.name]
                    for chain in wave for node in chain.nodes]
        base = [job.schedule.of(op.name).threads for op in wave_ops]
        base_total = sum(base)
        wave_total = min(base_total, max(job.grant, len(wave_ops)))
        if wave_total == base_total:
            # Grant covers the demand: the schedule applies verbatim
            # (largest-remainder over integer weights is exact, but
            # skipping it keeps the fact obvious).
            shares = base
        else:
            shares = _largest_remainder(wave_total, base)
        if self.adapt is not None:
            shares = self.adapt.before_wave(job.tag, job.wave_index,
                                            wave_ops, base, wave_total,
                                            shares, at)
        counts = {op.name: share for op, share in zip(wave_ops, shares)}
        self.next_thread_id, wave_threads = self.executor.prepare_wave(
            wave_ops, counts, at, self.next_thread_id)
        job.current_wave_ops = wave_ops
        job.wave_threads = wave_threads
        job.max_threads = max(job.max_threads, wave_threads)
        job.max_dilation = max(job.max_dilation,
                               self.machine.dilation(wave_threads))
        for op in wave_ops:
            self._job_of[id(op)] = job
        if job.bus is not None:
            job.bus.emit(WAVE_START, at, wave=job.wave_index,
                         operations=[op.name for op in wave_ops],
                         threads=wave_threads)
        self.simulator.add_operations(wave_ops)
        if profiler is not None:
            profiler.exit()

    def _start_wave_shared(self, job: _QueryJob, at: float) -> None:
        """Start the next wave of a query with folded subplans.

        Only the query's *own* (unfolded) operations get pools and
        threads; shared operators it rides on are tracked in
        ``current_wave_shared`` and the wave completes when both sets
        do (a pending shared runtime registers this job as a waiter).
        A wave whose work is entirely folded-and-finished advances
        immediately — possibly through several waves, or straight to
        completion for a fully duplicate query.
        """
        profiler = self.profiler
        if profiler is not None:
            profiler.enter("wave_prep")
        try:
            self._start_wave_shared_now(job, at)
        finally:
            if profiler is not None:
                profiler.exit()

    def _start_wave_shared_now(self, job: _QueryJob, at: float) -> None:
        while True:
            job.wave_index += 1
            job.wave_started_at = at
            wave = job.waves[job.wave_index]
            own_ops: list[OperationRuntime] = []
            shared_list: list[SharedOperator] = []
            seen: set[int] = set()
            for chain in wave:
                for node in chain.nodes:
                    shared = job.folds.get(node.name)
                    if shared is None:
                        own_ops.append(job.runtimes[node.name])
                    elif id(shared) not in seen:
                        seen.add(id(shared))
                        shared_list.append(shared)
            job.current_wave_shared = shared_list
            if own_ops:
                base = [job.schedule.of(op.name).threads for op in own_ops]
                base_total = sum(base)
                wave_total = min(base_total, max(job.grant, len(own_ops)))
                shares = (base if wave_total == base_total
                          else _largest_remainder(wave_total, base))
                if self.adapt is not None:
                    shares = self.adapt.before_wave(
                        job.tag, job.wave_index, own_ops, base,
                        wave_total, shares, at)
                counts = {op.name: share
                          for op, share in zip(own_ops, shares)}
                self.next_thread_id, wave_threads = self.executor.prepare_wave(
                    own_ops, counts, at, self.next_thread_id)
            else:
                wave_threads = 0
            job.current_wave_ops = own_ops
            job.wave_threads = wave_threads
            job.max_threads = max(job.max_threads, wave_threads)
            if wave_threads:
                job.max_dilation = max(job.max_dilation,
                                       self.machine.dilation(wave_threads))
            for op in own_ops:
                self._job_of[id(op)] = job
            if job.bus is not None:
                job.bus.emit(WAVE_START, at, wave=job.wave_index,
                             operations=[op.name for op in own_ops],
                             shared=[s.runtime.name for s in shared_list],
                             threads=wave_threads)
            if own_ops:
                self.simulator.add_operations(own_ops)
            pending = [s for s in shared_list if not s.runtime.complete]
            for shared in pending:
                self._waiters_of.setdefault(
                    id(shared.runtime), []).append(job)
            if own_ops or pending:
                return
            # Everything in this wave folded onto already-finished
            # work: close it and move on (or finish the query).
            finish = max((s.runtime.finished_at for s in shared_list),
                         default=at)
            finish = max(finish, at)
            if job.bus is not None:
                job.bus.emit(WAVE_END, finish, wave=job.wave_index)
            if job.wave_index + 1 >= len(job.waves):
                self._complete(job, finish)
                return
            at = finish

    def _on_operation_complete(self, operation: OperationRuntime,
                               thread: WorkerThread) -> None:
        if self._waiters_of:
            waiters = self._waiters_of.pop(id(operation), None)
            if waiters:
                for waiter in list(waiters):
                    self._advance_if_wave_done(waiter)
        job = self._job_of.get(id(operation))
        if job is None:
            return
        self._advance_if_wave_done(job)

    def _advance_if_wave_done(self, job: _QueryJob) -> None:
        """Advance (or terminate) *job* if its current wave is done.

        A wave is done when every own operation is complete and — for
        shared-work queries — every shared operator it rides on in
        this wave is too.
        """
        profiler = self.profiler
        if profiler is not None:
            profiler.enter("wave_barrier")
        try:
            self._advance_if_wave_done_now(job)
        finally:
            if profiler is not None:
                profiler.exit()

    def _advance_if_wave_done_now(self, job: _QueryJob) -> None:
        if job.state == CANCELLING:
            # A drained wave completes operation by operation as each
            # thread finishes its in-flight activation; once the last
            # one lands the query reaches its terminal state.
            if any(not op.complete for op in job.current_wave_ops):
                return
            finishes = [op.finished_at for op in job.current_wave_ops]
            finish = max(finishes) if finishes else job.cancel_requested_at
            self._terminate(job, max(finish, job.cancel_requested_at))
            return
        if job.state != RUNNING:
            return
        if any(not op.complete for op in job.current_wave_ops):
            return
        for shared in job.current_wave_shared:
            if not shared.runtime.complete:
                return
        finishes = [op.finished_at for op in job.current_wave_ops]
        finishes.extend(s.runtime.finished_at
                        for s in job.current_wave_shared)
        finish = max(max(finishes), job.wave_started_at)
        if job.bus is not None:
            job.bus.emit(WAVE_END, finish, wave=job.wave_index)
        if self.monitors is not None or self.adapt is not None:
            # The wave barrier is a control point: per-thread
            # finish/busy/idle stamps are fresh here, which is what the
            # straggler rule's Fig 12 blame split reads — and what the
            # adaptive controller distills into next-wave evidence.
            stamps = [(op.name,
                       [(t.finished_at, t.busy_time, t.idle_time)
                        for t in op.threads])
                      for op in job.current_wave_ops]
            if self.monitors is not None:
                self.monitors.observe(
                    POINT_WAVE, finish, tag=job.tag, wave=job.wave_index,
                    started_at=job.wave_started_at, ops=stamps)
            if (self.adapt is not None
                    and job.wave_index + 1 < len(job.waves)):
                self.adapt.observe_wave(job.tag, job.wave_index,
                                        job.wave_started_at, stamps)
        if job.wave_index + 1 < len(job.waves):
            self._start_wave(job, finish)
            return
        self._complete(job, finish)

    def _complete(self, job: _QueryJob, finish: float) -> None:
        job.state = DONE
        job.finished_at = finish
        if self.sharing is not None:
            self._release_shared(job, finish)
        job.execution = job.build_execution(self.executor)
        self.running.remove(job)
        self.admission.release(job.footprint, at=finish)
        self.bus.emit(QUERY_FINISH, finish, job.tag,
                      response_time=finish - job.arrival,
                      threads=job.max_threads)
        self._record_terminal(job, finish, DONE)
        # Freed capacity: first let queued queries in, then re-grant
        # the remaining budget across everyone still running.  With
        # zero survivors there is nothing to re-grant and no event to
        # emit — the workload bus ends on this query.finish.
        self._try_admit(finish)
        if self.running:
            self._refresh_grants(finish, grow=self.workload.rebalance)

    # -- dynamic reallocation ---------------------------------------------------

    def _refresh_grants(self, now: float, grow: bool) -> None:
        if not self.running:
            return
        if self.serving is not None:
            self._update_brownout(now)
        profiler = self.profiler
        if profiler is not None:
            profiler.enter("regrant")
        grants = self._grants()
        for job in self.running:
            new = grants[job.tag]
            if new == job.grant:
                continue
            grew = new > job.grant
            job.grant = new
            self.bus.emit(QUERY_GRANT, now, job.tag, threads=new,
                          budget=self.budget,
                          reason="regrant" if grew else "shrink")
            if self.metrics is not None:
                self.metrics.counter(
                    GRANTS, reason="regrant" if grew else "shrink").inc(now)
                self.metrics.gauge(GRANTED_THREADS, query=job.tag).set(
                    now, new)
            if grew and grow and job.current_wave_ops:
                self._grow_current_wave(job, now)
        if profiler is not None:
            profiler.exit()
        if self.monitors is not None:
            self.monitors.observe(
                POINT_REGRANT, now, running=len(self.running),
                grants={job.tag: job.grant for job in self.running})

    def _grow_current_wave(self, job: _QueryJob, now: float) -> None:
        """Add helper threads to the job's in-flight wave.

        The wave was sized under an older, smaller grant; the deficit
        is covered by fresh threads joining the pools of still-running
        operations as pure secondary consumers (they own no main
        queues), weighted toward the operations with the most pending
        work — the inter-query version of the paper's "threads of an
        idle pool help the busy ones".
        """
        eligible = [op for op in job.current_wave_ops
                    if not op.complete and op.allow_secondary]
        if not eligible:
            return
        base_total = job.wave_totals[job.wave_index]
        deficit = min(job.grant, base_total) - job.wave_threads
        if deficit <= 0:
            return
        weights = [op.pending_activations + 1.0 for op in eligible]
        shares = _largest_remainder(deficit, weights, minimum=0)
        granted = 0
        for op, share in zip(eligible, shares):
            if share <= 0:
                continue
            thread_ids = list(range(self.next_thread_id,
                                    self.next_thread_id + share))
            self.next_thread_id += share
            helpers = op.add_threads(thread_ids, now)
            self.simulator.add_threads(op, helpers)
            granted += share
            self.bus.emit(QUERY_GRANT, now, job.tag, threads=share,
                          pool=op.name, reason="helpers")
            if self.metrics is not None:
                self.metrics.counter(GRANTS, reason="helpers").inc(now)
        job.wave_threads += granted
        job.max_threads = max(job.max_threads, job.wave_threads)
        job.max_dilation = max(job.max_dilation,
                               self.machine.dilation(job.wave_threads))
