"""Admission control for multi-query workloads.

Two gates, checked in FIFO order over the arrival queue:

* a **concurrency bound** (``max_concurrent``): the classic
  multiprogramming-level limit — beyond it, extra queries only add
  dilation and start-up cost without adding throughput;
* a **memory footprint gate** (``memory_limit_bytes``): the estimated
  stored-data footprint of every *running* query plus the candidate
  must fit the budget, mirroring how a real system reserves buffer
  space per operator tree before letting a query run.

The footprint estimate is static — the sum of the data segments every
operator instance declares it will read
(:meth:`~repro.engine.dbfuncs.DBFunc.segments`) — so admission is
decidable at submit time: a query whose lone footprint exceeds the
budget can *never* be admitted and raises :class:`~repro.errors
.AdmissionError` instead of queueing forever.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.dbfuncs import make_dbfunc
from repro.errors import AdmissionError
from repro.lera.graph import LeraGraph
from repro.machine.costs import CostModel
from repro.workload.options import WorkloadOptions

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.engine.operation import OperationRuntime


def runtime_footprint(runtimes: "dict[str, OperationRuntime]") -> int:
    """Estimated stored-data bytes the built runtimes will read."""
    total = 0
    for runtime in runtimes.values():
        for instance in range(runtime.instances):
            for _key, size in runtime.dbfunc.segments(instance):
                total += size
    return total


def plan_footprint(plan: LeraGraph, costs: CostModel) -> int:
    """Estimated stored-data bytes of *plan* (no runtimes needed).

    Builds throwaway dbfuncs to ask each operator for its segments;
    used by the Session API to fail an impossible submission eagerly.
    """
    total = 0
    for node in plan.nodes:
        dbfunc = make_dbfunc(node.spec, costs)
        for instance in range(node.instances):
            for _key, size in dbfunc.segments(instance):
                total += size
    return total


class AdmissionController:
    """Tracks running capacity and decides who may enter, FIFO.

    The controller is deliberately order-preserving: the head of the
    queue is admitted or nobody is, so a small query can never
    starve a large one by slipping past it (no convoy re-ordering).
    """

    def __init__(self, options: WorkloadOptions, metrics=None) -> None:
        self.options = options
        self.metrics = metrics
        self.running_count = 0
        self.used_bytes = 0

    def check_admissible(self, tag: str, footprint: int) -> None:
        """Raise :class:`AdmissionError` if *footprint* can never fit."""
        limit = self.options.memory_limit_bytes
        if limit is not None and footprint > limit:
            raise AdmissionError(
                f"query {tag!r} needs {footprint} bytes but the workload "
                f"memory limit is {limit}; it can never be admitted")

    def fits(self, footprint: int) -> bool:
        """Would a query with *footprint* fit right now?"""
        if self.running_count >= self.options.max_concurrent:
            return False
        limit = self.options.memory_limit_bytes
        if limit is not None and self.used_bytes + footprint > limit:
            return False
        return True

    def fits_memory(self, footprint: int) -> bool:
        """Would *footprint* fit the memory gate alone, ignoring the
        concurrency bound?  Brownout fold-through uses this: a fully
        folded query adds no machine work, so only memory matters."""
        limit = self.options.memory_limit_bytes
        return limit is None or self.used_bytes + footprint <= limit

    def acquire(self, footprint: int, at: float = 0.0) -> None:
        self.running_count += 1
        self.used_bytes += footprint
        self._record_usage(at)

    def release(self, footprint: int, at: float = 0.0) -> None:
        self.running_count -= 1
        self.used_bytes -= footprint
        self._record_usage(at)

    def _record_usage(self, at: float) -> None:
        if self.metrics is not None:
            from repro.obs.metrics import ADMISSION_USED_BYTES
            self.metrics.gauge(ADMISSION_USED_BYTES).set(
                at, float(self.used_bytes))
