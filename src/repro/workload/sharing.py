"""Shared-work execution: fold concurrent queries into shared operators.

SharedDB's "one thousand queries with one stone" applied to the
workload engine: when a query is admitted, its subplans are matched —
by canonical fingerprint (:mod:`repro.lera.fingerprint`) — against the
subplans of queries already on the machine.  A match *folds*: the
incoming query does not build (or pay start-up for) its own runtime;
instead the already-running operator gains a
:class:`~repro.engine.operation.DeliveryTap` whose output fans out to
the new subscriber.  One scan feeds N queries; throughput at high MPL
scales with *distinct* work instead of query count.

The pieces here are pure bookkeeping — the engine integration lives in
:mod:`repro.workload.engine`:

* :class:`SharedOperator` — one host runtime plus its subscriber
  reference counts (``active_tags``) and attribution denominators
  (``all_tags``).
* :class:`FoldRegistry` — fingerprint -> shared operator, with the
  *foldability window*: an operator accepts new subscribers only while
  nothing has been delivered yet (its pool is unbuilt, or built with a
  start time still in the future — the sequential start-up phase).
  Past that, a late subscriber would miss rows already routed.
* :func:`plan_folds` — the fold pass over one incoming plan: a node
  folds iff its fingerprint has a live registry entry AND all its
  pipeline producers folded (otherwise a private producer would have
  to feed the shared operator, corrupting the host's input stream).

Folding is restricted to operators in the host's *first* wave.  A
fingerprintable node has no materialized inputs anywhere in its
producer cone, but a node later in its chain may, pushing the whole
chain to a later wave; registering only wave-0 hosts guarantees every
registered runtime has its pool built synchronously during the host's
admission, so a cancelled host can always be *detached* (primary
delivery stops, taps keep flowing) without ever needing to adopt an
unstarted operator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.dbfuncs import make_dbfunc
from repro.lera.graph import LeraGraph
from repro.machine.costs import CostModel

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.engine.operation import DeliveryTap, OperationRuntime


def node_footprints(plan: LeraGraph, costs: CostModel) -> dict[str, int]:
    """Per-node stored-data footprint (bytes), no runtimes needed.

    The per-node decomposition of :func:`~repro.workload.admission
    .plan_footprint` — the shared-work fold pass needs it to price a
    query whose folded nodes cost only a *fraction* of their bytes.
    """
    footprints: dict[str, int] = {}
    for node in plan.nodes:
        dbfunc = make_dbfunc(node.spec, costs)
        total = 0
        for instance in range(node.instances):
            for _key, size in dbfunc.segments(instance):
                total += size
        footprints[node.name] = total
    return footprints


class SharedOperator:
    """One runtime serving several queries.

    Attributes:
        runtime: The host query's operation runtime (the one whose
            threads actually do the work).
        host_tag: The query that built (and pays primary wiring for)
            the runtime.
        fingerprint: The canonical identity it was registered under.
        complexity: The operator's estimated complexity — split across
            ``active_tags`` by the engine's step-0 accounting.
        footprint: The operator's stored-data bytes — split across
            subscribers by the admission gate.
        active_tags: Live subscribers (host included).  The reference
            count: a cancelled/timed-out/faulted subscriber leaves;
            when the *host* leaves with survivors the runtime is
            detached; when the set empties mid-flight the orphan is
            drained.
        all_tags: Every query that ever subscribed — the cost-share
            denominator for per-query metrics (`1/len(all_tags)`).
        taps: Per-subscriber delivery taps (host excluded: the host
            uses the runtime's primary consumer/result path).
        dead: No longer accepts new subscribers (host finished,
            cancelled, or the operator faulted).
    """

    __slots__ = ("runtime", "host_tag", "fingerprint", "complexity",
                 "footprint", "active_tags", "all_tags", "taps", "dead")

    def __init__(self, runtime: "OperationRuntime", host_tag: str,
                 fingerprint: tuple, complexity: float,
                 footprint: int) -> None:
        self.runtime = runtime
        self.host_tag = host_tag
        self.fingerprint = fingerprint
        self.complexity = complexity
        self.footprint = footprint
        self.active_tags: set[str] = {host_tag}
        self.all_tags: set[str] = {host_tag}
        self.taps: dict[str, list[DeliveryTap]] = {}
        self.dead = False

    def valid(self, now: float) -> bool:
        """May a query admitted at *now* still fold onto this runtime?

        Sound exactly while nothing has been delivered: either the
        pool is not built yet (host admitted in the same batch), or it
        was built with a start time still in the future (the host is
        inside its sequential start-up window), so no thread has
        processed or routed anything at virtual time *now*.
        """
        if self.dead or not self.active_tags:
            return False
        runtime = self.runtime
        return not runtime.threads or runtime.started_at > now

    def attach(self, tag: str, tap: "DeliveryTap") -> None:
        """Subscribe *tag* through *tap* (already appended to the
        runtime's tap list by the caller)."""
        self.active_tags.add(tag)
        self.all_tags.add(tag)
        self.taps.setdefault(tag, []).append(tap)

    def __repr__(self) -> str:
        return (f"SharedOperator({self.runtime.name!r}, host={self.host_tag!r}, "
                f"subscribers={sorted(self.active_tags)})")


class FoldRegistry:
    """Fingerprint -> :class:`SharedOperator` for one workload run."""

    def __init__(self) -> None:
        self._entries: dict[tuple, SharedOperator] = {}
        self._by_runtime: dict[int, SharedOperator] = {}

    def lookup(self, fingerprint: tuple, now: float) -> SharedOperator | None:
        """A live, still-foldable entry for *fingerprint*, if any."""
        entry = self._entries.get(fingerprint)
        if entry is not None and entry.valid(now):
            return entry
        return None

    def register(self, shared: SharedOperator, now: float) -> bool:
        """Offer *shared* as a fold target; first valid entry wins.

        Returns False (and keeps the incumbent) when a live entry for
        the fingerprint already exists — the caller should have folded
        onto it instead; this only happens for duplicate subplans
        *within* one query, which stay private by design.
        """
        incumbent = self._entries.get(shared.fingerprint)
        if incumbent is not None and incumbent.valid(now):
            return False
        self._entries[shared.fingerprint] = shared
        self._by_runtime[id(shared.runtime)] = shared
        return True

    def by_runtime(self, runtime_id: int) -> SharedOperator | None:
        """The shared operator wrapping a runtime, if it is shared."""
        return self._by_runtime.get(runtime_id)

    def shared_count(self) -> int:
        """Registered operators that gained at least one subscriber."""
        return sum(1 for s in self._by_runtime.values()
                   if len(s.all_tags) > 1)


def plan_folds(plan: LeraGraph, registry: FoldRegistry,
               now: float) -> dict[str, SharedOperator]:
    """The fold pass: which nodes of *plan* ride on existing work.

    Walks each chain in dataflow order; a node folds iff its
    fingerprint has a live registry entry and every pipeline producer
    folded too (an unfolded producer must never feed a shared
    operator).  Returns node name -> shared operator.
    """
    fingerprints = plan.fingerprints()
    folds: dict[str, SharedOperator] = {}
    for chain in plan.chains():
        for node in chain.nodes:
            fingerprint = fingerprints[node.name]
            if fingerprint is None:
                continue
            producers = plan.pipeline_producers(node.name)
            if any(producer not in folds for producer in producers):
                continue
            shared = registry.lookup(fingerprint, now)
            if shared is not None:
                folds[node.name] = shared
    return folds


def projected_footprint(plan: LeraGraph, footprints: dict[str, int],
                        folds: dict[str, SharedOperator]) -> int:
    """Admission bytes for a plan given its fold set.

    Private nodes cost their full footprint; a folded node costs its
    share of the host operator's bytes with this query joined
    (``ceil(footprint / (subscribers + 1))``) — the memory-gate face
    of fractional cost attribution.
    """
    total = 0
    seen: set[int] = set()
    for node in plan.nodes:
        shared = folds.get(node.name)
        if shared is None:
            total += footprints[node.name]
        elif id(shared) not in seen:
            seen.add(id(shared))
            count = len(shared.active_tags) + 1
            total += -(-shared.footprint // count)
    return total
