"""Activation queues.

"To manage activations, a FIFO queue is associated to each operation
instance.  There are two kinds of queues, triggered or pipelined."
(Section 2.)

Queues live in (simulated) shared memory: any thread of the owning
operation may consume from any of its queues.  Each entry carries a
*ready time* — the virtual instant its producer made it available —
so the discrete-event simulator knows when a consumer may pick it up.
Entries from concurrent producers interleave, so internally the queue
is a ready-time heap; among entries ready at the same instant, arrival
order (FIFO) breaks ties.

A queue may have a *listener* (the owning operation's
:class:`~repro.engine.ready_index.ReadyIndex`): whenever the head
ready time changes — an enqueue that becomes the new head, or a
dequeue that pops it — the queue notifies the listener, so the
simulator can locate ready queues without scanning every queue of the
operation.

Independently, a queue may carry an *obs* hook (the execution's
:class:`~repro.obs.bus.EventBus`, attached only when observability is
on): enqueues and dequeues then feed the per-operation queue-depth
probe.  When off the hook is ``None`` and each hot path pays exactly
one ``is not None`` check.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.errors import ExecutionError
from repro.lera.activation import Activation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.threads import WorkerThread


class ActivationQueue:
    """One operator instance's FIFO activation queue.

    Attributes:
        operation_name: Owning operation.
        instance: Operator instance this queue feeds.
        kind: ``"triggered"`` or ``"pipelined"``.
        capacity: Soft bound on queued activations; producers finishing
            an activation while a target queue is at or over capacity
            block until a consumer drains it (``None`` = unbounded).
        cost_estimate: Static estimate of one activation's processing
            cost for this instance — what the LPT strategy ranks
            queues by (derived from fragment cardinalities).
    """

    __slots__ = ("operation_name", "instance", "kind", "capacity",
                 "cost_estimate", "_heap", "_seq", "enqueued", "consumed",
                 "blocked_producers", "listener", "obs")

    def __init__(self, operation_name: str, instance: int, kind: str,
                 capacity: int | None = None, cost_estimate: float = 0.0) -> None:
        if capacity is not None and capacity < 1:
            raise ExecutionError(f"queue capacity must be >= 1, got {capacity}")
        self.operation_name = operation_name
        self.instance = instance
        self.kind = kind
        self.capacity = capacity
        self.cost_estimate = cost_estimate
        self._heap: list[tuple[float, int, Activation]] = []
        self._seq = 0
        self.enqueued = 0
        self.consumed = 0
        self.blocked_producers: list["WorkerThread"] = []
        self.listener = None
        self.obs = None

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:
        return (f"ActivationQueue({self.operation_name!r}[{self.instance}], "
                f"{self.kind}, pending={len(self._heap)})")

    # -- producer side -------------------------------------------------------

    def enqueue(self, ready_time: float, activation: Activation) -> None:
        """Append an activation that becomes consumable at *ready_time*."""
        heap = self._heap
        old_head = heap[0][0] if heap else None
        heapq.heappush(heap, (ready_time, self._seq, activation))
        self._seq += 1
        self.enqueued += 1
        if self.listener is not None and (old_head is None
                                          or ready_time < old_head):
            self.listener.notify(self.instance, ready_time)
        if self.obs is not None:
            self.obs.on_enqueue(self.operation_name, ready_time)

    @property
    def over_capacity(self) -> bool:
        """True when producers must block before their next activation."""
        return self.capacity is not None and len(self._heap) >= self.capacity

    # -- consumer side -------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self._heap

    def has_ready(self, now: float) -> bool:
        """Is at least one activation consumable at virtual time *now*?"""
        return bool(self._heap) and self._heap[0][0] <= now

    def next_ready_time(self) -> float | None:
        """Ready time of the earliest pending activation, if any."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def discard_pending(self, now: float) -> int:
        """Drop every pending activation (query cancellation/abort).

        The entries are neither consumed nor delivered — the caller
        accounts them as discarded work.  Returns how many were
        dropped.
        """
        count = len(self._heap)
        if count == 0:
            return 0
        self._heap.clear()
        if self.listener is not None:
            self.listener.notify(self.instance, None)
        if self.obs is not None:
            self.obs.on_dequeue(self.operation_name, now, count)
        return count

    def dequeue_ready(self, now: float, limit: int) -> list[Activation]:
        """Pop up to *limit* activations ready at *now* (FIFO order).

        This is one batch fetched into a thread's internal activation
        cache; the caller charges a single mutex acquisition for it.
        """
        batch: list[Activation] = []
        heap = self._heap
        while heap and len(batch) < limit and heap[0][0] <= now:
            batch.append(heapq.heappop(heap)[2])
        self.consumed += len(batch)
        if batch and self.listener is not None:
            self.listener.notify(self.instance,
                                 heap[0][0] if heap else None)
        if batch and self.obs is not None:
            self.obs.on_dequeue(self.operation_name, now, len(batch))
        return batch
