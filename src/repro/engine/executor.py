"""The query executor.

Builds the extended view (operation runtimes, one queue per instance,
a thread pool per operation), charges the sequential start-up phase,
places data segments in local caches, and drives the discrete-event
simulator wave by wave across the plan's chain DAG.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

from repro.engine.dbfuncs import make_dbfunc
from repro.engine.metrics import OperationMetrics, QueryExecution
from repro.engine.operation import OperationRuntime
from repro.engine.simulator import Simulator
from repro.engine.trace import ExecutionTrace
from repro.engine.strategies import RANDOM, make_strategy
from repro.errors import ExecutionError, PlanError
from repro.lera.activation import PIPELINED, TRIGGERED
from repro.lera.graph import PIPELINE, LeraGraph
from repro.lera.operators import AggregateSpec, PipelinedJoinSpec, StoreSpec
from repro.machine.cache import REMOTE_HOME
from repro.machine.machine import Machine
from repro.obs.bus import OP_SEED, OP_START, WAVE_END, WAVE_START, EventBus
from repro.prof.profiler import active_profiler
from repro.storage.tuples import stable_hash

#: Data placement policies for the Allcache model.
PLACEMENT_WARM = "warm"    # fragments start in their consumer's local cache
PLACEMENT_COLD = "cold"    # fragments start remote (Figure 8's "remote" run)
PLACEMENT_NONE = "none"    # no placement (uniform machines)
PLACEMENTS = (PLACEMENT_WARM, PLACEMENT_COLD, PLACEMENT_NONE)

#: Internal activation-cache defaults.  Triggered activations are whole
#: fragments, so batching is pointless.  Pipelined activations default
#: to single-tuple fetches too: the Section 4.1 analysis (and the
#: paper's measured skew-insensitivity) assumes the unit of work is one
#: activation — larger batches coarsen the tail and break the Tworst
#: bound.  A bigger cache trades that balance for fewer mutex
#: acquisitions; the ablation bench quantifies the trade.
DEFAULT_TRIGGERED_CACHE = 1
DEFAULT_PIPELINED_CACHE = 1


@dataclass(frozen=True)
class OperationSchedule:
    """Execution parameters of one operation (scheduler output)."""

    threads: int
    strategy: str = RANDOM
    cache_size: int | None = None
    allow_secondary: bool = True

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ExecutionError(f"threads must be >= 1, got {self.threads}")


@dataclass(frozen=True)
class QuerySchedule:
    """Per-operation schedules for a whole plan."""

    operations: dict[str, OperationSchedule]

    @classmethod
    def for_plan(cls, plan: LeraGraph, threads: int,
                 strategy: str = RANDOM) -> "QuerySchedule":
        """Uniform schedule: every operation gets *threads* threads."""
        return cls({node.name: OperationSchedule(threads, strategy)
                    for node in plan.nodes})

    def of(self, name: str) -> OperationSchedule:
        try:
            return self.operations[name]
        except KeyError:
            raise ExecutionError(f"no schedule for operation {name!r}") from None

    def with_strategy(self, name: str, strategy: str) -> "QuerySchedule":
        """Copy with one operation's strategy replaced."""
        updated = dict(self.operations)
        updated[name] = replace(updated[name], strategy=strategy)
        return QuerySchedule(updated)


@dataclass(frozen=True)
class ObservabilityOptions:
    """What an execution records about itself.

    Grouped out of :class:`ExecutionOptions` so workload-level options
    can nest the same block instead of repeating the knobs.
    """

    trace: bool = False
    """Record an :class:`~repro.engine.trace.ExecutionTrace` (one event
    per activation) exposed as ``QueryExecution.trace``."""
    observe: bool = False
    """Attach an :class:`~repro.obs.bus.EventBus` to the execution:
    structured events, time-series probes and counters end up on
    ``QueryExecution.obs`` (exportable via :mod:`repro.obs.export`).
    Implies span tracing, so ``QueryExecution.trace`` is also set.
    Virtual-time behaviour is unchanged; only wall clock pays."""
    monitors: tuple = ()
    """Streaming :class:`~repro.obs.monitor.Monitor` rules the workload
    engine evaluates at virtual-time control points (admission,
    regrant, wave barriers, query finish).  A non-empty tuple implies
    workload metrics (the rules read the registry); fired alerts land
    on ``WorkloadResult.alerts``.  Ignored by single-query execution,
    which has no workload control points."""
    profile: bool = False
    """Self-profile the engine's *wall-clock* hot paths with an
    :class:`~repro.prof.profiler.EngineProfiler` exposed as
    ``WorkloadResult.profile``.  Measures the simulator, not the
    simulated system; virtual-time behaviour is unchanged."""

    def __post_init__(self) -> None:
        # A stray non-Monitor in the tuple used to surface only deep
        # inside the run as an AttributeError on .evaluate; fail at
        # construction instead, and accept any iterable while at it.
        from repro.obs.monitor import Monitor
        monitors = tuple(self.monitors)
        for rule in monitors:
            if not isinstance(rule, Monitor):
                raise ExecutionError(
                    f"monitors must contain Monitor rules, got "
                    f"{type(rule).__name__}: {rule!r}")
        object.__setattr__(self, "monitors", monitors)

    @property
    def enabled(self) -> bool:
        return self.trace or self.observe or bool(self.monitors) \
            or self.profile

    def replace(self, **changes) -> "ObservabilityOptions":
        """Copy with the given fields replaced (ergonomic twin of
        :func:`dataclasses.replace`)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ExecutionOptions:
    """Executor knobs orthogonal to the schedule.

    Observability flags live in the nested ``observability`` block;
    the flat ``trace=``/``observe=`` keyword forms are still accepted
    for compatibility but emit a :class:`DeprecationWarning`.
    """

    placement: str = PLACEMENT_WARM
    queue_capacity: int | None = None
    seed: int = 0
    use_ready_index: bool = True
    """Find candidate queues through the per-operation ready index
    (O(log d) per step) instead of the legacy linear scan.  Both paths
    produce identical virtual-time behaviour; the switch exists so the
    golden-trace tests can prove it."""
    observability: ObservabilityOptions = field(
        default_factory=ObservabilityOptions)
    faults: object | None = None
    """Optional :class:`~repro.faults.plan.FaultPlan` to inject into
    the run.  ``None`` (the default) leaves the engine bit-identical
    to one without the faults layer; an empty plan must behave the
    same (the fault-free-parity invariant)."""

    def __init__(self, placement: str = PLACEMENT_WARM,
                 queue_capacity: int | None = None, seed: int = 0,
                 use_ready_index: bool = True,
                 observability: ObservabilityOptions | None = None,
                 trace: bool | None = None,
                 observe: bool | None = None,
                 faults=None) -> None:
        # A user-defined __init__ suppresses the generated one; the
        # extra trace/observe parameters are the deprecated flat
        # spelling of the observability block.
        if trace is not None or observe is not None:
            warnings.warn(
                "ExecutionOptions(trace=..., observe=...) is deprecated; "
                "pass observability=ObservabilityOptions(trace=..., "
                "observe=...) instead",
                DeprecationWarning, stacklevel=2)
            if observability is not None:
                raise ExecutionError(
                    "pass either observability= or the deprecated flat "
                    "trace=/observe= flags, not both")
            observability = ObservabilityOptions(
                trace=bool(trace), observe=bool(observe))
        if observability is None:
            observability = ObservabilityOptions()
        if placement not in PLACEMENTS:
            raise ExecutionError(
                f"unknown placement {placement!r}; expected {PLACEMENTS}")
        object.__setattr__(self, "placement", placement)
        object.__setattr__(self, "queue_capacity", queue_capacity)
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "use_ready_index", use_ready_index)
        object.__setattr__(self, "observability", observability)
        object.__setattr__(self, "faults", faults)

    # Read-only views of the nested block, so call sites can keep
    # asking ``options.observe`` (non-annotated, hence not fields).
    @property
    def trace(self) -> bool:
        return self.observability.trace

    @property
    def observe(self) -> bool:
        return self.observability.observe

    def replace(self, **changes) -> "ExecutionOptions":
        """Copy with the given fields replaced (ergonomic twin of
        :func:`dataclasses.replace`)."""
        return replace(self, **changes)


class Executor:
    """Executes Lera-par plans on a machine model."""

    def __init__(self, machine: Machine | None = None,
                 options: ExecutionOptions | None = None) -> None:
        self.machine = machine or Machine.uniform()
        self.options = options or ExecutionOptions()

    # -- public API -------------------------------------------------------------

    def execute(self, plan: LeraGraph, schedule: QuerySchedule) -> QueryExecution:
        """Run *plan* under *schedule*; returns results plus metrics."""
        plan.validate()
        runtimes = self.build_runtimes(plan, schedule)
        self.wire_pipelines(plan, runtimes)
        startup = self.startup_time(runtimes, schedule)

        bus = EventBus() if self.options.observe else None
        tracer = (ExecutionTrace()
                  if self.options.trace or self.options.observe else None)
        self.attach_observability(runtimes, bus, tracer)
        simulator = Simulator(self.machine, seed=self.options.seed,
                              use_ready_index=self.options.use_ready_index)
        profiler = active_profiler()
        if profiler is not None:
            simulator.attach_profiler(profiler)
        if self.options.faults is not None:
            from repro.faults.injector import FaultInjector
            simulator.attach_faults(
                FaultInjector(self.options.faults, bus=bus))
        waves = plan.chain_waves()
        next_thread_id = 0
        current_time = startup
        max_wave_threads = 0
        max_dilation = 1.0
        for wave_index, wave in enumerate(waves):
            wave_ops = [runtimes[node.name]
                        for chain in wave for node in chain.nodes]
            counts = {op.name: schedule.of(op.name).threads
                      for op in wave_ops}
            next_thread_id, wave_threads = self.prepare_wave(
                wave_ops, counts, current_time, next_thread_id)
            max_wave_threads = max(max_wave_threads, wave_threads)
            max_dilation = max(max_dilation, self.machine.dilation(wave_threads))
            if bus is not None:
                bus.emit(WAVE_START, current_time, wave=wave_index,
                         operations=[op.name for op in wave_ops],
                         threads=wave_threads)
            current_time = simulator.run_wave(wave_ops)
            if bus is not None:
                bus.emit(WAVE_END, current_time, wave=wave_index)

        metrics = {name: OperationMetrics.of(rt) for name, rt in runtimes.items()}
        return QueryExecution(
            response_time=current_time,
            startup_time=startup,
            total_threads=max_wave_threads,
            dilation=max_dilation,
            operations=metrics,
            result_rows=self.collect_results(plan, runtimes),
            trace=tracer,
            obs=bus,
        )

    # -- construction helpers (shared with the workload engine) -----------------

    def build_runtimes(self, plan: LeraGraph, schedule: QuerySchedule,
                       only: set[str] | None = None) -> dict[str, OperationRuntime]:
        """Instantiate the extended view for *plan*.

        ``only`` restricts construction to a subset of node names —
        the shared-work fold pass uses it to build runtimes for just
        the nodes a query executes privately (folded nodes ride on
        another query's runtimes).
        """
        runtimes: dict[str, OperationRuntime] = {}
        for node in plan.nodes:
            if only is not None and node.name not in only:
                continue
            op_schedule = schedule.of(node.name)
            cache_size = op_schedule.cache_size
            if cache_size is None:
                cache_size = (DEFAULT_PIPELINED_CACHE
                              if node.trigger_mode == PIPELINED
                              else DEFAULT_TRIGGERED_CACHE)
            runtimes[node.name] = OperationRuntime(
                node=node,
                dbfunc=make_dbfunc(node.spec, self.machine.costs),
                strategy=make_strategy(op_schedule.strategy),
                cache_size=cache_size,
                queue_capacity=self.options.queue_capacity,
                allow_secondary=op_schedule.allow_secondary,
            )
        return runtimes

    def attach_observability(self, runtimes: dict[str, OperationRuntime],
                             bus: EventBus | None,
                             tracer: ExecutionTrace | None) -> None:
        """Point every runtime (and its queues) at *bus*/*tracer*.

        Must run before any trigger seeding so the queue-depth probe
        sees the seeding enqueues.  In a workload each query gets its
        own bus/tracer, which is what keeps per-query attribution
        intact inside the shared simulation.
        """
        for runtime in runtimes.values():
            runtime.bus = bus
            runtime.tracer = tracer
            if bus is not None:
                for queue in runtime.queues:
                    queue.obs = bus

    def prepare_wave(self, wave_ops: list[OperationRuntime],
                     counts: dict[str, int], start_time: float,
                     next_thread_id: int) -> tuple[int, int]:
        """Build pools and seed triggers for one wave of operations.

        ``counts`` maps operation name to pool size (the scheduler's
        per-operation allocation, possibly rescaled by a workload
        grant).  Thread ids are handed out sequentially starting at
        ``next_thread_id``; returns ``(next_thread_id, wave_threads)``.
        """
        wave_threads = 0
        for operation in wave_ops:
            count = counts[operation.name]
            thread_ids = list(range(next_thread_id, next_thread_id + count))
            next_thread_id += count
            wave_threads += count
            operation.build_pool(thread_ids, start_time)
            bus = operation.bus
            if bus is not None:
                if operation.ready_index is not None:
                    operation.ready_index.obs = bus
                bus.emit(OP_START, start_time, operation.name,
                         threads=count, instances=operation.instances,
                         strategy=operation.strategy.name,
                         cache_size=operation.cache_size)
            if operation.node.trigger_mode == TRIGGERED:
                operation.seed_triggers(start_time)
                if bus is not None:
                    bus.emit(OP_SEED, start_time, operation.name,
                             count=operation.pending_activations)
            self._place_segments(operation)
        return next_thread_id, wave_threads

    def collect_results(self, plan: LeraGraph,
                        runtimes: dict[str, OperationRuntime]) -> list:
        """Result rows of the plan: output of every consumer-less op."""
        result_rows = []
        for node in plan.nodes:
            runtime = runtimes[node.name]
            if runtime.consumer is None:
                result_rows.extend(runtime.result_rows)
        return result_rows

    def wire_pipelines(self, plan: LeraGraph,
                       runtimes: dict[str, OperationRuntime]) -> None:
        for edge in plan.edges:
            if edge.kind != PIPELINE:
                continue
            producer = runtimes[edge.producer]
            consumer = runtimes[edge.consumer]
            if producer.consumer is not None:
                raise PlanError(
                    f"operation {edge.producer!r} has two pipeline consumers")
            producer.consumer = consumer
            producer.router = _router_for(consumer)
            consumer.producers_remaining += 1

    def startup_time(self, runtimes: dict[str, OperationRuntime],
                     schedule: QuerySchedule) -> float:
        """Sequential initialization: create threads and queues.

        "Before the execution takes place, a sequential initialization
        step is necessary.  The duration of this step is proportional
        to the degree of parallelism."  Queue creation is also where
        the degree-of-partitioning overhead of Figure 16 originates.
        """
        costs = self.machine.costs
        total = 0.0
        for runtime in runtimes.values():
            total += schedule.of(runtime.name).threads * costs.thread_create
            per_queue = (costs.queue_create_pipelined
                         if runtime.node.trigger_mode == PIPELINED
                         else costs.queue_create_triggered)
            total += runtime.instances * per_queue
        return total

    def _place_segments(self, operation: OperationRuntime) -> None:
        """Pre-place stored fragments in local caches per the policy."""
        if not self.machine.models_memory:
            return
        placement = self.options.placement
        if placement == PLACEMENT_NONE:
            return
        pool_size = len(operation.threads)
        for instance in range(operation.instances):
            if placement == PLACEMENT_WARM:
                owner = operation.threads[instance % pool_size].thread_id
            else:
                owner = REMOTE_HOME
            for key, size in operation.dbfunc.segments(instance):
                self.machine.place_segment(key, size, owner)


def _router_for(consumer: OperationRuntime):
    """Row -> consumer-instance routing for a pipeline edge.

    Uses the same stable hash as static partitioning, so a transmitted
    stream lines up with the statically partitioned stored operand (or
    the target fragments of a Store, or the group hash of an
    Aggregate).
    """
    spec = consumer.node.spec
    if isinstance(spec, PipelinedJoinSpec):
        position = spec.stream_key_position
    elif isinstance(spec, StoreSpec):
        position = spec.key_position
    elif isinstance(spec, AggregateSpec):
        if spec.group_position is None:
            return lambda row: 0  # global aggregate: one instance
        position = spec.group_position
    else:
        raise PlanError(
            f"operation {consumer.name!r} of type {type(spec).__name__} "
            f"cannot consume a pipeline")
    degree = spec.instances

    def route(row, _pos=position, _deg=degree) -> int:
        return stable_hash(row[_pos]) % _deg

    return route
