"""Operation runtimes — the extended view, instantiated.

This mirrors Figure 4's data structures: an *operation* bundles its
table of activation queues (``QueueNb`` / ``QueueTbl``), its pool of
consumer threads (``ThreadNb`` / ``ThreadTbl``), the database function
(``DBFunc``), the consumption strategy (``StrategyId``) and the
internal activation cache size (``CacheSize``).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.engine.queues import ActivationQueue
from repro.engine.ready_index import ReadyIndex
from repro.engine.strategies import ConsumptionStrategy
from repro.engine.threads import WorkerThread
from repro.errors import ExecutionError
from repro.lera.activation import TRIGGERED
from repro.lera.graph import LeraNode
from repro.storage.tuples import Row

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.engine.dbfuncs import DBFunc

#: Degree of partitioning at which candidate selection switches from
#: the linear queue scan to the ready index.  Below this the scan is
#: cheaper (measured crossover is ~100 instances at 20 threads): with
#: a handful of queues per pool, heap and ready-set bookkeeping costs
#: more than just looking at every queue.  Both paths are
#: virtual-time identical, so this is purely a wall-clock knob.
READY_INDEX_MIN_INSTANCES = 96


class DeliveryTap:
    """One extra delivery edge out of a shared operation.

    When the workload engine folds a subscriber query's node onto an
    already-admitted host operation, the host keeps its normal
    ``consumer``/``result_rows`` path (so the host query is
    bit-identical to a private run) and gains one tap per extra
    subscriber.  A tap either feeds a downstream pipeline consumer of
    the subscriber (``consumer`` + ``router`` set) or collects result
    rows for a subscriber-terminal node (``collector`` set).

    ``active`` is the reference count contribution: deactivating a
    tap (subscriber cancelled/timed out/faulted) stops deliveries to
    it without disturbing the host or the other taps.
    """

    __slots__ = ("tag", "node_name", "consumer", "router", "collector",
                 "active")

    def __init__(self, tag: str, node_name: str,
                 consumer: "OperationRuntime | None" = None,
                 router: Callable[[Row], int] | None = None,
                 collector: list[Row] | None = None) -> None:
        self.tag = tag
        self.node_name = node_name
        self.consumer = consumer
        self.router = router
        self.collector = collector
        self.active = True


class OperationRuntime:
    """One operator of the plan, ready to execute.

    Attributes:
        node: The Lera-par node this runtime realizes.
        dbfunc: Executable operator body.
        queues: One activation queue per instance.
        threads: The thread pool (filled by the executor).
        strategy: Consumption strategy instance.
        cache_size: Max activations fetched per queue access (the
            internal activation cache of Figure 4).
        consumer: Downstream operation fed through a pipeline edge,
            or ``None`` when this operation produces the query result.
        router: Maps an emitted row to the consumer instance number.
        producers_remaining: Pipeline producers still running; the
            input closes when this reaches zero.  Triggered operations
            close immediately after their triggers are seeded.
    """

    def __init__(self, node: LeraNode, dbfunc: "DBFunc",
                 strategy: ConsumptionStrategy, cache_size: int,
                 queue_capacity: int | None = None,
                 allow_secondary: bool = True) -> None:
        if cache_size < 1:
            raise ExecutionError(f"cache_size must be >= 1, got {cache_size}")
        self.node = node
        self.dbfunc = dbfunc
        self.strategy = strategy
        self.cache_size = cache_size
        #: When False, threads never fall back to secondary queues —
        #: the static one-thread-per-instance binding of Gamma-style
        #: engines, used as the paper's implicit baseline.
        self.allow_secondary = allow_secondary
        estimates = node.spec.estimated_instance_costs(dbfunc.costs)
        self.queues = [
            ActivationQueue(node.name, i, node.trigger_mode,
                            capacity=queue_capacity, cost_estimate=estimates[i])
            for i in range(node.instances)
        ]
        self.threads: list[WorkerThread] = []
        self.ready_index: ReadyIndex | None = None
        #: Per-operation observability hooks (set by the executor).
        #: Keeping them here — not on the simulator — is what lets a
        #: shared workload simulation attribute every event to the
        #: right query's bus/trace.
        self.bus = None
        self.tracer = None
        self.consumer: OperationRuntime | None = None
        self.router: Callable[[Row], int] | None = None
        #: Shared-work fan-out: extra delivery edges added when other
        #: queries fold onto this operation.  Empty on the private
        #: fast path (the simulator only branches on truthiness).
        self.taps: list[DeliveryTap] = []
        #: True when the host query detached (was cancelled) while
        #: taps still have live subscribers: primary delivery and its
        #: enqueue charge stop, taps keep flowing.
        self.primary_detached = False
        self.producers_remaining = 0
        self.input_closed = False
        self.waiting_threads: deque[WorkerThread] = deque()
        self.live_threads = 0
        self.pending_activations = 0
        self.started_at = 0.0
        self.finished_at: float | None = None
        self.activation_costs: list[float] = []
        self.activation_outputs: list[int] = []
        self.result_rows: list[Row] = []
        self.finalized = False
        self.finalize_cost = 0.0
        # Counters (ExecutionMetrics picks these up).
        self.polls = 0
        self.enqueues = 0
        self.dequeue_batches = 0
        self.secondary_accesses = 0
        self.memory_penalty = 0.0
        # Fault accounting (repro.faults): failed attempts injected,
        # how many were re-enqueued as retries, how many aborted the
        # query, and activations discarded by cancellation/abort
        # drains.  Together they close the activation-conservation
        # invariant the chaos harness checks:
        # enqueued == processed + retries + aborts + discarded.
        self.faults_injected = 0
        self.fault_retries = 0
        self.fault_aborts = 0
        self.discarded = 0

    # -- identity ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def instances(self) -> int:
        return self.node.instances

    def __repr__(self) -> str:
        return (f"OperationRuntime({self.name!r}, x{self.instances}, "
                f"threads={len(self.threads)})")

    # -- pool construction -----------------------------------------------------

    def build_pool(self, thread_ids: list[int], start_time: float) -> None:
        """Create the thread pool and distribute main queues.

        "All activation queues are equally distributed among the
        associated threads and are marked as main queues" — queue ``i``
        is the main queue of thread ``i mod ThreadNb``.
        """
        if not thread_ids:
            raise ExecutionError(f"operation {self.name!r} allocated no threads")
        self.threads = [WorkerThread(tid, pool_index, self, start_time)
                        for pool_index, tid in enumerate(thread_ids)]
        pool_size = len(self.threads)
        for thread in self.threads:
            thread.assign_main_queues(
                [q for i, q in enumerate(self.queues) if i % pool_size == thread.pool_index])
        # Main queues partition the operation's queues across the pool
        # (the modulo rule above), which is what lets the ready index
        # keep one heap per pool slot.  Low-degree operations stay on
        # the linear scan — see READY_INDEX_MIN_INSTANCES.
        if len(self.queues) >= READY_INDEX_MIN_INSTANCES:
            self.ready_index = ReadyIndex(self)
        else:
            self.ready_index = None
            for queue in self.queues:
                queue.listener = None
        self.live_threads = pool_size
        self.started_at = start_time

    def add_threads(self, thread_ids: list[int],
                    now: float) -> list[WorkerThread]:
        """Grow the pool mid-flight with helper threads (re-granted
        processors from a completed query).

        Helpers own no main queues — every queue of the operation was
        already partitioned across the original pool — so they work
        purely through secondary consumption, exactly like a pool
        thread whose main queues have drained.  Requires
        ``allow_secondary``; a static (Gamma-style) operation cannot
        absorb helpers.
        """
        if not self.threads:
            raise ExecutionError(
                f"add_threads on unbuilt operation {self.name!r}")
        if not self.allow_secondary:
            raise ExecutionError(
                f"operation {self.name!r} forbids secondary consumption; "
                f"helper threads would spin forever")
        new_threads = []
        for tid in thread_ids:
            thread = WorkerThread(tid, len(self.threads), self, now)
            thread.assign_main_queues([])
            self.threads.append(thread)
            new_threads.append(thread)
            if self.ready_index is not None:
                self.ready_index.add_pool_slot()
        self.live_threads += len(new_threads)
        return new_threads

    # -- input lifecycle --------------------------------------------------------

    def seed_triggers(self, at_time: float) -> None:
        """Enqueue the control activation(s) of every instance, close input.

        Classic triggered operators get one activation per queue; a
        chunked operator (``grain > 1``) gets one activation per
        fragment slice, so the unit of sequential work shrinks without
        changing the partitioning.
        """
        from repro.lera.activation import chunk_trigger, trigger
        if self.node.trigger_mode != TRIGGERED:
            raise ExecutionError(
                f"seed_triggers on pipelined operation {self.name!r}")
        per_instance = self.node.spec.activations_per_instance()
        for i, queue in enumerate(self.queues):
            if per_instance == 1:
                queue.enqueue(at_time, trigger(i))
            else:
                for chunk in range(per_instance):
                    queue.enqueue(at_time, chunk_trigger(i, chunk))
        self.pending_activations += len(self.queues) * per_instance
        self.input_closed = True

    def close_input(self) -> None:
        """No more activations will arrive (all producers finished)."""
        self.input_closed = True

    # -- queue-state helpers ------------------------------------------------------

    def earliest_pending(self) -> float | None:
        """Smallest ready time among all pending activations, if any."""
        earliest: float | None = None
        for queue in self.queues:
            t = queue.next_ready_time()
            if t is not None and (earliest is None or t < earliest):
                earliest = t
        return earliest

    @property
    def drained(self) -> bool:
        """All queues empty and no more input can arrive."""
        return self.input_closed and self.pending_activations == 0

    @property
    def complete(self) -> bool:
        """Every thread of the pool has terminated."""
        return self.live_threads == 0 and bool(self.threads)

    @property
    def response_time(self) -> float:
        """Operation response time (finish - start); 0 if unfinished."""
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at
