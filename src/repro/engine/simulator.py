"""The discrete-event, virtual-time simulator.

This is the reproduction's substitute for real POSIX threads on the
KSR1 (CPython's GIL forbids true shared-memory CPU parallelism): every
worker thread is a simulated actor with a private virtual clock, and
the event loop always advances the thread whose clock is smallest.
Queue scans, mutex acquisitions, activation processing and pipeline
enqueues all charge calibrated virtual time, so the load-balancing
dynamics the paper measures — main/secondary queue discipline,
Random/LPT consumption, pipelined overlap, skew-induced stragglers —
play out exactly as they would on the prototype, deterministically.

The real relational work still happens: operators produce actual
result tuples while their clocks advance.

Processor over-subscription (more threads than processors) is modelled
as processor sharing: work is dilated by the number of *currently
active* threads over the processor count.  When over-subscription is
possible, activations are processed in time slices so that a long
activation re-samples the dilation as other threads drain — a lone
straggler finishing the last expensive activation runs at full speed,
exactly as on the real machine.  With no over-subscription the
dilation is identically 1 and whole activations are charged in one
step (fast path).

One simulator instance models one machine, and the event heap is
shared: a *workload* of several queries runs by admitting each query's
operations into the same loop (:meth:`Simulator.add_operations`,
possibly at different virtual times) and letting their threads
interleave — the dilation then follows the combined active thread
count, which is exactly how concurrent queries contend on the real
machine.  The classic single-query entry point,
:meth:`Simulator.run_wave`, is the special case that admits one wave
and drains the loop to completion.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable

from repro.engine.dbfuncs import ExecContext, ProcessResult
from repro.engine.operation import OperationRuntime
from repro.engine.queues import ActivationQueue
from repro.engine.threads import (
    BLOCKED,
    FINISHED,
    RUNNABLE,
    WAITING,
    WorkerThread,
)
from repro.errors import ExecutionError, ExecutionFaultError
from repro.obs.bus import (
    BLOCK,
    DEQUEUE,
    ENQUEUE,
    FAULT_ACTIVATION,
    FAULT_STALL,
    OP_FINALIZE,
    OP_FINISH,
    THREAD_FINISH,
    UNBLOCK,
)
from repro.lera.activation import DATA, Activation
from repro.machine.machine import Machine

#: Number of slices a dilated activation is split into; finer slices
#: track the draining of concurrent threads more precisely.
DILATION_SLICES = 16


class _WorkInProgress:
    """A partially charged activation (slicing mode only)."""

    __slots__ = ("result", "started_at", "remaining", "slice")

    def __init__(self, result: ProcessResult, started_at: float,
                 total: float) -> None:
        self.result = result
        self.started_at = started_at
        self.remaining = total
        self.slice = max(total / DILATION_SLICES, 1e-12)


class Simulator:
    """Runs operations of one (or several) queries to completion."""

    def __init__(self, machine: Machine, seed: int = 0,
                 use_ready_index: bool = True) -> None:
        self.machine = machine
        self.rng = random.Random(seed)
        #: When False, candidate queues are found by the legacy linear
        #: scan instead of the per-operation ready index.  Both paths
        #: are virtual-time identical (the golden-trace tests pin
        #: this); the flag exists so the equivalence stays testable.
        self.use_ready_index = use_ready_index
        #: Invoked as ``callback(operation, thread)`` right after an
        #: operation's last thread terminates (``finished_at`` is set,
        #: downstream input-close already handled).  The workload
        #: engine hooks query-completion bookkeeping — next-wave
        #: admission, thread re-granting — in here; ``None`` for plain
        #: single-query execution.
        self.on_operation_complete: Callable[
            [OperationRuntime, WorkerThread], None] | None = None
        #: Invoked as ``callback(operation, error, at)`` when an
        #: activation exhausts its fault retries.  The workload engine
        #: drains the owning query's wave here (and the simulation
        #: continues for the survivors); when ``None`` the
        #: :class:`~repro.errors.ExecutionFaultError` propagates out
        #: of :meth:`run`.
        self.on_query_abort: Callable[
            [OperationRuntime, ExecutionFaultError, float], None] | None = None
        #: Optional :class:`~repro.faults.injector.FaultInjector`.
        #: Every consultation is guarded by ``is not None``, so a run
        #: without one is bit-identical to an engine without the
        #: faults layer.
        self._injector = None
        #: Optional :class:`~repro.prof.profiler.EngineProfiler`.
        #: Sections are guarded by ``is not None``, so an unprofiled
        #: run pays one attribute check per instrumented phase.
        self._profiler = None
        self._heap: list[tuple[float, int, WorkerThread]] = []
        self._seq = 0
        self._active = 0
        #: Unfinished threads currently admitted (active + waiting +
        #: blocked).  Drives the over-subscription (slicing) decision;
        #: ``_active`` alone drives the dilation.
        self._live = 0
        self._sliced = False
        # Per-thread slicing state, keyed by thread id.
        self._in_progress: dict[int, _WorkInProgress] = {}
        self._pending_batch: dict[int, list[Activation]] = {}

    # -- public API -----------------------------------------------------------

    def attach_faults(self, injector) -> None:
        """Attach a fault injector for this run (``None`` detaches)."""
        self._injector = injector

    def attach_profiler(self, profiler) -> None:
        """Attach a wall-clock self-profiler (``None`` detaches)."""
        self._profiler = profiler

    def run_wave(self, operations: list[OperationRuntime]) -> float:
        """Simulate *operations* until every thread terminates.

        Operations must already have pools built and triggered
        operations seeded.  Returns the wave's finish time (max
        operation finish).  Raises :class:`ExecutionError` on deadlock
        (threads parked forever — indicates a wiring bug).
        """
        self.add_operations(operations)
        self.run()
        stuck = [op.name for op in operations if not op.complete]
        if stuck:
            raise ExecutionError(
                f"deadlock: operations {stuck} have parked threads and no "
                f"runnable work")
        return max(op.finished_at for op in operations
                   if op.finished_at is not None)

    def add_operations(self, operations: list[OperationRuntime]) -> None:
        """Admit built operations into the event loop.

        Their threads join the shared heap; the over-subscription mode
        is re-evaluated against the combined live thread count.  Safe
        to call mid-run (from an operation-complete callback): new
        threads start at their pool's build time, which can never lie
        in the past of the event being processed.
        """
        added = 0
        for operation in operations:
            for thread in operation.threads:
                if thread.finished_at is None:
                    self._push(thread)
                    added += 1
        self._active += added
        self._live += added
        self._sliced = self._live > self.machine.processors
        if operations:
            bus = operations[0].bus
            if bus is not None:
                bus.sample_active(operations[0].started_at, self._active)

    def add_threads(self, operation: OperationRuntime,
                    threads: list[WorkerThread]) -> None:
        """Admit freshly granted helper threads of an existing operation.

        Used by the workload engine's dynamic reallocation: when a
        query completes, its processors are re-granted to the remaining
        queries as extra pool threads, mid-wave.
        """
        for thread in threads:
            self._push(thread)
        self._active += len(threads)
        self._live += len(threads)
        self._sliced = self._live > self.machine.processors
        bus = operation.bus
        if bus is not None and threads:
            bus.sample_active(threads[0].started_at, self._active)

    def run(self, until: float | None = None) -> float | None:
        """Drain the event loop, optionally pausing at a time boundary.

        Processes events while the earliest pending clock is <=
        *until* (all of them when ``None``).  Returns the clock of the
        first unprocessed event, or ``None`` when the heap drained —
        the workload engine uses the boundary to interleave query
        arrivals with the running simulation.
        """
        heap = self._heap
        injector = self._injector
        while heap:
            if until is not None and heap[0][0] > until:
                return heap[0][0]
            clock, _, thread = heapq.heappop(heap)
            if (injector is not None
                    and injector.next_time_at is not None
                    and injector.next_time_at <= clock):
                # Time-triggered faults (memory pressure) fire between
                # events, at the granularity of event pops.
                injector.apply_time(clock, self.machine)
            if thread.state != RUNNABLE:
                continue
            if thread.thread_id in self._in_progress:
                self._advance_slice(thread)
            else:
                self._step(thread)
        return None

    def drain_operations(self, operations: list[OperationRuntime],
                         at: float) -> int:
        """Cancel in-flight operations: discard their pending work.

        Used for query cancellation/abort.  Queued activations are
        dropped (counted as ``discarded``), input is closed, the
        end-of-input emission is suppressed, and every parked thread is
        woken so it observes the drained state and terminates through
        the normal :meth:`_finish_thread` path — completion callbacks
        still fire, and co-running operations are untouched.  Returns
        the number of discarded activations.
        """
        discarded = 0
        for operation in operations:
            if not operation.threads or operation.complete:
                continue
            # Suppress the operator's end-of-input emission: a
            # cancelled aggregate must not deliver partial groups.
            operation.finalized = True
            for queue in operation.queues:
                dropped = queue.discard_pending(at)
                if dropped:
                    operation.pending_activations -= dropped
                    operation.discarded += dropped
                    discarded += dropped
            operation.close_input()
            for thread in operation.threads:
                tid = thread.thread_id
                # Abandon partially charged slices (the activation was
                # already processed, only its delivery is dropped) and
                # discard fetched-but-unprocessed batch entries.
                self._in_progress.pop(tid, None)
                batch = self._pending_batch.pop(tid, None)
                if batch:
                    operation.discarded += len(batch)
                    discarded += len(batch)
            self._wake_all(operation)
            for queue in operation.queues:
                if queue.blocked_producers:
                    self._wake_blocked(queue, at)
        return discarded

    @property
    def idle(self) -> bool:
        """True when no runnable event is pending."""
        return not self._heap

    # -- scheduling internals ---------------------------------------------------

    def _push(self, thread: WorkerThread) -> None:
        heapq.heappush(self._heap, (thread.clock, self._seq, thread))
        self._seq += 1

    def _dilation(self) -> float:
        return self.machine.dilation(self._active)

    def _wake_one(self, operation: OperationRuntime) -> None:
        """Signal one waiting consumer thread (condition-variable style)."""
        thread = operation.waiting_threads.popleft()
        thread.state = RUNNABLE
        self._active += 1
        self._push(thread)
        if operation.bus is not None:
            # Sampled at the woken thread's (parked) clock — it will
            # jump forward when the thread next steps.
            operation.bus.sample_active(thread.clock, self._active)

    def _wake_all(self, operation: OperationRuntime) -> None:
        """Broadcast: input closed, every parked thread must re-check."""
        while operation.waiting_threads:
            self._wake_one(operation)

    def _wake_blocked(self, queue: ActivationQueue, at_time: float) -> None:
        """Un-block producers once *queue* dropped below capacity."""
        for producer in queue.blocked_producers:
            producer.state = RUNNABLE
            self._active += 1
            producer.wait_until(at_time)
            self._push(producer)
            bus = producer.operation.bus
            if bus is not None:
                bus.emit(UNBLOCK, at_time, producer.operation.name,
                         producer.thread_id, queue=queue.operation_name,
                         instance=queue.instance)
                bus.sample_active(at_time, self._active)
        queue.blocked_producers.clear()

    # -- one thread step ---------------------------------------------------------

    def _scan_select(self, thread: WorkerThread, now: float
                     ) -> tuple[list[ActivationQueue], int,
                                float | None, bool]:
        """Legacy candidate selection: linear scan over every queue.

        Scans main queues first, falling back to secondary queues; the
        earliest future ready time is tracked during the same scan so
        an idle thread knows when to re-check.  Kept as the reference
        implementation the ready index must match exactly (see the
        golden-trace tests); O(d) per step, so only used when
        ``use_ready_index`` is off.
        """
        operation = thread.operation
        ready: list[ActivationQueue] = []
        polls = 0
        future: float | None = None
        for queue in thread.main_queues:
            if queue.has_ready(now):
                ready.append(queue)
            else:
                polls += 1
                t = queue.next_ready_time()
                if t is not None and (future is None or t < future):
                    future = t
        used_secondary = False
        if not ready and operation.allow_secondary:
            main_set = thread.main_queue_set
            for queue in operation.queues:
                if queue.instance in main_set:
                    continue
                if queue.has_ready(now):
                    ready.append(queue)
                else:
                    polls += 1
                    t = queue.next_ready_time()
                    if t is not None and (future is None or t < future):
                        future = t
            used_secondary = True
        return ready, polls, future, used_secondary

    def _charge_factor(self, thread: WorkerThread) -> float:
        """Dilation times any injected slowdown at the thread's clock."""
        factor = self._dilation()
        injector = self._injector
        if injector is not None and injector.perturbs_cpu:
            factor *= injector.speed_factor(
                thread.operation.name, thread.thread_id, thread.clock)
        return factor

    def _stalled(self, thread: WorkerThread) -> bool:
        """Park the thread to the end of a stall window covering it."""
        injector = self._injector
        if injector is None or not injector.perturbs_cpu:
            return False
        operation = thread.operation
        until = injector.stall_until(
            operation.name, thread.thread_id, thread.clock)
        if until is None:
            return False
        if operation.bus is not None:
            operation.bus.emit(FAULT_STALL, thread.clock, operation.name,
                               thread.thread_id, until=until)
        thread.stall(until)
        self._push(thread)
        return True

    def _step(self, thread: WorkerThread) -> None:
        operation = thread.operation
        costs = self.machine.costs
        injector = self._injector
        if injector is not None and injector.perturbs_cpu:
            if self._stalled(thread):
                return
            dilation = self._charge_factor(thread)
        else:
            dilation = self._dilation()
        now = thread.clock

        profiler = self._profiler
        if profiler is not None:
            profiler.enter("ready_scan")
        index = operation.ready_index if self.use_ready_index else None
        if index is not None:
            ready, polls, used_secondary = index.select(
                thread, now, operation.allow_secondary)
            future = None  # computed lazily, only when nothing is ready
        else:
            ready, polls, future, used_secondary = self._scan_select(
                thread, now)
        if profiler is not None:
            profiler.exit()

        if polls:
            operation.polls += polls
            thread.advance(polls * costs.poll_empty * dilation, busy=True)

        if not ready:
            if index is not None:
                future = index.next_ready_time(
                    thread, operation.allow_secondary)
            if future is not None:
                thread.wait_until(future)
                self._push(thread)
            elif not operation.input_closed:
                thread.state = WAITING
                self._active -= 1
                operation.waiting_threads.append(thread)
                if operation.bus is not None:
                    operation.bus.sample_active(thread.clock, self._active)
            else:
                self._finish_thread(thread)
            return

        queue = operation.strategy.choose(self.rng, ready)
        batch = queue.dequeue_ready(thread.clock, operation.cache_size)
        operation.pending_activations -= len(batch)
        operation.dequeue_batches += 1
        access_cost = costs.dequeue_batch
        secondary = used_secondary or queue.instance not in thread.main_queue_set
        if secondary:
            access_cost += costs.secondary_access
            operation.secondary_accesses += 1
        if operation.bus is not None:
            operation.bus.emit(DEQUEUE, thread.clock, operation.name,
                               thread.thread_id, instance=queue.instance,
                               count=len(batch), secondary=secondary)
        thread.advance(access_cost * dilation, busy=True)
        if queue.blocked_producers and not queue.over_capacity:
            self._wake_blocked(queue, thread.clock)

        if self._sliced:
            # Start the first activation; the rest of the batch (and
            # the back-pressure check) continue in _advance_slice.
            self._pending_batch[thread.thread_id] = list(batch)
            self._begin_activation(thread)
            self._push(thread)
            return

        filled: set[int] = set()
        if (injector is not None and injector.can_fail
                and injector.may_fail(operation.name)):
            for i, activation in enumerate(batch):
                decision = injector.attempt(operation, activation,
                                            thread.clock)
                if decision is None:
                    self._charge_whole(thread, activation, filled)
                    continue
                self._fail_attempt(thread, activation, decision)
                if decision.aborts:
                    operation.discarded += len(batch) - i - 1
                    self._abort_query(thread, activation, decision)
                    return
        else:
            for activation in batch:
                self._charge_whole(thread, activation, filled)
        self._after_batch(thread, filled)

    def _after_batch(self, thread: WorkerThread, filled: set[int]) -> None:
        """Back-pressure check once a batch is fully processed."""
        consumer = thread.operation.consumer
        if consumer is not None:
            for instance in filled:
                target = consumer.queues[instance]
                if target.over_capacity:
                    thread.state = BLOCKED
                    self._active -= 1
                    target.blocked_producers.append(thread)
                    bus = thread.operation.bus
                    if bus is not None:
                        bus.emit(BLOCK, thread.clock,
                                 thread.operation.name,
                                 thread.thread_id,
                                 target=consumer.name,
                                 instance=instance)
                        bus.sample_active(thread.clock, self._active)
                    return
        self._push(thread)

    # -- whole-activation path (no over-subscription) ------------------------------

    def _charge_whole(self, thread: WorkerThread, activation: Activation,
                      filled: set[int]) -> None:
        result = self._run_dbfunc(thread, activation)
        start = thread.clock
        cost = self._total_cost(thread.operation, result)
        if self._injector is not None and self._injector.adjusts_charges:
            # Disk latency spikes and slowdown windows fold into the
            # single whole-activation charge (dilation is identically
            # 1 on this path, so the factor applies here, not in
            # _dilation).
            cost = self._injector.charge(thread.operation, thread.thread_id,
                                         activation, start, cost)
        thread.advance(cost, busy=True)
        if thread.operation.tracer is not None:
            thread.operation.tracer.record(
                thread.thread_id, thread.operation.name,
                "activation", start, thread.clock)
        self._deliver(thread, result, start, filled)

    # -- sliced path (over-subscription possible) ------------------------------------

    def _begin_activation(self, thread: WorkerThread) -> None:
        batch = self._pending_batch.get(thread.thread_id)
        if not batch:
            return
        operation = thread.operation
        injector = self._injector
        if (injector is not None and injector.can_fail
                and injector.may_fail(operation.name)):
            while batch:
                activation = batch.pop(0)
                decision = injector.attempt(operation, activation,
                                            thread.clock)
                if decision is None:
                    self._start_work(thread, activation)
                    return
                self._fail_attempt(thread, activation, decision)
                if decision.aborts:
                    operation.discarded += len(batch)
                    self._pending_batch.pop(thread.thread_id, None)
                    self._abort_query(thread, activation, decision)
                    return
            return
        self._start_work(thread, batch.pop(0))

    def _start_work(self, thread: WorkerThread,
                    activation: Activation) -> None:
        result = self._run_dbfunc(thread, activation)
        total = self._total_cost(thread.operation, result)
        if self._injector is not None and self._injector.has_disk:
            # Disk latency adds to the total; slowdown windows apply
            # per slice (via _charge_factor), re-sampled as windows
            # open and close.
            total += self._injector.disk_extra(thread.operation, activation,
                                               thread.clock)
        self._in_progress[thread.thread_id] = _WorkInProgress(
            result, thread.clock, total)

    def _advance_slice(self, thread: WorkerThread) -> None:
        if (self._injector is not None and self._injector.perturbs_cpu
                and self._stalled(thread)):
            return
        work = self._in_progress[thread.thread_id]
        slice_cost = min(work.remaining, work.slice)
        thread.advance(slice_cost * self._charge_factor(thread), busy=True)
        work.remaining -= slice_cost
        if work.remaining > 1e-15:
            self._push(thread)
            return
        del self._in_progress[thread.thread_id]
        if thread.operation.tracer is not None:
            thread.operation.tracer.record(
                thread.thread_id, thread.operation.name,
                "activation", work.started_at, thread.clock)
        filled: set[int] = set()
        self._deliver(thread, work.result, work.started_at, filled)
        if self._pending_batch.get(thread.thread_id):
            # Back-pressure is only checked between batches, matching
            # the whole-activation path.
            self._begin_activation(thread)
            self._push(thread)
            return
        self._pending_batch.pop(thread.thread_id, None)
        self._after_batch(thread, filled)

    # -- fault handling -------------------------------------------------------------

    def _fail_attempt(self, thread: WorkerThread, activation: Activation,
                      decision) -> None:
        """Charge one failed processing attempt and schedule the retry.

        The DBFunc did *not* run (stateful operators must not observe
        failed attempts); the wasted work is the static per-instance
        cost estimate (or the spec's override).  A retried activation
        re-enters its own instance queue at ``now + backoff``, where
        the normal main/secondary consumption discipline — including
        stealing — redistributes it.
        """
        operation = thread.operation
        operation.faults_injected += 1
        profiler = self._profiler
        if profiler is not None:
            profiler.enter("fault")
        try:
            self._fail_attempt_now(thread, activation, decision, operation)
        finally:
            if profiler is not None:
                profiler.exit()

    def _fail_attempt_now(self, thread: WorkerThread,
                          activation: Activation, decision,
                          operation: OperationRuntime) -> None:
        start = thread.clock
        if decision.wasted > 0.0:
            thread.advance(decision.wasted * self._charge_factor(thread),
                           busy=True)
            if operation.tracer is not None:
                operation.tracer.record(thread.thread_id, operation.name,
                                        "fault", start, thread.clock)
        if operation.bus is not None:
            operation.bus.emit(FAULT_ACTIVATION, thread.clock, operation.name,
                               thread.thread_id, instance=activation.instance,
                               attempt=decision.attempt,
                               wasted=decision.wasted,
                               backoff=decision.backoff,
                               aborts=decision.aborts)
        if decision.aborts:
            operation.fault_aborts += 1
            return
        operation.fault_retries += 1
        operation.queues[activation.instance].enqueue(
            thread.clock + decision.backoff, activation)
        operation.pending_activations += 1

    def _abort_query(self, thread: WorkerThread, activation: Activation,
                     decision) -> None:
        """An activation exhausted its retries: abort the owning query.

        With a workload attached (:attr:`on_query_abort`), the callback
        drains the query's wave and the simulation continues for the
        survivors; this thread then terminates through the normal
        finish path.  Stand-alone runs raise.
        """
        operation = thread.operation
        error = ExecutionFaultError(
            f"activation of operation {operation.name!r} instance "
            f"{activation.instance} failed {decision.attempt} times "
            f"(retries exhausted) at t={thread.clock:.6f}")
        if self.on_query_abort is None:
            raise error
        self.on_query_abort(operation, error, thread.clock)
        self._finish_thread(thread)

    # -- shared activation machinery ----------------------------------------------

    def _finalize_operation(self, thread: WorkerThread) -> None:
        """End-of-input emission, executed once by the last live thread."""
        operation = thread.operation
        operation.finalized = True
        profiler = self._profiler
        if profiler is not None:
            profiler.enter("finalize")
        try:
            self._finalize_now(thread, operation)
        finally:
            if profiler is not None:
                profiler.exit()

    def _finalize_now(self, thread: WorkerThread,
                      operation: OperationRuntime) -> None:
        filled: set[int] = set()
        for instance in range(operation.instances):
            ctx = ExecContext(self.machine, thread.thread_id)
            result = operation.dbfunc.finalize(instance, ctx)
            if result is None:
                continue
            operation.memory_penalty += ctx.penalty
            operation.finalize_cost += result.cost
            started_at = thread.clock
            thread.advance(result.cost * self._charge_factor(thread),
                           busy=True)
            if operation.tracer is not None:
                operation.tracer.record(thread.thread_id, operation.name,
                                        "finalize", started_at, thread.clock)
            if operation.bus is not None:
                operation.bus.emit(OP_FINALIZE, thread.clock, operation.name,
                                   thread.thread_id, instance=instance,
                                   cost=result.cost)
                if ctx.penalty:
                    operation.bus.add_memory_penalty(
                        thread.clock, operation.name, thread.thread_id,
                        ctx.penalty)
            self._deliver(thread, result, started_at, filled)

    def _run_dbfunc(self, thread: WorkerThread,
                    activation: Activation) -> ProcessResult:
        operation = thread.operation
        ctx = ExecContext(self.machine, thread.thread_id)
        profiler = self._profiler
        if profiler is not None:
            profiler.enter("dbfunc")
        result = operation.dbfunc.process(activation.instance, activation, ctx)
        if profiler is not None:
            profiler.exit()
        operation.activation_costs.append(result.cost)
        operation.activation_outputs.append(len(result.emitted))
        operation.memory_penalty += ctx.penalty
        if ctx.penalty and operation.bus is not None:
            operation.bus.add_memory_penalty(thread.clock, operation.name,
                                             thread.thread_id, ctx.penalty)
        return result

    def _total_cost(self, operation: OperationRuntime,
                    result: ProcessResult) -> float:
        cost = result.cost
        if operation.taps:
            if result.emitted:
                targets = 0
                if (operation.consumer is not None
                        and not operation.primary_detached):
                    targets += 1
                for tap in operation.taps:
                    if tap.active and tap.consumer is not None:
                        targets += 1
                cost += len(result.emitted) * self.machine.costs.enqueue * targets
        elif operation.consumer is not None and result.emitted:
            cost += len(result.emitted) * self.machine.costs.enqueue
        return cost

    def _deliver(self, thread: WorkerThread, result: ProcessResult,
                 started_at: float, filled: set[int]) -> None:
        """Route (or collect) an activation's output rows.

        Tuples become visible progressively across the activation's
        realized duration, which is what lets a consumer overlap with
        its producer (pipelined execution).
        """
        operation = thread.operation
        emitted = result.emitted
        if not emitted:
            return
        profiler = self._profiler
        if profiler is not None:
            # _deliver has several exits; the section must close on
            # every one of them, so the body runs under try/finally
            # (zero-cost on the non-raising path in CPython 3.11).
            profiler.enter("deliver")
        try:
            self._deliver_rows(thread, operation, emitted, result,
                               started_at, filled)
        finally:
            if profiler is not None:
                profiler.exit()

    def _deliver_rows(self, thread: WorkerThread, operation, emitted,
                      result: ProcessResult, started_at: float,
                      filled: set[int]) -> None:
        if operation.taps:
            self._deliver_fanout(thread, result, started_at, filled)
            return
        consumer = operation.consumer
        if consumer is None:
            operation.result_rows.extend(emitted)
            return
        router = operation.router
        if router is None:
            raise ExecutionError(
                f"operation {operation.name!r} has a consumer but no router")
        duration = thread.clock - started_at
        count = len(emitted)
        queues = consumer.queues
        # Fast path: a single consumer instance makes routing trivial
        # (the hash router would return 0 for every row).
        single = len(queues) == 1
        for i, row in enumerate(emitted):
            instance = 0 if single else router(row)
            ready_time = started_at + duration * (i + 1) / count
            queues[instance].enqueue(
                ready_time, Activation(DATA, instance, row))
            filled.add(instance)
        consumer.pending_activations += count
        operation.enqueues += count
        if operation.bus is not None:
            operation.bus.emit(ENQUEUE, thread.clock, operation.name,
                               thread.thread_id, consumer=consumer.name,
                               count=count)
        # Batched wakeups: the legacy loop woke one waiting consumer
        # after each enqueue; since nothing else touches the event heap
        # in between, waking min(count, waiting) threads afterwards
        # yields the identical pop order and tie-break sequence.
        waiting = len(consumer.waiting_threads)
        if waiting:
            for _ in range(waiting if waiting < count else count):
                self._wake_one(consumer)

    def _deliver_fanout(self, thread: WorkerThread, result: ProcessResult,
                        started_at: float, filled: set[int]) -> None:
        """Deliver one activation's output to the primary path plus
        every active shared-work tap.

        Only the primary consumer participates in back-pressure
        (``filled``): a slow subscriber must not stall the shared
        producer or its co-subscribers, so tap edges are exempt by
        design.  Enqueue charges are handled in :meth:`_total_cost`
        (one per live delivery target).
        """
        operation = thread.operation
        emitted = result.emitted
        duration = thread.clock - started_at
        if not operation.primary_detached:
            consumer = operation.consumer
            if consumer is None:
                operation.result_rows.extend(emitted)
            else:
                router = operation.router
                if router is None:
                    raise ExecutionError(
                        f"operation {operation.name!r} has a consumer but "
                        f"no router")
                self._route_rows(thread, consumer, router, emitted,
                                 started_at, duration, filled)
        for tap in operation.taps:
            if not tap.active:
                continue
            if tap.consumer is None:
                if tap.collector is not None:
                    tap.collector.extend(emitted)
                continue
            self._route_rows(thread, tap.consumer, tap.router, emitted,
                             started_at, duration, None)

    def _route_rows(self, thread: WorkerThread, consumer: OperationRuntime,
                    router, emitted, started_at: float, duration: float,
                    filled: set[int] | None) -> None:
        """Enqueue *emitted* into *consumer* (shared by primary and tap
        delivery; ``filled=None`` skips back-pressure registration)."""
        operation = thread.operation
        count = len(emitted)
        queues = consumer.queues
        single = len(queues) == 1
        for i, row in enumerate(emitted):
            instance = 0 if single else router(row)
            ready_time = started_at + duration * (i + 1) / count
            queues[instance].enqueue(
                ready_time, Activation(DATA, instance, row))
            if filled is not None:
                filled.add(instance)
        consumer.pending_activations += count
        operation.enqueues += count
        if operation.bus is not None:
            operation.bus.emit(ENQUEUE, thread.clock, operation.name,
                               thread.thread_id, consumer=consumer.name,
                               count=count)
        waiting = len(consumer.waiting_threads)
        if waiting:
            for _ in range(waiting if waiting < count else count):
                self._wake_one(consumer)

    def _finish_thread(self, thread: WorkerThread) -> None:
        operation = thread.operation
        if operation.live_threads == 1 and not operation.finalized:
            # Last thread standing: run the operator's end-of-input
            # behaviour (aggregate emission) before terminating.
            self._finalize_operation(thread)
        thread.state = FINISHED
        thread.finished_at = thread.clock
        self._active -= 1
        self._live -= 1
        operation.live_threads -= 1
        if operation.bus is not None:
            operation.bus.emit(THREAD_FINISH, thread.clock, operation.name,
                               thread.thread_id)
            operation.bus.sample_active(thread.clock, self._active)
        if operation.live_threads > 0:
            return
        operation.finished_at = max(
            t.finished_at for t in operation.threads
            if t.finished_at is not None)
        if operation.bus is not None:
            operation.bus.emit(OP_FINISH, operation.finished_at,
                               operation.name,
                               threads=len(operation.threads),
                               activations=len(operation.activation_costs))
        consumer = operation.consumer
        if consumer is not None:
            consumer.producers_remaining -= 1
            if consumer.producers_remaining <= 0:
                consumer.close_input()
                self._wake_all(consumer)
        for tap in operation.taps:
            if tap.active and tap.consumer is not None:
                tap.consumer.producers_remaining -= 1
                if tap.consumer.producers_remaining <= 0:
                    tap.consumer.close_input()
                    self._wake_all(tap.consumer)
        if self.on_operation_complete is not None:
            self.on_operation_complete(operation, thread)
