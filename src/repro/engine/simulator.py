"""The discrete-event, virtual-time simulator.

This is the reproduction's substitute for real POSIX threads on the
KSR1 (CPython's GIL forbids true shared-memory CPU parallelism): every
worker thread is a simulated actor with a private virtual clock, and
the event loop always advances the thread whose clock is smallest.
Queue scans, mutex acquisitions, activation processing and pipeline
enqueues all charge calibrated virtual time, so the load-balancing
dynamics the paper measures — main/secondary queue discipline,
Random/LPT consumption, pipelined overlap, skew-induced stragglers —
play out exactly as they would on the prototype, deterministically.

The real relational work still happens: operators produce actual
result tuples while their clocks advance.

Processor over-subscription (more threads than processors) is modelled
as processor sharing: work is dilated by the number of *currently
active* threads over the processor count.  When over-subscription is
possible, activations are processed in time slices so that a long
activation re-samples the dilation as other threads drain — a lone
straggler finishing the last expensive activation runs at full speed,
exactly as on the real machine.  With no over-subscription the
dilation is identically 1 and whole activations are charged in one
step (fast path).
"""

from __future__ import annotations

import heapq
import random

from repro.engine.dbfuncs import ExecContext, ProcessResult
from repro.engine.operation import OperationRuntime
from repro.engine.queues import ActivationQueue
from repro.engine.threads import (
    BLOCKED,
    FINISHED,
    RUNNABLE,
    WAITING,
    WorkerThread,
)
from repro.engine.trace import ExecutionTrace
from repro.errors import ExecutionError
from repro.obs.bus import (
    BLOCK,
    DEQUEUE,
    ENQUEUE,
    OP_FINALIZE,
    OP_FINISH,
    THREAD_FINISH,
    UNBLOCK,
)
from repro.lera.activation import DATA, Activation
from repro.machine.machine import Machine

#: Number of slices a dilated activation is split into; finer slices
#: track the draining of concurrent threads more precisely.
DILATION_SLICES = 16


class _WorkInProgress:
    """A partially charged activation (slicing mode only)."""

    __slots__ = ("result", "started_at", "remaining", "slice")

    def __init__(self, result: ProcessResult, started_at: float,
                 total: float) -> None:
        self.result = result
        self.started_at = started_at
        self.remaining = total
        self.slice = max(total / DILATION_SLICES, 1e-12)


class Simulator:
    """Runs one *wave* of concurrently executing operations to completion."""

    def __init__(self, machine: Machine, seed: int = 0,
                 tracer: ExecutionTrace | None = None,
                 use_ready_index: bool = True, bus=None) -> None:
        self.machine = machine
        self.rng = random.Random(seed)
        self.tracer = tracer
        #: Observability bus (:class:`repro.obs.bus.EventBus`) or
        #: ``None``.  Every emission site is guarded by one
        #: ``is not None`` check so the disabled hot path stays flat.
        self.bus = bus
        #: When False, candidate queues are found by the legacy linear
        #: scan instead of the per-operation ready index.  Both paths
        #: are virtual-time identical (the golden-trace tests pin
        #: this); the flag exists so the equivalence stays testable.
        self.use_ready_index = use_ready_index
        self._seq = 0
        self._active = 0
        self._sliced = False
        # Per-thread slicing state, keyed by thread id.
        self._in_progress: dict[int, _WorkInProgress] = {}
        self._pending_batch: dict[int, list[Activation]] = {}

    # -- public API -----------------------------------------------------------

    def run_wave(self, operations: list[OperationRuntime]) -> float:
        """Simulate *operations* until every thread terminates.

        Operations must already have pools built and triggered
        operations seeded.  Returns the wave's finish time (max
        operation finish).  Raises :class:`ExecutionError` on deadlock
        (threads parked forever — indicates a wiring bug).
        """
        heap: list[tuple[float, int, WorkerThread]] = []
        total_threads = 0
        for operation in operations:
            for thread in operation.threads:
                self._push(heap, thread)
                total_threads += 1
        self._active = total_threads
        self._sliced = total_threads > self.machine.processors
        if self.bus is not None and operations:
            self.bus.sample_active(operations[0].started_at, self._active)
        while heap:
            _, _, thread = heapq.heappop(heap)
            if thread.state != RUNNABLE:
                continue
            if self._sliced and thread.thread_id in self._in_progress:
                self._advance_slice(thread, heap)
            else:
                self._step(thread, heap)
        stuck = [op.name for op in operations if not op.complete]
        if stuck:
            raise ExecutionError(
                f"deadlock: operations {stuck} have parked threads and no "
                f"runnable work")
        return max(op.finished_at for op in operations
                   if op.finished_at is not None)

    # -- scheduling internals ---------------------------------------------------

    def _push(self, heap: list, thread: WorkerThread) -> None:
        heapq.heappush(heap, (thread.clock, self._seq, thread))
        self._seq += 1

    def _dilation(self) -> float:
        return self.machine.dilation(self._active)

    def _wake_one(self, operation: OperationRuntime, heap: list) -> None:
        """Signal one waiting consumer thread (condition-variable style)."""
        thread = operation.waiting_threads.popleft()
        thread.state = RUNNABLE
        self._active += 1
        self._push(heap, thread)
        if self.bus is not None:
            # Sampled at the woken thread's (parked) clock — it will
            # jump forward when the thread next steps.
            self.bus.sample_active(thread.clock, self._active)

    def _wake_all(self, operation: OperationRuntime, heap: list) -> None:
        """Broadcast: input closed, every parked thread must re-check."""
        while operation.waiting_threads:
            self._wake_one(operation, heap)

    def _wake_blocked(self, queue: ActivationQueue, at_time: float,
                      heap: list) -> None:
        """Un-block producers once *queue* dropped below capacity."""
        bus = self.bus
        for producer in queue.blocked_producers:
            producer.state = RUNNABLE
            self._active += 1
            producer.wait_until(at_time)
            self._push(heap, producer)
            if bus is not None:
                bus.emit(UNBLOCK, at_time, producer.operation.name,
                         producer.thread_id, queue=queue.operation_name,
                         instance=queue.instance)
                bus.sample_active(at_time, self._active)
        queue.blocked_producers.clear()

    # -- one thread step ---------------------------------------------------------

    def _scan_select(self, thread: WorkerThread, now: float
                     ) -> tuple[list[ActivationQueue], int,
                                float | None, bool]:
        """Legacy candidate selection: linear scan over every queue.

        Scans main queues first, falling back to secondary queues; the
        earliest future ready time is tracked during the same scan so
        an idle thread knows when to re-check.  Kept as the reference
        implementation the ready index must match exactly (see the
        golden-trace tests); O(d) per step, so only used when
        ``use_ready_index`` is off.
        """
        operation = thread.operation
        ready: list[ActivationQueue] = []
        polls = 0
        future: float | None = None
        for queue in thread.main_queues:
            if queue.has_ready(now):
                ready.append(queue)
            else:
                polls += 1
                t = queue.next_ready_time()
                if t is not None and (future is None or t < future):
                    future = t
        used_secondary = False
        if not ready and operation.allow_secondary:
            main_set = thread.main_queue_set
            for queue in operation.queues:
                if queue.instance in main_set:
                    continue
                if queue.has_ready(now):
                    ready.append(queue)
                else:
                    polls += 1
                    t = queue.next_ready_time()
                    if t is not None and (future is None or t < future):
                        future = t
            used_secondary = True
        return ready, polls, future, used_secondary

    def _step(self, thread: WorkerThread, heap: list) -> None:
        operation = thread.operation
        costs = self.machine.costs
        dilation = self._dilation()
        now = thread.clock

        index = operation.ready_index if self.use_ready_index else None
        if index is not None:
            ready, polls, used_secondary = index.select(
                thread, now, operation.allow_secondary)
            future = None  # computed lazily, only when nothing is ready
        else:
            ready, polls, future, used_secondary = self._scan_select(
                thread, now)

        if polls:
            operation.polls += polls
            thread.advance(polls * costs.poll_empty * dilation, busy=True)

        if not ready:
            if index is not None:
                future = index.next_ready_time(
                    thread, operation.allow_secondary)
            if future is not None:
                thread.wait_until(future)
                self._push(heap, thread)
            elif not operation.input_closed:
                thread.state = WAITING
                self._active -= 1
                operation.waiting_threads.append(thread)
                if self.bus is not None:
                    self.bus.sample_active(thread.clock, self._active)
            else:
                self._finish_thread(thread, heap)
            return

        queue = operation.strategy.choose(self.rng, ready)
        batch = queue.dequeue_ready(thread.clock, operation.cache_size)
        operation.pending_activations -= len(batch)
        operation.dequeue_batches += 1
        access_cost = costs.dequeue_batch
        secondary = used_secondary or queue.instance not in thread.main_queue_set
        if secondary:
            access_cost += costs.secondary_access
            operation.secondary_accesses += 1
        if self.bus is not None:
            self.bus.emit(DEQUEUE, thread.clock, operation.name,
                          thread.thread_id, instance=queue.instance,
                          count=len(batch), secondary=secondary)
        thread.advance(access_cost * dilation, busy=True)
        if queue.blocked_producers and not queue.over_capacity:
            self._wake_blocked(queue, thread.clock, heap)

        if self._sliced:
            # Start the first activation; the rest of the batch (and
            # the back-pressure check) continue in _advance_slice.
            self._pending_batch[thread.thread_id] = list(batch)
            self._begin_activation(thread)
            self._push(heap, thread)
            return

        filled: set[int] = set()
        for activation in batch:
            self._charge_whole(thread, activation, heap, filled)
        self._after_batch(thread, heap, filled)

    def _after_batch(self, thread: WorkerThread, heap: list,
                     filled: set[int]) -> None:
        """Back-pressure check once a batch is fully processed."""
        consumer = thread.operation.consumer
        if consumer is not None:
            for instance in filled:
                target = consumer.queues[instance]
                if target.over_capacity:
                    thread.state = BLOCKED
                    self._active -= 1
                    target.blocked_producers.append(thread)
                    if self.bus is not None:
                        self.bus.emit(BLOCK, thread.clock,
                                      thread.operation.name,
                                      thread.thread_id,
                                      target=consumer.name,
                                      instance=instance)
                        self.bus.sample_active(thread.clock, self._active)
                    return
        self._push(heap, thread)

    # -- whole-activation path (no over-subscription) ------------------------------

    def _charge_whole(self, thread: WorkerThread, activation: Activation,
                      heap: list, filled: set[int]) -> None:
        result = self._run_dbfunc(thread, activation)
        start = thread.clock
        thread.advance(self._total_cost(thread.operation, result), busy=True)
        if self.tracer is not None:
            self.tracer.record(thread.thread_id, thread.operation.name,
                               "activation", start, thread.clock)
        self._deliver(thread, result, start, heap, filled)

    # -- sliced path (over-subscription possible) ------------------------------------

    def _begin_activation(self, thread: WorkerThread) -> None:
        batch = self._pending_batch.get(thread.thread_id)
        if not batch:
            return
        activation = batch.pop(0)
        result = self._run_dbfunc(thread, activation)
        total = self._total_cost(thread.operation, result)
        self._in_progress[thread.thread_id] = _WorkInProgress(
            result, thread.clock, total)

    def _advance_slice(self, thread: WorkerThread, heap: list) -> None:
        work = self._in_progress[thread.thread_id]
        slice_cost = min(work.remaining, work.slice)
        thread.advance(slice_cost * self._dilation(), busy=True)
        work.remaining -= slice_cost
        if work.remaining > 1e-15:
            self._push(heap, thread)
            return
        del self._in_progress[thread.thread_id]
        if self.tracer is not None:
            self.tracer.record(thread.thread_id, thread.operation.name,
                               "activation", work.started_at, thread.clock)
        filled: set[int] = set()
        self._deliver(thread, work.result, work.started_at, heap, filled)
        if self._pending_batch.get(thread.thread_id):
            # Back-pressure is only checked between batches, matching
            # the whole-activation path.
            self._begin_activation(thread)
            self._push(heap, thread)
            return
        self._pending_batch.pop(thread.thread_id, None)
        self._after_batch(thread, heap, filled)

    # -- shared activation machinery ----------------------------------------------

    def _finalize_operation(self, thread: WorkerThread, heap: list) -> None:
        """End-of-input emission, executed once by the last live thread."""
        operation = thread.operation
        operation.finalized = True
        filled: set[int] = set()
        for instance in range(operation.instances):
            ctx = ExecContext(self.machine, thread.thread_id)
            result = operation.dbfunc.finalize(instance, ctx)
            if result is None:
                continue
            operation.memory_penalty += ctx.penalty
            operation.finalize_cost += result.cost
            started_at = thread.clock
            thread.advance(result.cost * self._dilation(), busy=True)
            if self.tracer is not None:
                self.tracer.record(thread.thread_id, operation.name,
                                   "finalize", started_at, thread.clock)
            if self.bus is not None:
                self.bus.emit(OP_FINALIZE, thread.clock, operation.name,
                              thread.thread_id, instance=instance,
                              cost=result.cost)
                if ctx.penalty:
                    self.bus.add_memory_penalty(
                        thread.clock, operation.name, thread.thread_id,
                        ctx.penalty)
            self._deliver(thread, result, started_at, heap, filled)

    def _run_dbfunc(self, thread: WorkerThread,
                    activation: Activation) -> ProcessResult:
        operation = thread.operation
        ctx = ExecContext(self.machine, thread.thread_id)
        result = operation.dbfunc.process(activation.instance, activation, ctx)
        operation.activation_costs.append(result.cost)
        operation.activation_outputs.append(len(result.emitted))
        operation.memory_penalty += ctx.penalty
        if ctx.penalty and self.bus is not None:
            self.bus.add_memory_penalty(thread.clock, operation.name,
                                        thread.thread_id, ctx.penalty)
        return result

    def _total_cost(self, operation: OperationRuntime,
                    result: ProcessResult) -> float:
        cost = result.cost
        if operation.consumer is not None and result.emitted:
            cost += len(result.emitted) * self.machine.costs.enqueue
        return cost

    def _deliver(self, thread: WorkerThread, result: ProcessResult,
                 started_at: float, heap: list, filled: set[int]) -> None:
        """Route (or collect) an activation's output rows.

        Tuples become visible progressively across the activation's
        realized duration, which is what lets a consumer overlap with
        its producer (pipelined execution).
        """
        operation = thread.operation
        emitted = result.emitted
        if not emitted:
            return
        consumer = operation.consumer
        if consumer is None:
            operation.result_rows.extend(emitted)
            return
        router = operation.router
        if router is None:
            raise ExecutionError(
                f"operation {operation.name!r} has a consumer but no router")
        duration = thread.clock - started_at
        count = len(emitted)
        queues = consumer.queues
        # Fast path: a single consumer instance makes routing trivial
        # (the hash router would return 0 for every row).
        single = len(queues) == 1
        for i, row in enumerate(emitted):
            instance = 0 if single else router(row)
            ready_time = started_at + duration * (i + 1) / count
            queues[instance].enqueue(
                ready_time, Activation(DATA, instance, row))
            filled.add(instance)
        consumer.pending_activations += count
        operation.enqueues += count
        if self.bus is not None:
            self.bus.emit(ENQUEUE, thread.clock, operation.name,
                          thread.thread_id, consumer=consumer.name,
                          count=count)
        # Batched wakeups: the legacy loop woke one waiting consumer
        # after each enqueue; since nothing else touches the event heap
        # in between, waking min(count, waiting) threads afterwards
        # yields the identical pop order and tie-break sequence.
        waiting = len(consumer.waiting_threads)
        if waiting:
            for _ in range(waiting if waiting < count else count):
                self._wake_one(consumer, heap)

    def _finish_thread(self, thread: WorkerThread, heap: list) -> None:
        operation = thread.operation
        if operation.live_threads == 1 and not operation.finalized:
            # Last thread standing: run the operator's end-of-input
            # behaviour (aggregate emission) before terminating.
            self._finalize_operation(thread, heap)
        thread.state = FINISHED
        thread.finished_at = thread.clock
        self._active -= 1
        operation.live_threads -= 1
        if self.bus is not None:
            self.bus.emit(THREAD_FINISH, thread.clock, operation.name,
                          thread.thread_id)
            self.bus.sample_active(thread.clock, self._active)
        if operation.live_threads > 0:
            return
        operation.finished_at = max(
            t.finished_at for t in operation.threads
            if t.finished_at is not None)
        if self.bus is not None:
            self.bus.emit(OP_FINISH, operation.finished_at, operation.name,
                          threads=len(operation.threads),
                          activations=len(operation.activation_costs))
        consumer = operation.consumer
        if consumer is not None:
            consumer.producers_remaining -= 1
            if consumer.producers_remaining <= 0:
                consumer.close_input()
                self._wake_all(consumer, heap)
