"""Execution metrics.

Everything the experiments report is derived from here: response
times, per-operation activation-cost profiles (which plug straight
into the Section 4.1 analytical model via
:class:`~repro.analysis.formulas.OperatorProfile`), thread
utilization, queue-machinery counters and Allcache penalties.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.formulas import OperatorProfile
from repro.engine.operation import OperationRuntime
from repro.engine.trace import ExecutionTrace
from repro.errors import ExecutionError
from repro.obs.bus import EventBus
from repro.storage.tuples import Row

#: Terminal states of a query execution.  ``STATUS_DONE`` is the only
#: one a plain single-query run can produce; the others come from the
#: workload layer's cancellation/timeout/fault-abort paths —
#: ``rejected`` / ``shed`` from the serving layer's admission and
#: overload-protection decisions (the query never touched the machine).
STATUS_DONE = "done"
STATUS_CANCELLED = "cancelled"
STATUS_TIMED_OUT = "timed_out"
STATUS_FAILED = "failed"
STATUS_REJECTED = "rejected"
STATUS_SHED = "shed"


@dataclass(frozen=True)
class OperationMetrics:
    """Measured behaviour of one operation."""

    name: str
    trigger_mode: str
    instances: int
    threads: int
    strategy: str
    started_at: float
    finished_at: float
    activation_costs: tuple[float, ...]
    activation_outputs: tuple[int, ...]
    queue_activations: tuple[int, ...]
    busy_time: float
    idle_time: float
    polls: int
    enqueues: int
    dequeue_batches: int
    secondary_accesses: int
    memory_penalty: float
    result_count: int
    #: Fault-layer accounting (all zero on fault-free runs): failed
    #: attempts injected, retries re-enqueued, attempts that aborted
    #: the query, activations discarded by a cancellation/abort drain,
    #: and virtual time frozen by injected stalls.
    faults_injected: int = 0
    fault_retries: int = 0
    fault_aborts: int = 0
    discarded: int = 0
    stalled_time: float = 0.0
    cost_share: float = 1.0
    """Fraction of this operation's cost attributed to the owning
    query.  1.0 for private operations; a shared (folded) operation
    appears in every subscriber's execution with the same raw
    counters but ``cost_share = 1/len(subscribers)``, so that
    :attr:`work` sums to the work actually performed."""

    @classmethod
    def of(cls, runtime: OperationRuntime, cost_share: float = 1.0,
           name: str | None = None) -> "OperationMetrics":
        if runtime.finished_at is None:
            raise ExecutionError(
                f"operation {runtime.name!r} did not finish")
        return cls(
            name=runtime.name if name is None else name,
            trigger_mode=runtime.node.trigger_mode,
            instances=runtime.instances,
            threads=len(runtime.threads),
            strategy=runtime.strategy.name,
            started_at=runtime.started_at,
            finished_at=runtime.finished_at,
            activation_costs=tuple(runtime.activation_costs),
            activation_outputs=tuple(runtime.activation_outputs),
            queue_activations=tuple(q.enqueued for q in runtime.queues),
            busy_time=sum(t.busy_time for t in runtime.threads),
            idle_time=sum(t.idle_time for t in runtime.threads),
            polls=runtime.polls,
            enqueues=runtime.enqueues,
            dequeue_batches=runtime.dequeue_batches,
            secondary_accesses=runtime.secondary_accesses,
            memory_penalty=runtime.memory_penalty,
            result_count=len(runtime.result_rows),
            faults_injected=runtime.faults_injected,
            fault_retries=runtime.fault_retries,
            fault_aborts=runtime.fault_aborts,
            discarded=runtime.discarded,
            stalled_time=sum(t.stalled_time for t in runtime.threads),
            cost_share=cost_share,
        )

    @property
    def response_time(self) -> float:
        return self.finished_at - self.started_at

    @property
    def activations(self) -> int:
        return len(self.activation_costs)

    @property
    def work(self) -> float:
        """Sequential (un-dilated) activation cost attributed to the
        owning query (raw cost scaled by :attr:`cost_share`)."""
        return sum(self.activation_costs) * self.cost_share

    @property
    def emitted(self) -> int:
        """Total rows emitted across activations (routed or results)."""
        return sum(self.activation_outputs)

    def queue_imbalance(self) -> float:
        """Max/mean activations per queue (1.0 = even placement).

        The redistribution-skew (RS) signature of Walton's taxonomy:
        a transmit that floods few consumer queues shows up here.
        """
        total = sum(self.queue_activations)
        if total == 0 or not self.queue_activations:
            return 1.0
        mean = total / len(self.queue_activations)
        return max(self.queue_activations) / mean

    def profile(self) -> OperatorProfile:
        """Cost profile for the Section 4.1 analytical model."""
        return OperatorProfile.of(self.activation_costs)

    @property
    def utilization(self) -> float:
        """Busy fraction of the pool over the operation's lifetime."""
        span = self.response_time * self.threads
        if span <= 0:
            return 0.0
        return self.busy_time / span


@dataclass(frozen=True)
class QueryExecution:
    """Full outcome of one query execution.

    ``result_rows`` is the real relational result; ``response_time``
    is the virtual wall clock from query submission to the last
    operation finishing, including the sequential start-up phase.
    """

    response_time: float
    startup_time: float
    total_threads: int
    dilation: float
    operations: dict[str, OperationMetrics]
    result_rows: list[Row] = field(repr=False)
    trace: ExecutionTrace | None = field(default=None, repr=False)
    """Per-activation events, present when tracing was enabled."""
    obs: EventBus | None = field(default=None, repr=False)
    """Structured events, probe series and counters, present when the
    execution ran with ``ExecutionOptions(observe=True)``; export via
    :mod:`repro.obs.export`."""
    status: str = STATUS_DONE
    """Terminal state: ``done``, or — for workload queries —
    ``cancelled`` / ``timed_out`` / ``failed``.  Non-done executions
    carry partial metrics (only the operations that ran)."""

    @property
    def result_cardinality(self) -> int:
        return len(self.result_rows)

    def operation(self, name: str) -> OperationMetrics:
        try:
            return self.operations[name]
        except KeyError:
            raise ExecutionError(f"no metrics for operation {name!r}") from None

    @property
    def work(self) -> float:
        """Total sequential work across operations (un-dilated).

        This is the perfect-sequential execution time — the ``Tseq``
        baseline of the speed-up figures (no queue machinery, no
        start-up, no idling).
        """
        return sum(op.work for op in self.operations.values())

    @property
    def total_activations(self) -> int:
        return sum(op.activations for op in self.operations.values())

    def speedup_against(self, sequential_time: float) -> float:
        """``Tseq / response_time``."""
        if self.response_time <= 0:
            raise ExecutionError("response time is zero")
        return sequential_time / self.response_time

    def summary(self) -> str:
        """A human-readable execution report (one block per operation)."""
        lines = [
            f"response time : {self.response_time:.3f}s virtual "
            f"(start-up {self.startup_time:.3f}s)",
            f"threads       : {self.total_threads} "
            f"(dilation {self.dilation:.2f})",
            f"result rows   : {self.result_cardinality}",
            f"total work    : {self.work:.3f}s over "
            f"{self.total_activations} activations",
        ]
        for name, op in self.operations.items():
            profile = op.profile()
            lines.append(
                f"  {name:<12} {op.trigger_mode:<9} x{op.instances:<5} "
                f"{op.threads:>3} threads  {op.strategy:<11} "
                f"acts={op.activations:<7} skew={profile.skew_factor:5.2f}  "
                f"util={op.utilization:5.1%}")
        return "\n".join(lines)
