"""Ready-queue index: sub-linear candidate selection for the event loop.

Before this index existed, every thread step linearly rescanned the
operation's activation queues (`has_ready` / `next_ready_time` on each
of them), so one simulated step cost O(d) in the degree of
partitioning — quadratic overall, and exactly the regime the paper
sweeps (Figures 16-19 go to d = 1500 fragments).

The index exploits a structural invariant of the pool build: main
queues *partition* the operation's queues across threads (queue ``i``
is the main queue of thread ``i mod ThreadNb``).  Per pool slot — and
once more for the whole operation, to serve secondary lookups — it
keeps two structures over the covered queues:

* a lazy min-heap of ``(next_ready_time, instance)`` entries for
  queues whose head lies in the *future* of every query seen so far;
* a *ready set* of instances whose head time has already passed some
  query's ``now`` — these stay ready until their head changes, so
  they are admitted once instead of being re-discovered every step.

Both are maintained incrementally through the
:class:`~repro.engine.queues.ActivationQueue` notification hook: any
head change evicts the instance from its ready sets and (if the queue
is non-empty) pushes fresh heap entries.  Heap entries whose time no
longer matches the instance's current head are *stale* and discarded
lazily when they surface at the top.  The standing invariant: every
non-empty queue is tracked at exactly its current head time, either
as a ready-set member or as a valid heap entry, in both its pool
structure and the operation-wide one.

Because threads have private clocks, a ready-set member admitted under
one thread's ``now`` may still be in the future for a slower thread,
so queries re-check members against their own ``now`` — a plain
integer-indexed comparison, far cheaper than the method-call scan it
replaces, and over only the plausibly ready queues instead of all d.

Selection mirrors the legacy scan exactly, without iterating queues:

* ready main candidates are the own-pool members with head <= now,
  returned in instance order (the order the scan produced);
* secondary candidates — consulted only when no main is ready — come
  from the operation-wide structure: since no own-pool queue is ready,
  every operation-wide ready instance is necessarily secondary;
* the ``poll_empty`` charge is derived from cardinalities:
  ``polls = #main - #ready_main`` (plus, on the secondary path,
  ``#secondary - #ready_secondary``), which equals the number of
  not-ready queues the scan would have visited;
* the earliest future ready time is the minimum over the relevant
  structure's heap top and ready-set members.

See docs/architecture.md for the full equivalence argument.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.engine.operation import OperationRuntime
    from repro.engine.queues import ActivationQueue
    from repro.engine.threads import WorkerThread

#: Sentinel pool id of the operation-wide structure.
_GLOBAL = -1


class ReadyIndex:
    """Per-operation index over its activation queues' head ready times."""

    __slots__ = ("_queues", "_nrt", "_pool_of", "_heaps", "_ready",
                 "_mains_per_pool", "_track_global", "obs",
                 "_notify_key", "_stale_key", "_ready_key")

    def __init__(self, operation: "OperationRuntime") -> None:
        queues = operation.queues
        self._queues = queues
        #: Observability hook (an EventBus), attached by the executor
        #: when observability is on; ``None`` costs one check per site.
        self.obs = None
        self._notify_key = "ready_notify/" + operation.name
        self._stale_key = "ready_stale_drops/" + operation.name
        self._ready_key = "ready_set/" + operation.name
        pool_count = len(operation.threads)
        self._pool_of = [0] * len(queues)
        # Slot -1 (the last) holds the operation-wide structure.
        self._heaps: list[list[tuple[float, int]]] = [
            [] for _ in range(pool_count + 1)]
        self._ready: list[set[int]] = [set() for _ in range(pool_count + 1)]
        self._mains_per_pool = [0] * pool_count
        for thread in operation.threads:
            for instance in thread.main_queue_set:
                self._pool_of[instance] = thread.pool_index
                self._mains_per_pool[thread.pool_index] += 1
        #: Without secondary consumption no cross-pool lookups happen,
        #: so the operation-wide bookkeeping would be dead weight.
        self._track_global = operation.allow_secondary
        #: Authoritative head ready time per instance (None = empty).
        self._nrt: list[float | None] = [None] * len(queues)
        for queue in queues:
            queue.listener = self
            head = queue.next_ready_time()
            if head is not None:
                self.notify(queue.instance, head)

    # -- incremental maintenance (called by ActivationQueue) -------------------

    def notify(self, instance: int, ready_time: float | None) -> None:
        """Record that *instance*'s head ready time is now *ready_time*.

        The instance leaves the ready sets (its old head is gone) and,
        when still non-empty, re-enters through the heaps.  Old heap
        entries are recognized as stale (time mismatch) and dropped
        lazily.
        """
        if self.obs is not None:
            self.obs.count(self._notify_key)
        pool = self._pool_of[instance]
        self._ready[pool].discard(instance)
        self._nrt[instance] = ready_time
        if ready_time is not None:
            entry = (ready_time, instance)
            heapq.heappush(self._heaps[pool], entry)
            if self._track_global:
                heapq.heappush(self._heaps[_GLOBAL], entry)
        if self._track_global:
            self._ready[_GLOBAL].discard(instance)

    def add_pool_slot(self) -> None:
        """Register one more pool slot (a helper thread with no mains).

        The operation-wide structure must stay at list index -1 (the
        :data:`_GLOBAL` convention), so the fresh empty slot is
        inserted just before it.  The helper owns no main queues,
        hence empty structures and a zero main count.
        """
        self._heaps.insert(-1, [])
        self._ready.insert(-1, set())
        self._mains_per_pool.append(0)

    # -- queries ---------------------------------------------------------------

    def _ready_in(self, pool: int, now: float) -> list[int]:
        """Instances tracked by *pool* with an activation ready at *now*.

        First promotes heap entries with time <= now into the pool's
        ready set, then filters the set: members admitted under a
        faster thread's clock may still lie in this thread's future,
        hence the per-member re-check.
        """
        heap = self._heaps[pool]
        nrt = self._nrt
        ready = self._ready[pool]
        stale = 0
        while heap:
            time, instance = heap[0]
            if time != nrt[instance] or instance in ready:
                heapq.heappop(heap)  # stale or duplicate entry
                stale += 1
                continue
            if time > now:
                break
            heapq.heappop(heap)
            ready.add(instance)
        if stale and self.obs is not None:
            self.obs.count(self._stale_key, stale)
        return [i for i in ready if nrt[i] <= now]

    def _min_in(self, pool: int) -> float | None:
        """Smallest head time tracked by *pool* (purging stale entries)."""
        heap = self._heaps[pool]
        nrt = self._nrt
        ready = self._ready[pool]
        best: float | None = None
        stale = 0
        while heap:
            time, instance = heap[0]
            if time == nrt[instance] and instance not in ready:
                best = time
                break
            heapq.heappop(heap)
            stale += 1
        if stale and self.obs is not None:
            self.obs.count(self._stale_key, stale)
        for instance in ready:
            time = nrt[instance]
            if best is None or time < best:
                best = time
        return best

    def select(self, thread: "WorkerThread", now: float,
               allow_secondary: bool
               ) -> tuple[list["ActivationQueue"], int, bool]:
        """Candidate queues for *thread* at time *now*.

        Returns ``(ready, polls, used_secondary)`` reproducing the
        legacy linear scan bit-for-bit: the same candidate list in the
        same (instance) order, and the same count of not-ready queues
        charged as ``poll_empty`` work.
        """
        pool = thread.pool_index
        queues = self._queues
        main_count = self._mains_per_pool[pool]
        mains = self._ready_in(pool, now)
        if self.obs is not None:
            # Probe the post-promotion ready-set size this thread saw
            # in its own pool structure (the operation-wide set is
            # only promoted on the secondary path, so it would read
            # stale here).
            self.obs.sample(self._ready_key, now, len(self._ready[pool]))
        if mains:
            mains.sort()
            return ([queues[i] for i in mains],
                    main_count - len(mains), False)
        if not allow_secondary:
            return [], main_count, False
        # No own-pool queue is ready, so every operation-wide ready
        # instance is a secondary queue of this thread.
        secondary = self._ready_in(_GLOBAL, now)
        secondary.sort()
        return ([queues[i] for i in secondary],
                len(queues) - len(secondary), True)

    def next_ready_time(self, thread: "WorkerThread",
                        allow_secondary: bool) -> float | None:
        """Earliest pending ready time visible to *thread*.

        With secondary access this is the minimum over every queue of
        the operation; without, only the thread's own main queues
        count (the Gamma-style static binding).
        """
        if allow_secondary:
            return self._min_in(_GLOBAL)
        return self._min_in(thread.pool_index)
