"""Multi-query (multi-user) execution.

The paper's scheduler step 1 notes that the single-user thread optimum
"can then be reduced according to the average processor utilization in
order to increase the multi-user throughput" [Rahm93].  This module
provides the substrate to study that trade-off: several queries run
*concurrently* in one simulation, sharing the machine's processors
(the dilation follows the combined active thread count), each with its
own schedule and its own results.

Restriction: concurrent execution supports single-wave plans (no
materialized dependencies) — which covers every plan shape of the
paper's evaluation.  Multi-wave plans still run through the ordinary
:class:`~repro.engine.executor.Executor`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.dbfuncs import make_dbfunc
from repro.engine.executor import (
    DEFAULT_PIPELINED_CACHE,
    DEFAULT_TRIGGERED_CACHE,
    ExecutionOptions,
    QuerySchedule,
    _router_for,
)
from repro.engine.metrics import OperationMetrics, QueryExecution
from repro.engine.operation import OperationRuntime
from repro.engine.simulator import Simulator
from repro.engine.strategies import make_strategy
from repro.errors import ExecutionError, PlanError
from repro.lera.activation import PIPELINED, TRIGGERED
from repro.lera.graph import PIPELINE, LeraGraph
from repro.machine.machine import Machine


@dataclass(frozen=True)
class ConcurrentResult:
    """Outcome of one batch of concurrently executed queries."""

    executions: tuple[QueryExecution, ...]
    makespan: float

    @property
    def throughput(self) -> float:
        """Queries completed per virtual second."""
        if self.makespan <= 0:
            raise ExecutionError("zero makespan")
        return len(self.executions) / self.makespan

    @property
    def mean_response_time(self) -> float:
        return (sum(e.response_time for e in self.executions)
                / len(self.executions))


class ConcurrentExecutor:
    """Runs a batch of single-wave plans in one shared simulation."""

    def __init__(self, machine: Machine | None = None,
                 options: ExecutionOptions | None = None) -> None:
        self.machine = machine or Machine.uniform()
        self.options = options or ExecutionOptions()

    def execute(self, workload: list[tuple[LeraGraph, QuerySchedule]]
                ) -> ConcurrentResult:
        """Execute every (plan, schedule) pair concurrently.

        All queries are submitted at time zero; start-up phases are
        charged sequentially (one initialization thread, as in the
        single-query executor), then every operation of every query
        runs in the same simulated wave.  Each query's response time is
        its own last operation's finish time.
        """
        if not workload:
            raise ExecutionError("empty workload")
        per_query: list[dict[str, OperationRuntime]] = []
        startup = 0.0
        for plan, schedule in workload:
            plan.validate()
            if len(plan.chain_waves()) != 1:
                raise PlanError(
                    "concurrent execution supports single-wave plans only")
            runtimes = self._build(plan, schedule)
            per_query.append(runtimes)
            for runtime in runtimes.values():
                startup += (schedule.of(runtime.name).threads
                            * self.machine.costs.thread_create)
                per_queue = (self.machine.costs.queue_create_pipelined
                             if runtime.node.trigger_mode == PIPELINED
                             else self.machine.costs.queue_create_triggered)
                startup += runtime.instances * per_queue

        next_thread_id = 0
        all_operations: list[OperationRuntime] = []
        for (plan, schedule), runtimes in zip(workload, per_query):
            for node in plan.nodes:
                runtime = runtimes[node.name]
                count = schedule.of(node.name).threads
                runtime.build_pool(
                    list(range(next_thread_id, next_thread_id + count)),
                    startup)
                next_thread_id += count
                if node.trigger_mode == TRIGGERED:
                    runtime.seed_triggers(startup)
                all_operations.append(runtime)

        simulator = Simulator(self.machine, seed=self.options.seed,
                              use_ready_index=self.options.use_ready_index)
        makespan = simulator.run_wave(all_operations)

        executions = []
        for (plan, schedule), runtimes in zip(workload, per_query):
            finish = max(rt.finished_at for rt in runtimes.values()
                         if rt.finished_at is not None)
            rows = []
            for runtime in runtimes.values():
                if runtime.consumer is None:
                    rows.extend(runtime.result_rows)
            threads = sum(schedule.of(name).threads for name in runtimes)
            executions.append(QueryExecution(
                response_time=finish,
                startup_time=startup,
                total_threads=threads,
                dilation=self.machine.dilation(next_thread_id),
                operations={name: OperationMetrics.of(rt)
                            for name, rt in runtimes.items()},
                result_rows=rows,
            ))
        return ConcurrentResult(tuple(executions), makespan)

    def _build(self, plan: LeraGraph,
               schedule: QuerySchedule) -> dict[str, OperationRuntime]:
        runtimes: dict[str, OperationRuntime] = {}
        for node in plan.nodes:
            op_schedule = schedule.of(node.name)
            cache_size = op_schedule.cache_size
            if cache_size is None:
                cache_size = (DEFAULT_PIPELINED_CACHE
                              if node.trigger_mode == PIPELINED
                              else DEFAULT_TRIGGERED_CACHE)
            runtimes[node.name] = OperationRuntime(
                node=node,
                dbfunc=make_dbfunc(node.spec, self.machine.costs),
                strategy=make_strategy(op_schedule.strategy),
                cache_size=cache_size,
                queue_capacity=self.options.queue_capacity,
                allow_secondary=op_schedule.allow_secondary,
            )
        for edge in plan.edges:
            if edge.kind != PIPELINE:
                continue
            producer = runtimes[edge.producer]
            consumer = runtimes[edge.consumer]
            producer.consumer = consumer
            producer.router = _router_for(consumer)
            consumer.producers_remaining += 1
        return runtimes
