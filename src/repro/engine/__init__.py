"""The shared-memory parallel execution engine (virtual-time simulated)."""

from repro.engine.dbfuncs import (
    DBFunc,
    ExecContext,
    FilterFunc,
    JoinFunc,
    PipelinedJoinFunc,
    ProcessResult,
    TransmitFunc,
    make_dbfunc,
)
from repro.engine.concurrent import ConcurrentExecutor, ConcurrentResult
from repro.engine.executor import (
    DEFAULT_PIPELINED_CACHE,
    DEFAULT_TRIGGERED_CACHE,
    PLACEMENT_COLD,
    PLACEMENT_NONE,
    PLACEMENT_WARM,
    ExecutionOptions,
    Executor,
    ObservabilityOptions,
    OperationSchedule,
    QuerySchedule,
)
from repro.engine.metrics import OperationMetrics, QueryExecution
from repro.engine.operation import OperationRuntime
from repro.engine.queues import ActivationQueue
from repro.engine.simulator import Simulator
from repro.engine.strategies import (
    LPT,
    RANDOM,
    ROUND_ROBIN,
    STRATEGIES,
    ConsumptionStrategy,
    LPTStrategy,
    RandomStrategy,
    RoundRobinStrategy,
    make_strategy,
)
from repro.engine.threads import WorkerThread
from repro.engine.trace import ExecutionTrace, TraceEvent

__all__ = [
    "ActivationQueue",
    "ConcurrentExecutor",
    "ConcurrentResult",
    "ExecutionTrace",
    "ConsumptionStrategy",
    "DBFunc",
    "DEFAULT_PIPELINED_CACHE",
    "DEFAULT_TRIGGERED_CACHE",
    "ExecContext",
    "ExecutionOptions",
    "Executor",
    "FilterFunc",
    "JoinFunc",
    "LPT",
    "LPTStrategy",
    "ObservabilityOptions",
    "OperationMetrics",
    "OperationRuntime",
    "OperationSchedule",
    "PLACEMENT_COLD",
    "PLACEMENT_NONE",
    "PLACEMENT_WARM",
    "PipelinedJoinFunc",
    "ProcessResult",
    "QueryExecution",
    "QuerySchedule",
    "RANDOM",
    "ROUND_ROBIN",
    "RandomStrategy",
    "RoundRobinStrategy",
    "STRATEGIES",
    "Simulator",
    "TransmitFunc",
    "TraceEvent",
    "WorkerThread",
    "make_dbfunc",
    "make_strategy",
]
