"""Worker threads of the virtual-time engine.

DBS3 "allocates a pool of threads for the entire operation,
independent of the operation instances"; every thread can serve any of
the operation's queues, with a statically assigned subset marked as
its *main* queues (Section 3).  Here a thread is a simulated actor
with a private virtual clock; the discrete-event simulator advances
the thread whose clock is smallest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.queues import ActivationQueue

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.engine.operation import OperationRuntime

#: Thread states.
RUNNABLE = "runnable"
WAITING = "waiting"      # no work available, operation input still open
BLOCKED = "blocked"      # back-pressure: a downstream queue is full
FINISHED = "finished"


class WorkerThread:
    """One simulated worker thread of an operation's pool.

    Attributes:
        thread_id: Globally unique id (doubles as the local-cache
            owner id for the Allcache model).
        pool_index: Index within the owning operation's pool; main
            queues are the operation queues whose instance number is
            congruent to this index modulo the pool size.
        clock: Private virtual time.
        busy_time / idle_time: Accounting split of elapsed time.
    """

    __slots__ = ("thread_id", "pool_index", "operation", "clock", "state",
                 "main_queues", "main_queue_set", "busy_time", "idle_time",
                 "stalled_time", "started_at", "finished_at")

    def __init__(self, thread_id: int, pool_index: int,
                 operation: "OperationRuntime", start_time: float) -> None:
        self.thread_id = thread_id
        self.pool_index = pool_index
        self.operation = operation
        self.clock = start_time
        self.started_at = start_time
        self.state = RUNNABLE
        self.main_queues: list[ActivationQueue] = []
        self.main_queue_set: set[int] = set()
        self.busy_time = 0.0
        self.idle_time = 0.0
        self.stalled_time = 0.0
        self.finished_at: float | None = None

    def __repr__(self) -> str:
        return (f"WorkerThread(#{self.thread_id} of {self.operation.name!r}, "
                f"clock={self.clock:.6f}, {self.state})")

    def assign_main_queues(self, queues: list[ActivationQueue]) -> None:
        """Record this thread's main queues (set once at pool build)."""
        self.main_queues = queues
        self.main_queue_set = {q.instance for q in queues}

    def advance(self, seconds: float, busy: bool) -> None:
        """Move the clock forward, attributing the time."""
        self.clock += seconds
        if busy:
            self.busy_time += seconds
        else:
            self.idle_time += seconds

    def wait_until(self, instant: float) -> None:
        """Idle-advance the clock to *instant* (no-op if in the past)."""
        if instant > self.clock:
            self.idle_time += instant - self.clock
            self.clock = instant

    def stall(self, instant: float) -> None:
        """Freeze under an injected stall window until *instant*.

        Counts as idle time but is additionally tracked as stalled, so
        the chaos harness can separate injected freezes from ordinary
        waiting.
        """
        if instant > self.clock:
            self.stalled_time += instant - self.clock
            self.idle_time += instant - self.clock
            self.clock = instant

    @property
    def utilization(self) -> float:
        """Busy fraction of this thread's lifetime (0 when unstarted)."""
        end = self.finished_at if self.finished_at is not None else self.clock
        lifetime = end - self.started_at
        if lifetime <= 0:
            return 0.0
        return self.busy_time / lifetime
