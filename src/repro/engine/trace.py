"""Execution traces and the ASCII Gantt renderer.

When tracing is enabled (``ExecutionOptions(trace=True)``), the
simulator records one event per processed activation — which thread,
which operation, which virtual-time interval.  The trace renders as a
Gantt chart (one row per thread, one glyph per operation), which makes
the paper's load-balancing stories directly *visible*: a skewed
triggered join under static binding shows one long straggler row; the
same join with shared queues shows the tail spread across the pool.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.errors import ReproError

#: Glyphs assigned to operations, in first-seen order.  When a trace
#: holds more operations than glyphs, glyphs are shared and the legend
#: disambiguates (one entry listing every operation of the glyph).
_GLYPHS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One busy interval of one thread."""

    thread_id: int
    operation: str
    kind: str              # "activation" or "finalize"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """All busy intervals of one execution."""

    events: list[TraceEvent] = field(default_factory=list)
    #: ``(event_count, sorted_starts, sorted_ends)`` memo for the
    #: sweep-based queries below; invalidated by length change.
    _bounds_cache: tuple | None = field(default=None, repr=False,
                                        compare=False)

    def record(self, thread_id: int, operation: str, kind: str,
               start: float, end: float) -> None:
        self.events.append(TraceEvent(thread_id, operation, kind, start, end))

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    @property
    def span(self) -> tuple[float, float]:
        """(first start, last end) over all events."""
        if not self.events:
            raise ReproError("empty trace")
        return (min(e.start for e in self.events),
                max(e.end for e in self.events))

    def thread_ids(self) -> list[int]:
        return sorted({e.thread_id for e in self.events})

    def operations(self) -> list[str]:
        seen: dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.operation, None)
        return list(seen)

    def events_of(self, thread_id: int) -> list[TraceEvent]:
        return sorted((e for e in self.events if e.thread_id == thread_id),
                      key=lambda e: e.start)

    def busy_time(self, thread_id: int) -> float:
        return sum(e.duration for e in self.events
                   if e.thread_id == thread_id)

    def by_thread(self) -> dict[int, list[TraceEvent]]:
        """All spans grouped per thread, each list sorted by start.

        A thread executes serially, so each per-thread list is a chain
        of non-overlapping intervals — the *same-thread* dependency
        edges of the critical-path analysis (:mod:`repro.diag`): span
        ``i+1`` cannot begin before span ``i`` ends.
        """
        grouped: dict[int, list[TraceEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.thread_id, []).append(event)
        for spans in grouped.values():
            spans.sort(key=lambda e: (e.start, e.end))
        return grouped

    def by_operation(self) -> dict[str, list[TraceEvent]]:
        """All spans grouped per operation, each list sorted by end.

        Sorted by end time because that is how the critical-path walk
        queries them: the producer span whose finish made a consumer's
        input available is the latest producer span ending at or
        before the consumer span's start (*cross-operation* dependency
        edges).
        """
        grouped: dict[str, list[TraceEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.operation, []).append(event)
        for spans in grouped.values():
            spans.sort(key=lambda e: (e.end, e.start))
        return grouped

    def _sorted_bounds(self) -> tuple[list[float], list[float]]:
        """Sorted start and end times of all events (memoized).

        Both sweep queries below work off these; the memo is keyed on
        the event count, so appending events invalidates it.
        """
        cache = self._bounds_cache
        if cache is not None and cache[0] == len(self.events):
            return cache[1], cache[2]
        starts = sorted(e.start for e in self.events)
        ends = sorted(e.end for e in self.events)
        self._bounds_cache = (len(self.events), starts, ends)
        return starts, ends

    def active_threads(self, instant: float) -> int:
        """How many threads are busy at a virtual instant.

        O(log E) per query after one O(E log E) sort (memoized): an
        event is active when ``start <= instant < end``, so the count
        is ``#{starts <= instant} - #{ends <= instant}``.
        """
        starts, ends = self._sorted_bounds()
        return bisect_right(starts, instant) - bisect_right(ends, instant)

    def utilization_timeline(self, bins: int = 20) -> list[float]:
        """Mean busy-thread count per time bin across the span.

        One sorted boundary sweep — O(E log E + bins) — instead of
        rescanning every event per bin: walk the merged start/end
        boundaries keeping a running active count, and distribute each
        constant-activity segment over the bins it overlaps.
        """
        start, end = self.span
        if end <= start:
            return [0.0] * bins
        width = (end - start) / bins
        starts, ends = self._sorted_bounds()
        timeline = [0.0] * bins
        count = len(starts)
        si = ei = 0
        active = 0
        prev = start
        while ei < count:
            take_start = si < count and starts[si] <= ends[ei]
            t = starts[si] if take_start else ends[ei]
            if t > prev:
                if active:
                    self._spread(timeline, prev, t, active, start, width)
                prev = t
            if take_start:
                active += 1
                si += 1
            else:
                active -= 1
                ei += 1
        threads = max(len(self.thread_ids()), 1)
        scale = width * threads
        return [busy / scale for busy in timeline]

    @staticmethod
    def _spread(timeline: list[float], a: float, b: float, weight: int,
                start: float, width: float) -> None:
        """Add ``weight * overlap`` of segment ``[a, b)`` to each bin."""
        bins = len(timeline)
        lo = min(int((a - start) / width), bins - 1)
        hi = min(int((b - start) / width), bins - 1)
        if lo == hi:
            timeline[lo] += weight * (b - a)
            return
        timeline[lo] += weight * (start + (lo + 1) * width - a)
        for i in range(lo + 1, hi):
            timeline[i] += weight * width
        timeline[hi] += weight * (b - (start + hi * width))

    # -- rendering ------------------------------------------------------------

    def gantt(self, width: int = 80) -> str:
        """ASCII Gantt chart: one row per thread, one glyph per operation.

        ``·`` marks idle time; the legend maps glyphs to operations.
        """
        if not self.events:
            raise ReproError("empty trace")
        start, end = self.span
        scale = (end - start) / width if end > start else 1.0
        glyph_of = {name: _GLYPHS[i % len(_GLYPHS)]
                    for i, name in enumerate(self.operations())}
        lines = [f"virtual time {start:.3f}s .. {end:.3f}s "
                 f"({scale:.4f}s per column)"]
        for thread_id in self.thread_ids():
            row = ["·"] * width
            for event in self.events_of(thread_id):
                lo = int((event.start - start) / scale) if scale else 0
                hi = int((event.end - start) / scale) if scale else 0
                lo = min(lo, width - 1)
                hi = min(max(hi, lo + 1), width)
                glyph = glyph_of[event.operation]
                if event.kind == "finalize":
                    glyph = glyph.upper()
                for column in range(lo, hi):
                    row[column] = glyph
            lines.append(f"t{thread_id:>3} |{''.join(row)}|")
        by_glyph: dict[str, list[str]] = {}
        for name in self.operations():
            by_glyph.setdefault(glyph_of[name], []).append(name)
        legend = ", ".join(f"{glyph}={'|'.join(names)}"
                           for glyph, names in by_glyph.items())
        lines.append(f"legend: {legend} (uppercase = finalize), · = idle")
        if any(len(names) > 1 for names in by_glyph.values()):
            lines.append(
                f"note: {len(glyph_of)} operations share {len(_GLYPHS)} "
                "glyphs; a shared glyph lists every operation as g=op1|op2")
        return "\n".join(lines)
