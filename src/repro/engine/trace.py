"""Execution traces and the ASCII Gantt renderer.

When tracing is enabled (``ExecutionOptions(trace=True)``), the
simulator records one event per processed activation — which thread,
which operation, which virtual-time interval.  The trace renders as a
Gantt chart (one row per thread, one glyph per operation), which makes
the paper's load-balancing stories directly *visible*: a skewed
triggered join under static binding shows one long straggler row; the
same join with shared queues shows the tail spread across the pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError

#: Glyphs assigned to operations, in first-seen order.
_GLYPHS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One busy interval of one thread."""

    thread_id: int
    operation: str
    kind: str              # "activation" or "finalize"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """All busy intervals of one execution."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, thread_id: int, operation: str, kind: str,
               start: float, end: float) -> None:
        self.events.append(TraceEvent(thread_id, operation, kind, start, end))

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    @property
    def span(self) -> tuple[float, float]:
        """(first start, last end) over all events."""
        if not self.events:
            raise ReproError("empty trace")
        return (min(e.start for e in self.events),
                max(e.end for e in self.events))

    def thread_ids(self) -> list[int]:
        return sorted({e.thread_id for e in self.events})

    def operations(self) -> list[str]:
        seen: dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.operation, None)
        return list(seen)

    def events_of(self, thread_id: int) -> list[TraceEvent]:
        return sorted((e for e in self.events if e.thread_id == thread_id),
                      key=lambda e: e.start)

    def busy_time(self, thread_id: int) -> float:
        return sum(e.duration for e in self.events
                   if e.thread_id == thread_id)

    def active_threads(self, instant: float) -> int:
        """How many threads are busy at a virtual instant."""
        return sum(1 for e in self.events if e.start <= instant < e.end)

    def utilization_timeline(self, bins: int = 20) -> list[float]:
        """Mean busy-thread count per time bin across the span."""
        start, end = self.span
        if end <= start:
            return [0.0] * bins
        width = (end - start) / bins
        timeline = []
        threads = max(len(self.thread_ids()), 1)
        for i in range(bins):
            lo = start + i * width
            hi = lo + width
            busy = 0.0
            for event in self.events:
                overlap = min(event.end, hi) - max(event.start, lo)
                if overlap > 0:
                    busy += overlap
            timeline.append(busy / (width * threads))
        return timeline

    # -- rendering ------------------------------------------------------------

    def gantt(self, width: int = 80) -> str:
        """ASCII Gantt chart: one row per thread, one glyph per operation.

        ``·`` marks idle time; the legend maps glyphs to operations.
        """
        if not self.events:
            raise ReproError("empty trace")
        start, end = self.span
        scale = (end - start) / width if end > start else 1.0
        glyph_of = {name: _GLYPHS[i % len(_GLYPHS)]
                    for i, name in enumerate(self.operations())}
        lines = [f"virtual time {start:.3f}s .. {end:.3f}s "
                 f"({scale:.4f}s per column)"]
        for thread_id in self.thread_ids():
            row = ["·"] * width
            for event in self.events_of(thread_id):
                lo = int((event.start - start) / scale) if scale else 0
                hi = int((event.end - start) / scale) if scale else 0
                lo = min(lo, width - 1)
                hi = min(max(hi, lo + 1), width)
                glyph = glyph_of[event.operation]
                if event.kind == "finalize":
                    glyph = glyph.upper()
                for column in range(lo, hi):
                    row[column] = glyph
            lines.append(f"t{thread_id:>3} |{''.join(row)}|")
        legend = ", ".join(f"{glyph_of[name]}={name}"
                           for name in self.operations())
        lines.append(f"legend: {legend} (uppercase = finalize), · = idle")
        return "\n".join(lines)
