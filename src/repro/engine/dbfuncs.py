"""Executable operator bodies (the ``DBFunc`` of Figure 4).

Each class pairs an operator spec with the code that processes one
activation: it performs the *real* relational work on real tuples and
returns both the produced rows and the activation's virtual-time cost
from the calibrated cost model.

Costing note: for the nested-loop algorithm the *cost* charged is the
full outer x inner scan the 1995 prototype would have executed, while
the *matching* itself uses a hash table so the Python reproduction
stays fast.  Results are identical; only wall-clock time differs.
Index-based algorithms execute their actual data structure
(:class:`~repro.storage.indexes.SortedIndex` / hash table).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.lera.activation import Activation
from repro.lera.aggregates import Accumulator
from repro.lera.operators import (
    JOIN_HASH,
    JOIN_NESTED_LOOP,
    JOIN_TEMP_INDEX,
    AggregateSpec,
    IndexScanSpec,
    JoinSpec,
    PipelinedJoinSpec,
    ScanFilterSpec,
    StoreSpec,
    TransmitSpec,
)
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.storage.fragment import Fragment
from repro.storage.indexes import SortedIndex
from repro.storage.tuples import Row


@dataclass
class ExecContext:
    """Per-activation execution context handed to a DBFunc.

    ``owner`` is the executing thread's id, used as the local-cache
    identity for the Allcache model; ``touch`` returns the extra
    virtual time of accessing a data segment and accumulates the total
    in ``penalty`` for the metrics.
    """

    machine: Machine
    owner: int
    penalty: float = 0.0

    def touch(self, segment_key: object, size_bytes: int) -> float:
        extra = self.machine.memory_access(self.owner, segment_key, size_bytes)
        self.penalty += extra
        return extra

    @property
    def tracks_memory(self) -> bool:
        """Whether touches can charge anything on this machine.

        On uniform machines every :meth:`touch` returns 0, so callers
        may skip computing segment keys and footprints entirely.
        """
        return self.machine.directory is not None


@dataclass
class ProcessResult:
    """Outcome of processing one activation.

    Attributes:
        cost: Virtual-time seconds of sequential work (un-dilated).
        emitted: Rows produced, in production order.  The simulator
            routes them to the consumer operation, or collects them as
            query results when the operation is terminal.
    """

    cost: float
    emitted: list[Row] = field(default_factory=list)


def segment_key(fragment: Fragment) -> tuple[str, int]:
    """Cache-directory key of a stored fragment."""
    return (fragment.relation_name, fragment.index)


class DBFunc(ABC):
    """Base class: one executable operator body."""

    def __init__(self, costs: CostModel) -> None:
        self.costs = costs

    @abstractmethod
    def process(self, instance: int, activation: Activation,
                ctx: ExecContext) -> ProcessResult:
        """Execute one activation for *instance* and cost it."""

    def finalize(self, instance: int,
                 ctx: ExecContext) -> ProcessResult | None:
        """Emit end-of-input results for one instance (aggregates).

        Called by the simulator once per instance when the operation's
        input has closed and every queued activation was consumed; the
        last live thread of the pool executes the finalization.  The
        default — for operators with no end-of-input behaviour — is
        ``None``.
        """
        return None

    def segments(self, instance: int) -> list[tuple[tuple[str, int], int]]:
        """(key, bytes) of the data segments instance *instance* reads.

        Used by the executor to pre-place fragments in local caches.
        The default is no stored data.
        """
        return []


class FilterFunc(DBFunc):
    """Triggered scan + filter of one fragment per instance."""

    def __init__(self, spec: ScanFilterSpec, costs: CostModel) -> None:
        super().__init__(costs)
        self.spec = spec

    def process(self, instance: int, activation: Activation,
                ctx: ExecContext) -> ProcessResult:
        if not activation.is_control:
            raise ExecutionError("FilterFunc expects control activations")
        fragment = self.spec.fragments[instance]
        penalty = (ctx.touch(segment_key(fragment), fragment.size_bytes())
                   if ctx.tracks_memory else 0.0)
        predicate = self.spec.predicate.fn
        emitted = [row for row in fragment.rows if predicate(row)]
        cost = (self.costs.trigger_activation
                + fragment.cardinality * self.costs.filter_tuple
                + len(emitted) * self.costs.store_tuple
                + penalty)
        return ProcessResult(cost, emitted)

    def segments(self, instance: int) -> list[tuple[tuple[str, int], int]]:
        fragment = self.spec.fragments[instance]
        return [(segment_key(fragment), fragment.size_bytes())]


class IndexScanFunc(DBFunc):
    """Triggered equality selection through a permanent index."""

    def __init__(self, spec: IndexScanSpec, costs: CostModel) -> None:
        super().__init__(costs)
        self.spec = spec

    def process(self, instance: int, activation: Activation,
                ctx: ExecContext) -> ProcessResult:
        if not activation.is_control:
            raise ExecutionError("IndexScanFunc expects control activations")
        fragment = self.spec.fragments[instance]
        index = self.spec.indexes[instance]
        matches = index.lookup(self.spec.value)
        if ctx.tracks_memory:
            # Only the touched lines are shipped on a probe; approximate
            # by charging the matches' footprint, not the whole fragment.
            from repro.storage.tuples import row_size_bytes
            touched = sum(row_size_bytes(row) for row in matches) or 1
            penalty = ctx.touch(segment_key(fragment), touched)
        else:
            penalty = 0.0
        cost = (self.costs.trigger_activation
                + self.costs.index_probe_cost(max(fragment.cardinality, 1),
                                              len(matches))
                + len(matches) * self.costs.store_tuple
                + penalty)
        return ProcessResult(cost, list(matches))

    def segments(self, instance: int) -> list[tuple[tuple[str, int], int]]:
        fragment = self.spec.fragments[instance]
        return [(segment_key(fragment), fragment.size_bytes())]


class JoinFunc(DBFunc):
    """Triggered join of co-partitioned fragment pairs (IdealJoin)."""

    def __init__(self, spec: JoinSpec, costs: CostModel) -> None:
        super().__init__(costs)
        self.spec = spec
        self._outer_pos = spec.outer_fragments[0].schema.position(spec.outer_key)
        self._inner_pos = spec.inner_fragments[0].schema.position(spec.inner_key)
        # Inner-side lookup tables, cached per instance so that chunked
        # activations (grain > 1) of the same instance share them.  The
        # *cost* charged still follows the configured algorithm.
        self._inner_tables: dict[int, dict[object, list[Row]]] = {}

    def _inner_table(self, instance: int) -> dict[object, list[Row]]:
        table = self._inner_tables.get(instance)
        if table is None:
            table = {}
            position = self._inner_pos
            for row in self.spec.inner_fragments[instance].rows:
                table.setdefault(row[position], []).append(row)
            self._inner_tables[instance] = table
        return table

    def process(self, instance: int, activation: Activation,
                ctx: ExecContext) -> ProcessResult:
        if not activation.is_control:
            raise ExecutionError("JoinFunc expects control activations")
        outer = self.spec.outer_fragments[instance]
        inner = self.spec.inner_fragments[instance]
        if self.spec.grain == 1:
            outer_rows = outer.rows
            slice_cardinality = len(outer_rows)
        else:
            low, high = self.spec.chunk_bounds(instance, activation.chunk)
            outer_rows = outer.rows if (low, high) == (0, len(outer.rows)) \
                else outer.rows[low:high]
            slice_cardinality = high - low
        penalty = (ctx.touch(segment_key(outer), outer.size_bytes())
                   + ctx.touch(segment_key(inner), inner.size_bytes())
                   ) if ctx.tracks_memory else 0.0
        cost = self.costs.trigger_activation + penalty
        emitted: list[Row] = []
        algorithm = self.spec.algorithm
        if algorithm == JOIN_NESTED_LOOP:
            table_get = self._inner_table(instance).get
            emit = emitted.append
            outer_pos = self._outer_pos
            for left in outer_rows:
                for right in table_get(left[outer_pos], ()):
                    emit(left + right)
            cost += self.costs.nested_loop_cost(
                slice_cardinality, len(inner.rows), len(emitted))
        elif algorithm == JOIN_TEMP_INDEX:
            # Each chunk builds its own temp index over its slice and
            # probes it with the whole inner operand — repeated probe
            # work is the genuine price of the finer grain.
            index = SortedIndex(outer_rows, self._outer_pos)
            cost += self.costs.index_build_cost(slice_cardinality)
            inner_pos = self._inner_pos
            for right in inner.rows:
                matches = index.lookup(right[inner_pos])
                for left in matches:
                    emitted.append(left + right)
                cost += self.costs.index_probe_cost(
                    max(slice_cardinality, 1), len(matches))
        elif algorithm == JOIN_HASH:
            table = {}
            outer_pos = self._outer_pos
            for row in outer_rows:
                table.setdefault(row[outer_pos], []).append(row)
            inner_pos = self._inner_pos
            match_count = 0
            for right in inner.rows:
                for left in table.get(right[inner_pos], ()):
                    emitted.append(left + right)
                    match_count += 1
            cost += ((slice_cardinality + inner.cardinality)
                     * self.costs.index_compare
                     + match_count * self.costs.result_tuple)
        else:  # pragma: no cover - spec validation rejects this earlier
            raise ExecutionError(f"unknown join algorithm {algorithm!r}")
        return ProcessResult(cost, emitted)

    def segments(self, instance: int) -> list[tuple[tuple[str, int], int]]:
        outer = self.spec.outer_fragments[instance]
        inner = self.spec.inner_fragments[instance]
        return [(segment_key(outer), outer.size_bytes()),
                (segment_key(inner), inner.size_bytes())]


class TransmitFunc(DBFunc):
    """Triggered redistribution: reads a fragment, emits every tuple.

    The simulator routes each emitted row to the consumer instance via
    the operation's router (hash of the join key modulo the consumer
    degree), so the pipeline carries one data activation per tuple.
    """

    def __init__(self, spec: TransmitSpec, costs: CostModel) -> None:
        super().__init__(costs)
        self.spec = spec

    def process(self, instance: int, activation: Activation,
                ctx: ExecContext) -> ProcessResult:
        if not activation.is_control:
            raise ExecutionError("TransmitFunc expects control activations")
        fragment = self.spec.fragments[instance]
        penalty = (ctx.touch(segment_key(fragment), fragment.size_bytes())
                   if ctx.tracks_memory else 0.0)
        cost = (self.costs.trigger_activation
                + fragment.cardinality * self.costs.transmit_tuple
                + penalty)
        return ProcessResult(cost, list(fragment.rows))

    def segments(self, instance: int) -> list[tuple[tuple[str, int], int]]:
        fragment = self.spec.fragments[instance]
        return [(segment_key(fragment), fragment.size_bytes())]


class PipelinedJoinFunc(DBFunc):
    """Pipelined join: one incoming tuple probes the stored fragment.

    With the temp-index (or hash) algorithm the per-instance lookup
    structure is built lazily on the instance's first activation and
    its build cost charged there; nested loop charges a full fragment
    scan per probe, which is exactly why AssocJoin's pipelined work
    shrinks as the degree of partitioning grows.
    """

    def __init__(self, spec: PipelinedJoinSpec, costs: CostModel) -> None:
        super().__init__(costs)
        self.spec = spec
        self._stored_pos = spec.stored_key_position
        self._stream_pos = spec.stream_key_position
        # Footprints come from Fragment.size_bytes(), memoized at the
        # fragment, so plans touching few instances pay nothing here —
        # eagerly sizing every stored fragment used to dominate this
        # constructor at high degrees of partitioning.
        # Per-instance lazily built lookup structures.  The dict form is
        # used for matching in every algorithm; the SortedIndex is also
        # really built for temp_index so the structure is exercised.
        self._tables: dict[int, dict[object, list[Row]]] = {}
        self._indexes: dict[int, SortedIndex] = {}

    def _lookup_table(self, instance: int) -> dict[object, list[Row]]:
        table = self._tables.get(instance)
        if table is None:
            table = {}
            pos = self._stored_pos
            for row in self.spec.stored_fragments[instance].rows:
                table.setdefault(row[pos], []).append(row)
            self._tables[instance] = table
        return table

    def process(self, instance: int, activation: Activation,
                ctx: ExecContext) -> ProcessResult:
        if not activation.is_data or activation.row is None:
            raise ExecutionError("PipelinedJoinFunc expects data activations")
        stored = self.spec.stored_fragments[instance]
        penalty = (ctx.touch(segment_key(stored), stored.size_bytes())
                   if ctx.tracks_memory else 0.0)
        row = activation.row
        key = row[self._stream_pos]
        cost = self.costs.pipelined_activation + penalty
        algorithm = self.spec.algorithm
        if algorithm == JOIN_NESTED_LOOP:
            matches = self._lookup_table(instance).get(key, ())
            cost += (stored.cardinality * self.costs.tuple_pair
                     + len(matches) * self.costs.result_tuple)
        elif algorithm == JOIN_TEMP_INDEX:
            index = self._indexes.get(instance)
            if index is None:
                index = SortedIndex(stored.rows, self._stored_pos)
                self._indexes[instance] = index
                cost += self.costs.index_build_cost(stored.cardinality)
            matches = index.lookup(key)
            cost += self.costs.index_probe_cost(max(stored.cardinality, 1),
                                                len(matches))
        elif algorithm == JOIN_HASH:
            first_use = instance not in self._tables
            matches = self._lookup_table(instance).get(key, ())
            if first_use:
                cost += stored.cardinality * self.costs.index_compare
            cost += (self.costs.index_compare
                     + len(matches) * self.costs.result_tuple)
        else:  # pragma: no cover - spec validation rejects this earlier
            raise ExecutionError(f"unknown join algorithm {algorithm!r}")
        emitted = [row + match for match in matches]
        return ProcessResult(cost, emitted)

    def segments(self, instance: int) -> list[tuple[tuple[str, int], int]]:
        stored = self.spec.stored_fragments[instance]
        return [(segment_key(stored), stored.size_bytes())]


class AggregateFunc(DBFunc):
    """Pipelined grouped aggregation.

    Each data activation folds one tuple into the target group's
    accumulators; :meth:`finalize` emits one result row per group when
    the input closes.
    """

    def __init__(self, spec: AggregateSpec, costs: CostModel) -> None:
        super().__init__(costs)
        self.spec = spec
        self._group_pos = spec.group_position
        self._value_positions = spec.value_positions()
        self._functions = [expr.function for expr in spec.aggregates]
        self._states: dict[int, dict[object, list[Accumulator]]] = {}

    def process(self, instance: int, activation: Activation,
                ctx: ExecContext) -> ProcessResult:
        if not activation.is_data or activation.row is None:
            raise ExecutionError("AggregateFunc expects data activations")
        row = activation.row
        state = self._states.setdefault(instance, {})
        group = None if self._group_pos is None else row[self._group_pos]
        accumulators = state.get(group)
        if accumulators is None:
            accumulators = [Accumulator(fn) for fn in self._functions]
            state[group] = accumulators
        for accumulator, position in zip(accumulators, self._value_positions):
            accumulator.add(1 if position is None else row[position])
        cost = (self.costs.pipelined_activation
                + len(accumulators) * self.costs.aggregate_tuple)
        return ProcessResult(cost)

    def finalize(self, instance: int,
                 ctx: ExecContext) -> ProcessResult | None:
        state = self._states.get(instance)
        if state is None:
            if self._group_pos is not None or instance != 0:
                return None
            # Global aggregate over an empty input still yields one row.
            state = {None: [Accumulator(fn) for fn in self._functions]}
        emitted: list[Row] = []
        for group in sorted(state, key=repr):
            values = tuple(acc.result() for acc in state[group])
            emitted.append(values if self._group_pos is None
                           else (group,) + values)
        cost = len(emitted) * (self.costs.store_tuple
                               + len(self._functions)
                               * self.costs.aggregate_tuple)
        return ProcessResult(cost, emitted)


class StoreFunc(DBFunc):
    """Pipelined materialization into hash-partitioned fragments.

    The run-time half of multi-chain plans: each activation's tuple is
    appended to the instance's target fragment, which a later chain
    reads as a statically partitioned operand.
    """

    def __init__(self, spec: StoreSpec, costs: CostModel) -> None:
        super().__init__(costs)
        self.spec = spec

    def process(self, instance: int, activation: Activation,
                ctx: ExecContext) -> ProcessResult:
        if not activation.is_data or activation.row is None:
            raise ExecutionError("StoreFunc expects data activations")
        self.spec.target_fragments[instance].append(activation.row)
        cost = self.costs.pipelined_activation + self.costs.store_tuple
        return ProcessResult(cost)


def make_dbfunc(spec, costs: CostModel) -> DBFunc:
    """Instantiate the executable body for an operator spec."""
    if isinstance(spec, ScanFilterSpec):
        return FilterFunc(spec, costs)
    if isinstance(spec, IndexScanSpec):
        return IndexScanFunc(spec, costs)
    if isinstance(spec, JoinSpec):
        return JoinFunc(spec, costs)
    if isinstance(spec, TransmitSpec):
        return TransmitFunc(spec, costs)
    if isinstance(spec, PipelinedJoinSpec):
        return PipelinedJoinFunc(spec, costs)
    if isinstance(spec, AggregateSpec):
        return AggregateFunc(spec, costs)
    if isinstance(spec, StoreSpec):
        return StoreFunc(spec, costs)
    raise ExecutionError(f"no DBFunc for spec type {type(spec).__name__}")
