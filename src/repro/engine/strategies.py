"""Consumption strategies.

"For each operation, we must decide on the consumption strategy.
Currently, DBS3 supports two strategies: Random and LPT.  For all
strategies, main queues are always considered first."  (Section 3,
step 4.)

The strategy only picks *which* non-empty candidate queue a thread
serves next; the main-before-secondary discipline is enforced by the
simulator, which builds the candidate list.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.engine.queues import ActivationQueue
from repro.errors import ExecutionError

RANDOM = "random"
LPT = "lpt"
ROUND_ROBIN = "round_robin"
STRATEGIES = (RANDOM, LPT, ROUND_ROBIN)


class ConsumptionStrategy(ABC):
    """Chooses one queue among the candidates holding ready activations."""

    name: str = "abstract"

    @abstractmethod
    def choose(self, rng: random.Random,
               candidates: list[ActivationQueue]) -> ActivationQueue:
        """Pick a queue; *candidates* is non-empty."""


class RandomStrategy(ConsumptionStrategy):
    """The default: uniformly random among the non-empty queues.

    "Each thread randomly chooses one queue among the non-empty ones,
    associated with the operation."
    """

    name = RANDOM

    def choose(self, rng: random.Random,
               candidates: list[ActivationQueue]) -> ActivationQueue:
        if len(candidates) == 1:
            return candidates[0]
        return candidates[rng.randrange(len(candidates))]


class LPTStrategy(ConsumptionStrategy):
    """Longest Processing Time first [Graham69].

    "Each thread chooses the activation queue which contains the most
    expensive activations."  DBS3 does not estimate per-activation
    times at run time; queues are ranked by static fragment-size
    information captured in ``cost_estimate``.
    """

    name = LPT

    def choose(self, rng: random.Random,
               candidates: list[ActivationQueue]) -> ActivationQueue:
        return max(candidates, key=lambda q: (q.cost_estimate, -q.instance))


class RoundRobinStrategy(ConsumptionStrategy):
    """Deterministic rotation over candidates (an extra strategy slot;
    the paper notes "other strategies can also be added")."""

    name = ROUND_ROBIN

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, rng: random.Random,
               candidates: list[ActivationQueue]) -> ActivationQueue:
        choice = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return choice


def make_strategy(name: str) -> ConsumptionStrategy:
    """Instantiate a strategy by name (one instance per operation)."""
    if name == RANDOM:
        return RandomStrategy()
    if name == LPT:
        return LPTStrategy()
    if name == ROUND_ROBIN:
        return RoundRobinStrategy()
    raise ExecutionError(f"unknown consumption strategy {name!r}; "
                         f"expected one of {STRATEGIES}")
