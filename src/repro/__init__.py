"""Reproduction of "Adaptive Parallel Query Execution in DBS3" (EDBT 1996).

DBS3 is a shared-memory parallel database system whose execution model
combines static data partitioning with dynamic processor allocation.
This library reimplements the whole system — Lera-par dataflow plans,
the activation-queue engine with Random/LPT consumption, the four-step
adaptive scheduler, the KSR1 Allcache machine model, the Wisconsin/Zipf
workloads — on top of a deterministic virtual-time simulator, plus the
harnesses regenerating every figure of the paper's evaluation.

Quick start::

    from repro import DBS3, generate_wisconsin

    db = DBS3(processors=72)
    db.create_table(generate_wisconsin("A", 100_000), "unique1", degree=200)
    db.create_table(generate_wisconsin("B", 10_000), "unique1", degree=200)
    result = db.query("SELECT * FROM A JOIN B ON A.unique1 = B.unique1",
                      threads=10)
    print(result.cardinality, result.response_time)

Several queries can share the machine through a session — the
workload layer admits them into one simulation, splits the threads
across them by complexity, and re-grants threads as queries finish::

    session = db.session()
    a = session.submit("SELECT * FROM A JOIN B ON A.unique1 = B.unique1")
    b = session.submit("SELECT * FROM A WHERE unique2 < 100", at=0.5)
    print(a.result().response_time, b.result().response_time)
    print(session.result.makespan)

Everything above is the blessed import surface; reaching into
submodules is possible but not covered by the compatibility notes in
the docs.
"""

from repro.analysis import OperatorProfile, nmax, skew_overhead_bound
from repro.core import DBS3, QueryResult
from repro.engine import (
    ExecutionOptions,
    Executor,
    ObservabilityOptions,
    OperationSchedule,
    QueryExecution,
    QuerySchedule,
)
from repro.errors import (
    AdmissionError,
    CatalogError,
    CompilationError,
    ExecutionError,
    ExecutionFaultError,
    FaultError,
    MachineError,
    PartitioningError,
    PlanError,
    QueryCancelledError,
    QueryRejectedError,
    QueryShedError,
    QueryTimeoutError,
    ReproError,
    SchedulerError,
    SchemaError,
    WorkloadError,
)
from repro.faults import (
    ActivationFaults,
    DiskFault,
    FaultPlan,
    MemoryPressure,
    SlowdownWindow,
    StallWindow,
)
from repro.lera import (
    AggregateExpr,
    aggregate_plan,
    assoc_join_plan,
    attribute_predicate,
    filter_join_plan,
    ideal_join_plan,
    selection_plan,
    two_phase_join_plan,
)
from repro.machine import CostModel, Machine
from repro.obs import MetricsRegistry, QuerySpan, WorkloadReport
from repro.scheduler import AdaptiveScheduler, StaticScheduler
from repro.serve import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    ServingPolicy,
)
from repro.storage import (
    Catalog,
    Fragment,
    PartitioningSpec,
    Relation,
    Schema,
    generate_wisconsin,
    zipf_cardinalities,
)
from repro.workload import (
    QueryHandle,
    QuerySubmission,
    SchedulingPolicy,
    Session,
    WorkloadExecutor,
    WorkloadOptions,
    WorkloadResult,
)

__version__ = "1.0.0"

__all__ = [
    "ActivationFaults",
    "AdaptiveScheduler",
    "AdmissionError",
    "AggregateExpr",
    "Catalog",
    "CatalogError",
    "CompilationError",
    "CostModel",
    "DBS3",
    "DiskFault",
    "DiurnalArrivals",
    "ExecutionError",
    "ExecutionFaultError",
    "ExecutionOptions",
    "Executor",
    "FaultError",
    "FaultPlan",
    "Fragment",
    "Machine",
    "MemoryPressure",
    "MachineError",
    "MetricsRegistry",
    "MMPPArrivals",
    "ObservabilityOptions",
    "OperationSchedule",
    "OperatorProfile",
    "PartitioningError",
    "PartitioningSpec",
    "PlanError",
    "PoissonArrivals",
    "QueryCancelledError",
    "QueryExecution",
    "QueryHandle",
    "QueryRejectedError",
    "QueryResult",
    "QuerySchedule",
    "QueryShedError",
    "QuerySpan",
    "QuerySubmission",
    "QueryTimeoutError",
    "Relation",
    "ServingPolicy",
    "SlowdownWindow",
    "StallWindow",
    "ReproError",
    "SchedulerError",
    "SchedulingPolicy",
    "Schema",
    "SchemaError",
    "Session",
    "StaticScheduler",
    "WorkloadError",
    "WorkloadExecutor",
    "WorkloadOptions",
    "WorkloadReport",
    "WorkloadResult",
    "aggregate_plan",
    "assoc_join_plan",
    "attribute_predicate",
    "filter_join_plan",
    "generate_wisconsin",
    "ideal_join_plan",
    "nmax",
    "selection_plan",
    "skew_overhead_bound",
    "two_phase_join_plan",
    "zipf_cardinalities",
    "__version__",
]
