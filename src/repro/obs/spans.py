"""Per-query spans: one query's lifecycle reconstructed from the bus.

A :class:`QuerySpan` is the workload-level twin of the activation
trace: where :class:`~repro.engine.trace.ExecutionTrace` records what
every *thread* did, a span records what one *query* went through —
submit → admit → grant(s) → wave 0..k → finish (or cancelled /
timed_out / failed), with fold-host/subscriber links when shared-work
execution folded part of its plan onto another query.

Spans are **assembled, not instrumented**: :func:`assemble_spans`
replays the workload bus's existing ``query.*`` events (and each
query's own ``wave.start``/``wave.end`` events when per-query
observability was on) after the run.  The engine gained no new hook
for this — if an event stream is enough to rebuild the lifecycle,
it is enough evidence that the stream itself is complete, which is
exactly what :func:`verify_spans` audits:

* every query has exactly one terminal event (a ``query.finish``, or
  a pre-admission withdrawal ``query.cancel``);
* span timestamps are ordered and nested inside the simulation
  bounds (submit <= admit <= waves <= finish <= makespan; a
  cancelled or timed-out query's waves may outlive its termination
  stamp — threads drain cooperatively past the cancel instant);
* the span's terminal status agrees with the
  :class:`~repro.engine.metrics.QueryExecution` status and its
  latency with ``response_time``;
* fold links are consistent both ways (a subscriber's host exists,
  was admitted, and lists the subscriber back).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.obs.bus import (
    QUERY_ABORT,
    QUERY_ADMIT,
    QUERY_CANCEL,
    QUERY_FINISH,
    QUERY_GRANT,
    QUERY_REJECT,
    QUERY_SUBMIT,
    WAVE_END,
    WAVE_START,
)

#: Terminal span statuses (mirror the ``QueryExecution`` statuses;
#: string literals because :mod:`repro.engine.metrics` imports the obs
#: layer, not the other way around).  ``rejected`` / ``shed`` terminate
#: a span pre-admission — the serving layer's ``query.reject`` event is
#: their terminal event, the way a pre-admission withdrawal's
#: ``query.cancel`` is for ``cancelled``.
SPAN_DONE = "done"
SPAN_CANCELLED = "cancelled"
SPAN_TIMED_OUT = "timed_out"
SPAN_FAILED = "failed"
SPAN_REJECTED = "rejected"
SPAN_SHED = "shed"
SPAN_STATUSES = (SPAN_DONE, SPAN_CANCELLED, SPAN_TIMED_OUT, SPAN_FAILED,
                 SPAN_REJECTED, SPAN_SHED)

#: Float-comparison slack for containment checks.
_EPS = 1e-9


@dataclass(frozen=True)
class GrantRecord:
    """One ``query.grant`` event: a (re)granted thread budget."""

    t: float
    threads: int
    reason: str                  # admission / regrant / shrink / helpers
    pool: str | None = None      # helpers joined this pool (reason=helpers)


@dataclass
class WaveSpan:
    """One wave of a query's schedule, as executed."""

    index: int
    start: float
    end: float | None            # None: cut short (cancel/abort mid-wave)
    operations: tuple[str, ...]  # own (private) operations of the wave
    shared: tuple[str, ...]      # shared operators it rode on, if any
    threads: int


@dataclass
class QuerySpan:
    """One query's reconstructed lifecycle."""

    tag: str
    submitted_at: float
    demand: int = 0
    footprint: int = 0
    admitted_at: float | None = None
    finished_at: float | None = None
    status: str | None = None
    grants: list[GrantRecord] = field(default_factory=list)
    waves: list[WaveSpan] = field(default_factory=list)
    cancel_requested_at: float | None = None
    cancel_reason: str | None = None
    #: Why the serving layer rejected/shed this query pre-admission
    #: (``query.reject`` payload), ``None`` for queries that ran.
    reject_reason: str | None = None
    abort_error: str | None = None
    failed_operation: str | None = None
    #: Fold links: own node name -> tag of the hosting query.
    folds: dict[str, str] = field(default_factory=dict)
    #: Tags of queries that folded onto operators this query hosts.
    subscribers: list[str] = field(default_factory=list)
    #: How many terminal bus events this query produced (audited == 1).
    terminal_events: int = 0

    def __repr__(self) -> str:
        return (f"QuerySpan({self.tag!r}, status={self.status!r}, "
                f"waves={len(self.waves)}, grants={len(self.grants)})")

    @property
    def admitted(self) -> bool:
        return self.admitted_at is not None

    @property
    def admission_wait(self) -> float | None:
        """Virtual time spent in the admission queue (None: withdrawn
        before admission)."""
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.submitted_at

    @property
    def latency(self) -> float | None:
        """End-to-end virtual latency from submission (None: the run
        somehow never terminated this query — verify_spans flags it)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def folded(self) -> bool:
        return bool(self.folds)

    def to_json(self) -> dict:
        """Plain-dict form (what the schema-3 JSONL exporter writes)."""
        return {
            "tag": self.tag,
            "submitted_at": self.submitted_at,
            "demand": self.demand,
            "footprint": self.footprint,
            "admitted_at": self.admitted_at,
            "finished_at": self.finished_at,
            "status": self.status,
            "grants": [{"t": g.t, "threads": g.threads, "reason": g.reason,
                        **({"pool": g.pool} if g.pool is not None else {})}
                       for g in self.grants],
            "waves": [{"index": w.index, "start": w.start, "end": w.end,
                       "operations": list(w.operations),
                       "shared": list(w.shared), "threads": w.threads}
                      for w in self.waves],
            "cancel_requested_at": self.cancel_requested_at,
            "cancel_reason": self.cancel_reason,
            "reject_reason": self.reject_reason,
            "abort_error": self.abort_error,
            "failed_operation": self.failed_operation,
            "folds": dict(self.folds),
            "subscribers": list(self.subscribers),
        }


class SpanSet:
    """All spans of one workload run, keyed by query tag."""

    __slots__ = ("_spans", "order")

    def __init__(self, spans: dict[str, QuerySpan],
                 order: tuple[str, ...]) -> None:
        self._spans = spans
        self.order = order

    def __repr__(self) -> str:
        return f"SpanSet(queries={len(self._spans)})"

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self):
        return iter(self._spans[tag] for tag in self.order)

    def __contains__(self, tag: str) -> bool:
        return tag in self._spans

    def of(self, tag: str) -> QuerySpan:
        try:
            return self._spans[tag]
        except KeyError:
            raise ReproError(f"no span for query {tag!r}") from None

    def latencies(self, status: str | None = None) -> list[float]:
        """End-to-end virtual latencies in submission order, optionally
        restricted to one terminal status."""
        return [span.latency for span in self
                if span.latency is not None
                and (status is None or span.status == status)]

    def status_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for span in self:
            key = span.status or "unterminated"
            counts[key] = counts.get(key, 0) + 1
        return counts


def assemble_spans(bus, executions: dict | None = None) -> SpanSet:
    """Rebuild every query's span from the workload event stream.

    *bus* is the workload-level :class:`~repro.obs.bus.EventBus`
    (``query.*`` events tagged with query names via ``operation``);
    *executions* optionally maps tags to
    :class:`~repro.engine.metrics.QueryExecution` so wave spans can be
    filled in from each query's own bus (absent when per-query
    observability was off — spans then simply carry no waves).
    """
    query_kinds = {QUERY_SUBMIT, QUERY_ADMIT, QUERY_GRANT, QUERY_CANCEL,
                   QUERY_ABORT, QUERY_FINISH, QUERY_REJECT}
    spans: dict[str, QuerySpan] = {}
    order: list[str] = []
    for event in bus.events:
        if event.kind not in query_kinds:
            # The workload bus also carries machine-level events
            # (e.g. ``fault.memory``); spans only read lifecycles.
            continue
        tag = event.operation
        data = event.data or {}
        if event.kind == QUERY_SUBMIT:
            if tag in spans:
                raise ReproError(f"duplicate query.submit for {tag!r}")
            spans[tag] = QuerySpan(
                tag=tag, submitted_at=event.t,
                demand=data.get("demand", 0),
                footprint=data.get("footprint", 0))
            order.append(tag)
            continue
        span = spans.get(tag)
        if span is None:
            raise ReproError(
                f"{event.kind} for {tag!r} before its query.submit")
        if event.kind == QUERY_ADMIT:
            span.admitted_at = event.t
            span.folds = dict(data.get("folds", {}))
        elif event.kind == QUERY_GRANT:
            span.grants.append(GrantRecord(
                t=event.t, threads=data.get("threads", 0),
                reason=data.get("reason", "?"), pool=data.get("pool")))
        elif event.kind == QUERY_CANCEL:
            span.cancel_requested_at = event.t
            span.cancel_reason = data.get("reason")
            if not data.get("admitted", True):
                # Withdrawn from the queue: this IS the terminal event
                # (no query.finish follows a query that never ran).
                span.finished_at = event.t
                span.status = (SPAN_TIMED_OUT
                               if span.cancel_reason == "timeout"
                               else SPAN_CANCELLED)
                span.terminal_events += 1
        elif event.kind == QUERY_REJECT:
            # Pre-admission rejection or shed: this IS the terminal
            # event (the query never ran, no query.finish follows).
            span.finished_at = event.t
            span.status = data.get("status", SPAN_REJECTED)
            span.reject_reason = data.get("reason")
            span.terminal_events += 1
        elif event.kind == QUERY_ABORT:
            span.abort_error = data.get("error")
            span.failed_operation = data.get("failed_operation")
            if span.cancel_requested_at is None:
                span.cancel_requested_at = event.t
        elif event.kind == QUERY_FINISH:
            span.finished_at = event.t
            span.status = data.get("status", SPAN_DONE)
            span.terminal_events += 1
    # Fold links point subscriber -> host; mirror them host -> subscriber.
    for span in spans.values():
        for host_tag in dict.fromkeys(span.folds.values()):
            host = spans.get(host_tag)
            if host is not None and span.tag not in host.subscribers:
                host.subscribers.append(span.tag)
    if executions:
        for tag, execution in executions.items():
            span = spans.get(tag)
            query_bus = getattr(execution, "obs", None)
            if span is None or query_bus is None:
                continue
            span.waves = _assemble_waves(query_bus)
    return SpanSet(spans, tuple(order))


def _assemble_waves(query_bus) -> list[WaveSpan]:
    waves: dict[int, WaveSpan] = {}
    for event in query_bus.events:
        data = event.data or {}
        if event.kind == WAVE_START:
            index = data.get("wave", len(waves))
            waves[index] = WaveSpan(
                index=index, start=event.t, end=None,
                operations=tuple(data.get("operations", ())),
                shared=tuple(data.get("shared", ())),
                threads=data.get("threads", 0))
        elif event.kind == WAVE_END:
            wave = waves.get(data.get("wave", -1))
            if wave is not None:
                wave.end = event.t
    return [waves[index] for index in sorted(waves)]


def verify_spans(spans: SpanSet, executions: dict | None = None,
                 makespan: float | None = None) -> list[str]:
    """Self-audit the reconstructed spans; returns mismatch strings.

    The workload-level counterpart of
    :func:`repro.obs.export.verify_against_metrics`: the span model
    must agree with the independently-computed
    :class:`~repro.engine.metrics.QueryExecution` bookkeeping.  An
    empty list means the event stream was complete and consistent.
    """
    problems: list[str] = []
    for span in spans:
        tag = span.tag
        if span.terminal_events != 1:
            problems.append(
                f"{tag}: {span.terminal_events} terminal events "
                f"(expected exactly 1)")
        if span.status not in SPAN_STATUSES:
            problems.append(f"{tag}: unterminated span "
                            f"(status {span.status!r})")
            continue
        if span.finished_at is None:
            problems.append(f"{tag}: terminal status {span.status!r} "
                            f"without a finish instant")
            continue
        if span.admitted_at is not None:
            if span.admitted_at + _EPS < span.submitted_at:
                problems.append(
                    f"{tag}: admitted at {span.admitted_at} before "
                    f"submission at {span.submitted_at}")
            if span.finished_at + _EPS < span.admitted_at:
                problems.append(
                    f"{tag}: finished at {span.finished_at} before "
                    f"admission at {span.admitted_at}")
        elif span.status == SPAN_DONE:
            problems.append(f"{tag}: done without ever being admitted")
        if makespan is not None and span.finished_at > makespan + _EPS:
            problems.append(
                f"{tag}: finished at {span.finished_at} past the "
                f"makespan {makespan}")
        for grant in span.grants:
            if not (span.submitted_at - _EPS <= grant.t
                    <= span.finished_at + _EPS):
                problems.append(
                    f"{tag}: grant at {grant.t} outside the span "
                    f"[{span.submitted_at}, {span.finished_at}]")
        previous_end = None
        for wave in span.waves:
            end = wave.end if wave.end is not None else wave.start
            if end + _EPS < wave.start:
                problems.append(
                    f"{tag}: wave {wave.index} runs backwards "
                    f"({wave.start} -> {wave.end})")
            # Full containment only holds for completed queries: a
            # cancelled / timed-out / failed query is *stamped* at its
            # termination instant, while its scheduled wave (startup
            # included) and cooperatively-draining threads may run past
            # that stamp.
            if (span.admitted_at is None
                    or wave.start + _EPS < span.admitted_at
                    or (span.status == SPAN_DONE
                        and end > span.finished_at + _EPS)):
                problems.append(
                    f"{tag}: wave {wave.index} "
                    f"[{wave.start}, {end}] not nested in the "
                    f"query span [{span.admitted_at}, {span.finished_at}]")
            if previous_end is not None and wave.start + _EPS < previous_end:
                problems.append(
                    f"{tag}: wave {wave.index} starts at {wave.start} "
                    f"before wave {wave.index - 1} ended at {previous_end}")
            previous_end = end
        # Fold-link consistency, both directions.
        for node, host_tag in span.folds.items():
            if host_tag not in spans:
                problems.append(
                    f"{tag}: folded node {node!r} onto unknown query "
                    f"{host_tag!r}")
                continue
            host = spans.of(host_tag)
            if tag not in host.subscribers:
                problems.append(
                    f"{tag}: host {host_tag!r} does not list it as a "
                    f"subscriber")
            # Admission *processing* order guarantees the host was
            # admitted first, but admission stamps ride the finish
            # stamps of whichever completions freed the capacity and
            # those interleave non-monotonically — so only the
            # structural claim is checkable, not a stamp inequality.
            if host.admitted_at is None or span.admitted_at is None:
                problems.append(
                    f"{tag}: fold link without admission on both ends "
                    f"(host {host_tag!r} admitted at {host.admitted_at}, "
                    f"subscriber at {span.admitted_at})")
    if executions is not None:
        span_tags = {span.tag for span in spans}
        for tag, execution in executions.items():
            if tag not in span_tags:
                problems.append(f"{tag}: execution has no span")
                continue
            span = spans.of(tag)
            if span.status != execution.status:
                problems.append(
                    f"{tag}: span status {span.status!r} != execution "
                    f"status {execution.status!r}")
            latency = span.latency
            if (latency is not None
                    and abs(latency - execution.response_time) > _EPS):
                problems.append(
                    f"{tag}: span latency {latency} != execution "
                    f"response_time {execution.response_time}")
        for span in spans:
            if span.tag not in executions:
                problems.append(f"{span.tag}: span has no execution")
    return problems
