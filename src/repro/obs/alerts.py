"""Structured alerts: what the monitor rules fire.

An :class:`Alert` is one threshold crossing observed at a virtual-time
control point — which rule fired, on what key (a query tag, an
operator, a synthetic series name), how severe, at what virtual
instant, and with the offending value/threshold pair attached so the
record is self-explaining without the run that produced it.

The :class:`AlertBus` is the monitor engine's output channel and owns
the dedup discipline the ISSUE pins down — *one alert per threshold
crossing, resolve on recovery*:

* **Condition alerts** (``fire(..., event=False)``) model a level that
  is either breached or not (memory pressure, SLO burn rate, retry
  storms).  While an ``(rule, key)`` pair is active, repeated fires
  are suppressed; :meth:`AlertBus.resolve` closes the alert when the
  signal recovers, after which a new crossing fires a new alert.
* **Event alerts** (``fire(..., event=True)``) model a discrete
  occurrence that cannot "recover" (a query finished over its SLO, a
  wave ended with a straggler).  They are born resolved and deduped
  forever on ``(rule, key)`` — callers encode the crossing identity in
  the key (e.g. ``"q3/w1/join"``), so each distinct crossing fires
  exactly once no matter how often the rule re-evaluates.

Like the bus and the metrics registry, the alert layer is virtual-time
native: ``fired_at`` / ``resolved_at`` are simulation stamps, monitors
only run at deterministic control points, and therefore the full alert
log is a pure function of (plan, seed, options) — seed-reproducible
and diffable in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Alert severities, mildest first.
SEV_INFO = "info"
SEV_WARNING = "warning"
SEV_CRITICAL = "critical"
SEVERITIES = (SEV_INFO, SEV_WARNING, SEV_CRITICAL)


@dataclass
class Alert:
    """One threshold crossing.

    ``rule`` names the monitor that fired, ``key`` the subject within
    that rule (query tag, operator, or a synthetic series like
    ``"burn"``); together they are the dedup identity.
    """

    rule: str
    key: str
    severity: str
    fired_at: float
    value: float
    threshold: float
    message: str = ""
    resolved_at: float | None = None

    @property
    def active(self) -> bool:
        """Still firing (the condition has not recovered)."""
        return self.resolved_at is None

    def __repr__(self) -> str:
        state = "active" if self.active else f"resolved@{self.resolved_at:g}"
        return (f"Alert({self.rule}/{self.key} {self.severity} "
                f"@{self.fired_at:g} value={self.value:g} "
                f"threshold={self.threshold:g} {state})")

    def to_json(self) -> dict:
        """Plain-dict form (what the schema-4 JSONL exporter writes)."""
        return {
            "rule": self.rule,
            "key": self.key,
            "severity": self.severity,
            "fired_at": self.fired_at,
            "value": self.value,
            "threshold": self.threshold,
            "message": self.message,
            "resolved_at": self.resolved_at,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Alert":
        return cls(rule=data["rule"], key=data["key"],
                   severity=data["severity"], fired_at=data["fired_at"],
                   value=data["value"], threshold=data["threshold"],
                   message=data.get("message", ""),
                   resolved_at=data.get("resolved_at"))


class AlertBus:
    """Ordered alert log with crossing-level dedup.

    Single-use, like the event bus: one AlertBus observes one run.
    Alerts append in evaluation order, which — because monitors run
    only at virtual-time control points — is deterministic per seed.
    """

    __slots__ = ("alerts", "_active", "_seen")

    def __init__(self) -> None:
        self.alerts: list[Alert] = []
        #: (rule, key) -> Alert for condition alerts currently firing.
        self._active: dict[tuple[str, str], Alert] = {}
        #: (rule, key) pairs of event alerts already fired (forever).
        self._seen: set[tuple[str, str]] = set()

    def __repr__(self) -> str:
        return (f"AlertBus(alerts={len(self.alerts)}, "
                f"active={len(self._active)})")

    def __len__(self) -> int:
        return len(self.alerts)

    def __iter__(self):
        return iter(self.alerts)

    def fire(self, rule: str, key: str, severity: str, t: float,
             value: float, threshold: float, message: str = "",
             event: bool = False) -> Alert | None:
        """Record a crossing; returns the new alert or ``None`` when
        deduped (the same crossing already fired)."""
        identity = (rule, key)
        if event:
            if identity in self._seen:
                return None
            self._seen.add(identity)
            alert = Alert(rule, key, severity, t, value, threshold,
                          message, resolved_at=t)
            self.alerts.append(alert)
            return alert
        if identity in self._active:
            return None
        alert = Alert(rule, key, severity, t, value, threshold, message)
        self._active[identity] = alert
        self.alerts.append(alert)
        return alert

    def resolve(self, rule: str, key: str, t: float) -> Alert | None:
        """Close the active ``(rule, key)`` condition alert at virtual
        time *t*; returns it, or ``None`` when nothing was firing."""
        alert = self._active.pop((rule, key), None)
        if alert is not None:
            alert.resolved_at = t
        return alert

    def is_active(self, rule: str, key: str) -> bool:
        return (rule, key) in self._active

    def active(self) -> list[Alert]:
        """Condition alerts still firing, in fire order."""
        return [alert for alert in self.alerts if alert.active]

    def of(self, rule: str) -> list[Alert]:
        """Every alert a rule fired, in fire order."""
        return [alert for alert in self.alerts if alert.rule == rule]

    def severity_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for alert in self.alerts:
            counts[alert.severity] = counts.get(alert.severity, 0) + 1
        return counts

    def add(self, alert: Alert) -> None:
        """Append a pre-built alert (JSONL replay path); re-registers
        dedup state so a replayed bus behaves like the original."""
        self.alerts.append(alert)
        identity = (alert.rule, alert.key)
        if alert.resolved_at == alert.fired_at:
            self._seen.add(identity)
        elif alert.active:
            self._active[identity] = alert

    def summary(self) -> str:
        """One line: ``3 alerts (1 critical, 2 warning; 1 active)``."""
        if not self.alerts:
            return "no alerts"
        counts = self.severity_counts()
        parts = [f"{counts[sev]} {sev}"
                 for sev in reversed(SEVERITIES) if sev in counts]
        line = f"{len(self.alerts)} alerts ({', '.join(parts)}"
        actives = len(self.active())
        if actives:
            line += f"; {actives} active"
        return line + ")"

    def render(self) -> str:
        """Multi-line table of every alert, for CLI / demo output."""
        if not self.alerts:
            return "no alerts"
        lines = [f"{'t':>10}  {'sev':<8}  {'rule':<16}  "
                 f"{'key':<20}  detail"]
        for alert in self.alerts:
            state = ("" if alert.resolved_at is None
                     else ("" if alert.resolved_at == alert.fired_at
                           else f"  [resolved @{alert.resolved_at:.4f}]"))
            detail = (alert.message
                      or f"value {alert.value:g} > {alert.threshold:g}")
            lines.append(f"{alert.fired_at:>10.4f}  {alert.severity:<8}  "
                         f"{alert.rule:<16}  {alert.key:<20}  "
                         f"{detail}{state}")
        return "\n".join(lines)
