"""Scheduler "explain": why the four-step scheduler chose what it chose.

The adaptive scheduler makes four kinds of top-down decisions
(Section 3 of the paper): the query's total thread count, the split
over chains, the split over a chain's operators, and each operator's
consumption strategy.  When a :class:`ScheduleExplanation` is passed
to :meth:`repro.scheduler.adaptive.AdaptiveScheduler.schedule`, every
decision is recorded together with the numeric inputs that drove it —
estimated complexities, skew ratios, thresholds — so a surprising
schedule can be debugged instead of guessed at.

Recording is strictly passive: the scheduler computes the identical
schedule with or without an explanation attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The four decision steps, in top-down order.  The workload layer
#: adds a "step 0" above them: the split of the machine's thread
#: budget across concurrently running queries.
STEP_QUERY_SPLIT = "query_split"         # step 0: threads per running query
STEP_THREAD_COUNT = "thread_count"       # step 1: query degree of parallelism
STEP_CHAIN_SPLIT = "chain_split"         # step 2: threads per chain
STEP_OPERATION_SPLIT = "operation_split" # step 3: threads per operator
STEP_STRATEGY = "strategy"               # step 4: consumption strategy

#: Mid-flight decisions of the adaptive controller (:mod:`repro
#: .adapt`): recorded per wave while the query runs, after the static
#: steps above were already taken at submit time.
STEP_RESPLIT = "resplit"                 # wave grant re-split by blame
STEP_SWITCH = "strategy_switch"          # Random->LPT mid-flight

#: The four per-query steps (what one ``schedule()`` call records).
STEPS = (STEP_THREAD_COUNT, STEP_CHAIN_SPLIT,
         STEP_OPERATION_SPLIT, STEP_STRATEGY)

#: All steps including the workload-level step 0 and the adaptive
#: controller's mid-flight decisions (render order).
ALL_STEPS = (STEP_QUERY_SPLIT,) + STEPS + (STEP_RESPLIT, STEP_SWITCH)


@dataclass(frozen=True)
class Decision:
    """One recorded scheduler decision.

    Attributes:
        step: One of :data:`STEPS`.
        target: What the decision applies to (``"query"``, a chain id
            rendered as ``chain:N``, or an operation name).
        chosen: The decided value (a thread count or strategy name).
        reason: One-line human-readable justification.
        inputs: The numeric inputs the decision was derived from.
    """

    step: str
    target: str
    chosen: object
    reason: str
    inputs: dict[str, object] = field(default_factory=dict)

    def to_json(self) -> dict:
        """JSON-ready record (for the JSONL exporter)."""
        return {"step": self.step, "target": self.target,
                "chosen": self.chosen, "reason": self.reason,
                "inputs": dict(self.inputs)}


@dataclass
class ScheduleExplanation:
    """All decisions of one scheduling run, in the order they were made."""

    decisions: list[Decision] = field(default_factory=list)

    def record(self, step: str, target: str, chosen: object,
               reason: str, **inputs) -> None:
        """Append one decision (called by the scheduler)."""
        self.decisions.append(Decision(step, target, chosen, reason, inputs))

    def __len__(self) -> int:
        return len(self.decisions)

    def for_step(self, step: str) -> list[Decision]:
        """Decisions of one step, in recording order."""
        return [d for d in self.decisions if d.step == step]

    def for_target(self, target: str) -> list[Decision]:
        """Decisions about one target (e.g. an operation name)."""
        return [d for d in self.decisions if d.target == target]

    def to_json(self) -> list[dict]:
        """JSON-ready list of all decisions."""
        return [d.to_json() for d in self.decisions]

    def render(self) -> str:
        """Human-readable report, one block per step."""
        titles = {
            STEP_QUERY_SPLIT: "step 0 — threads per running query",
            STEP_THREAD_COUNT: "step 1 — query thread count",
            STEP_CHAIN_SPLIT: "step 2 — threads per chain",
            STEP_OPERATION_SPLIT: "step 3 — threads per operator",
            STEP_STRATEGY: "step 4 — consumption strategy",
            STEP_RESPLIT: "mid-flight — wave grant re-split",
            STEP_SWITCH: "mid-flight — consumption strategy switch",
        }
        lines = ["schedule explanation:"]
        for step in ALL_STEPS:
            decisions = self.for_step(step)
            if not decisions:
                continue
            lines.append(f"  {titles[step]}")
            for decision in decisions:
                inputs = ", ".join(
                    f"{key}={_fmt(value)}"
                    for key, value in decision.inputs.items())
                lines.append(f"    {decision.target:<14} -> "
                             f"{decision.chosen!s:<8} {decision.reason}"
                             + (f"  [{inputs}]" if inputs else ""))
        if len(lines) == 1:
            lines.append("  (no decisions recorded)")
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
