"""The structured observability event bus.

One :class:`EventBus` instance observes one query execution.  Engine
layers hold an optional reference to it (``None`` when observability
is off) and guard every emission with a single ``is not None`` check,
so the disabled hot path costs one attribute load per site — the
perf-regression harness pins this at under 5 % wall clock.

The bus records three things:

* **events** — discrete, structured records (enqueue batches, dequeue
  batches with a steal flag, capacity blocking, memory penalties,
  operation lifecycle, waves), each stamped with the emitting thread's
  virtual clock;
* **series** — time-series probes (:mod:`repro.obs.probes`) sampled on
  change: per-operation queue depth, ready-set size, active threads,
  cumulative Allcache penalty;
* **counters** — plain scalar tallies with no time axis (ready-index
  notification and stale-drop churn), for quantities too hot to
  timestamp individually.

Counts recorded here deliberately mirror the end-of-run aggregates of
:class:`~repro.engine.metrics.OperationMetrics` (enqueues, dequeue
batches, secondary accesses), so an exported event log can be checked
against the metrics — the round-trip the obs tests and the acceptance
demo verify.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.probes import (
    ACTIVE_THREADS,
    MEMORY_PENALTY,
    Series,
    queue_depth_key,
)

#: Event taxonomy.  ``queue.dequeue`` with ``secondary=True`` is a
#: steal — a thread consuming from a queue outside its main set.
WAVE_START = "wave.start"
WAVE_END = "wave.end"
OP_START = "op.start"
OP_SEED = "op.seed"
OP_FINALIZE = "op.finalize"
OP_FINISH = "op.finish"
ENQUEUE = "queue.enqueue"
DEQUEUE = "queue.dequeue"
BLOCK = "queue.block"
UNBLOCK = "queue.unblock"
THREAD_FINISH = "thread.finish"
MEMORY = "memory.penalty"

#: Workload (multi-query) lifecycle.  These appear on the *workload*
#: bus, which tags every record with the query's name; the per-query
#: buses carry the ordinary event kinds above, exactly as in a
#: single-query run.
QUERY_SUBMIT = "query.submit"    # entered the admission queue
QUERY_ADMIT = "query.admit"      # passed admission, starts executing
QUERY_GRANT = "query.grant"      # (re)granted a thread budget
QUERY_FINISH = "query.finish"    # last operation finished
QUERY_CANCEL = "query.cancel"    # cancelled or timed out (reason in data)
QUERY_ABORT = "query.abort"      # aborted by an exhausted fault retry
QUERY_REJECT = "query.reject"    # rejected/shed pre-admission (terminal)

#: Serving / overload protection (:mod:`repro.serve`).  Workload-bus
#: records of the overload layer's level transitions: backpressure
#: engages when the bounded wait queue saturates, brownout when a
#: monitor alert (SLO burn rate, retry storm) trips the degraded mode.
SERVE_BACKPRESSURE = "serve.backpressure"  # bounded queue hit/left its limit
SERVE_BROWNOUT = "serve.brownout"          # brownout tripped or cleared

#: Fault injection (:mod:`repro.faults`).  Per-operation kinds appear
#: on the query's bus; ``fault.memory`` is machine-level and appears
#: on the workload (or single-query) bus.
FAULT_ACTIVATION = "fault.activation"  # one failed processing attempt
FAULT_DISK = "fault.disk"              # disk latency/error spike active
FAULT_MEMORY = "fault.memory"          # Allcache budget shrank mid-run
FAULT_STALL = "fault.stall"            # a thread froze for a window
FAULT_SLOWDOWN = "fault.slowdown"      # a slowdown window took effect

#: Adaptive scheduling (:mod:`repro.adapt`).  Workload-bus records of
#: every mid-flight decision the controller takes, with before/after
#: payloads so the diagnose CLI can explain exactly what moved.
SCHEDULE_RESPLIT = "schedule.resplit"  # wave grant re-split by blame
SCHEDULE_SWITCH = "schedule.switch"    # Random->LPT strategy switch

EVENT_KINDS = (
    WAVE_START, WAVE_END, OP_START, OP_SEED, OP_FINALIZE, OP_FINISH,
    ENQUEUE, DEQUEUE, BLOCK, UNBLOCK, THREAD_FINISH, MEMORY,
    QUERY_SUBMIT, QUERY_ADMIT, QUERY_GRANT, QUERY_FINISH,
    QUERY_CANCEL, QUERY_ABORT, QUERY_REJECT,
    SERVE_BACKPRESSURE, SERVE_BROWNOUT,
    FAULT_ACTIVATION, FAULT_DISK, FAULT_MEMORY, FAULT_STALL,
    FAULT_SLOWDOWN,
    SCHEDULE_RESPLIT, SCHEDULE_SWITCH,
)

#: Scalar-counter name prefixes (ready-index churn).
READY_NOTIFY_PREFIX = "ready_notify/"
READY_STALE_PREFIX = "ready_stale_drops/"


@dataclass(frozen=True, slots=True)
class Event:
    """One structured observation.

    ``t`` is the emitting thread's virtual clock (or the executor's
    wave clock); ``data`` holds kind-specific payload fields, ``None``
    when the kind carries none.
    """

    kind: str
    t: float
    operation: str | None = None
    thread_id: int | None = None
    data: dict | None = None


class EventBus:
    """Collects events, probe series and scalar counters for one run."""

    __slots__ = ("events", "series", "counters")

    def __init__(self) -> None:
        self.events: list[Event] = []
        self.series: dict[str, Series] = {}
        self.counters: dict[str, float] = {}

    def __repr__(self) -> str:
        return (f"EventBus(events={len(self.events)}, "
                f"series={len(self.series)}, counters={len(self.counters)})")

    # -- recording ----------------------------------------------------------

    def emit(self, kind: str, t: float, operation: str | None = None,
             thread_id: int | None = None, **data) -> None:
        """Append one structured event."""
        self.events.append(Event(kind, t, operation, thread_id,
                                 data if data else None))

    def sample(self, name: str, t: float, value: float) -> None:
        """Record an absolute probe sample."""
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = Series(name)
        series.sample(t, value)

    def add(self, name: str, t: float, delta: float) -> float:
        """Bump a counter by *delta* and sample the new value at *t*."""
        value = self.counters.get(name, 0.0) + delta
        self.counters[name] = value
        self.sample(name, t, value)
        return value

    def count(self, name: str, delta: float = 1.0) -> None:
        """Bump a scalar counter with no time-series sample (hot sites)."""
        self.counters[name] = self.counters.get(name, 0.0) + delta

    # -- queue hooks (called from ActivationQueue, guarded by the caller) ---

    def on_enqueue(self, operation_name: str, t: float) -> None:
        """One activation became pending on *operation_name*."""
        self.add(queue_depth_key(operation_name), t, 1)

    def on_dequeue(self, operation_name: str, t: float, count: int) -> None:
        """*count* activations left *operation_name*'s queues."""
        self.add(queue_depth_key(operation_name), t, -count)

    # -- engine convenience hooks ------------------------------------------

    def sample_active(self, t: float, active: int) -> None:
        """Sample the simulator's currently-runnable thread count."""
        self.sample(ACTIVE_THREADS, t, active)

    def add_memory_penalty(self, t: float, operation: str,
                           thread_id: int, penalty: float) -> None:
        """Record an Allcache remote-access penalty charge."""
        self.emit(MEMORY, t, operation, thread_id, penalty=penalty)
        self.add(MEMORY_PENALTY, t, penalty)

    # -- queries ------------------------------------------------------------

    def events_of(self, kind: str, operation: str | None = None) -> list[Event]:
        """Events of one kind, optionally restricted to one operation."""
        return [e for e in self.events
                if e.kind == kind
                and (operation is None or e.operation == operation)]

    def kind_counts(self) -> dict[str, int]:
        """How many events of each kind were recorded."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def enqueue_total(self, operation: str) -> int:
        """Rows *operation* enqueued downstream (sums event counts);
        matches ``OperationMetrics.enqueues``."""
        return sum(e.data["count"] for e in self.events_of(ENQUEUE, operation))

    def dequeue_batch_total(self, operation: str) -> int:
        """Dequeue batches *operation* fetched; matches
        ``OperationMetrics.dequeue_batches``."""
        return len(self.events_of(DEQUEUE, operation))

    def secondary_access_total(self, operation: str) -> int:
        """Dequeue batches taken from a non-main (stolen) queue;
        matches ``OperationMetrics.secondary_accesses``."""
        return sum(1 for e in self.events_of(DEQUEUE, operation)
                   if e.data["secondary"])
