"""Exporters for observed executions.

Three output formats, all derived from one
:class:`~repro.engine.metrics.QueryExecution` produced with
``ExecutionOptions(observe=True)``:

* :func:`write_jsonl` — the full structured record, one JSON object
  per line: a meta header, every bus event, compacted probe series
  samples, scalar counters, and per-operation metric summaries.  This
  is the machine-readable log; the obs tests re-parse it and check the
  event counts against :class:`~repro.engine.metrics.OperationMetrics`.
* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome
  trace-event JSON (the ``traceEvents`` array format), loadable in
  Perfetto / ``chrome://tracing``: one track per simulated thread
  built from the activation/finalize spans, instant markers for the
  discrete bus events, and one counter track per probe series.
* :func:`metrics_snapshot` — a plain-text report extending
  ``QueryExecution.summary()`` with the observed peaks and counters.

Virtual seconds are exported as microseconds in the Chrome trace (its
native unit), so a 1.5 s virtual execution reads as 1.5 s in Perfetto.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.errors import ReproError
from repro.obs.bus import (
    BLOCK,
    DEQUEUE,
    ENQUEUE,
    MEMORY,
    EventBus,
    Event,
)
from repro.obs.probes import ACTIVE_THREADS, queue_depth_key

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.engine.metrics import QueryExecution

#: Chrome trace ``pid`` of the whole virtual execution.
_PID = 1

#: Virtual seconds -> Chrome trace microseconds.
_US = 1e6


def _require_obs(execution: "QueryExecution") -> EventBus:
    if execution.obs is None:
        raise ReproError(
            "execution was not observed; run with ExecutionOptions("
            "observe=True) to export it")
    return execution.obs


# -- JSONL ------------------------------------------------------------------

def _event_record(event: Event) -> dict:
    record: dict = {"type": "event", "kind": event.kind,
                    "t": event.t}
    if event.operation is not None:
        record["op"] = event.operation
    if event.thread_id is not None:
        record["thread"] = event.thread_id
    if event.data:
        record.update(event.data)
    return record


def jsonl_records(execution: "QueryExecution") -> Iterator[dict]:
    """All JSONL records of one observed execution, in order."""
    bus = _require_obs(execution)
    yield {
        "type": "meta",
        "response_time": execution.response_time,
        "startup_time": execution.startup_time,
        "total_threads": execution.total_threads,
        "dilation": execution.dilation,
        "result_rows": execution.result_cardinality,
    }
    for name, op in execution.operations.items():
        yield {
            "type": "op",
            "name": name,
            "trigger_mode": op.trigger_mode,
            "instances": op.instances,
            "threads": op.threads,
            "strategy": op.strategy,
            "activations": op.activations,
            "enqueues": op.enqueues,
            "dequeue_batches": op.dequeue_batches,
            "secondary_accesses": op.secondary_accesses,
            "polls": op.polls,
            "memory_penalty": op.memory_penalty,
        }
    for event in bus.events:
        yield _event_record(event)
    for name in sorted(bus.series):
        for t, value in bus.series[name].compacted():
            yield {"type": "sample", "name": name, "t": t, "value": value}
    for name in sorted(bus.counters):
        yield {"type": "counter", "name": name, "value": bus.counters[name]}


def write_jsonl(execution: "QueryExecution", path: str | Path) -> int:
    """Write the JSONL event log; returns the number of records."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in jsonl_records(execution):
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


# -- Chrome trace-event JSON -------------------------------------------------

def chrome_trace(execution: "QueryExecution") -> dict:
    """The execution as a Chrome trace-event document (JSON-ready).

    One track per simulated thread (named after the operation its pool
    belongs to) carrying the activation/finalize spans, instant
    markers for every discrete bus event, and one counter track per
    probe series.
    """
    bus = _require_obs(execution)
    trace = execution.trace
    if trace is None:
        raise ReproError("observed execution carries no span trace")
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": "DBS3 virtual-time execution"},
    }]
    op_of_thread: dict[int, str] = {}
    for span in trace.events:
        op_of_thread.setdefault(span.thread_id, span.operation)
    for tid, operation in sorted(op_of_thread.items()):
        events.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
            "args": {"name": f"t{tid} {operation}"},
        })
    for span in trace.events:
        events.append({
            "name": f"{span.operation}:{span.kind}",
            "cat": span.kind, "ph": "X", "pid": _PID,
            "tid": span.thread_id,
            "ts": span.start * _US, "dur": span.duration * _US,
            "args": {"operation": span.operation},
        })
    for event in bus.events:
        args: dict = {"kind": event.kind}
        if event.operation is not None:
            args["operation"] = event.operation
        if event.data:
            args.update(event.data)
        events.append({
            "name": event.kind, "cat": "bus", "ph": "i",
            "pid": _PID, "tid": event.thread_id if event.thread_id
            is not None else 0,
            "ts": event.t * _US,
            "s": "t" if event.thread_id is not None else "p",
            "args": args,
        })
    for name in sorted(bus.series):
        for t, value in bus.series[name].compacted():
            events.append({
                "name": name, "ph": "C", "pid": _PID, "tid": 0,
                "ts": t * _US, "args": {"value": value},
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "virtual_response_s": execution.response_time,
            "total_threads": execution.total_threads,
        },
    }


def write_chrome_trace(execution: "QueryExecution",
                       path: str | Path) -> int:
    """Write the Chrome trace JSON; returns the trace-event count."""
    document = chrome_trace(execution)
    Path(path).write_text(json.dumps(document) + "\n", encoding="utf-8")
    return len(document["traceEvents"])


# -- text snapshot -----------------------------------------------------------

def metrics_snapshot(execution: "QueryExecution") -> str:
    """Plain-text observability report for one observed execution."""
    bus = _require_obs(execution)
    kind_counts = bus.kind_counts()
    lines = [execution.summary(), "", "observed execution:"]
    lines.append(f"  bus events    : {len(bus.events)} "
                 f"({', '.join(f'{kind}={count}' for kind, count in sorted(kind_counts.items()))})")
    active = bus.series.get(ACTIVE_THREADS)
    if active is not None and len(active):
        lines.append(f"  active threads: peak {active.peak:.0f}, "
                     f"final {active.last:.0f}")
    for name, op in execution.operations.items():
        depth = bus.series.get(queue_depth_key(name))
        peak = f"{depth.peak:.0f}" if depth is not None and len(depth) else "-"
        steals = bus.secondary_access_total(name)
        blocks = len(bus.events_of(BLOCK, name))
        lines.append(
            f"  {name:<12} enqueues={op.enqueues:<7} "
            f"batches={op.dequeue_batches:<7} steals={steals:<6} "
            f"blocks={blocks:<5} peak_depth={peak}")
    memory = [e for e in bus.events if e.kind == MEMORY]
    if memory:
        total = sum(e.data["penalty"] for e in memory)
        lines.append(f"  memory        : {len(memory)} penalty events, "
                     f"{total:.4f}s total")
    ready_churn = {name: value for name, value in sorted(bus.counters.items())
                   if name.startswith("ready_")}
    for name, value in ready_churn.items():
        lines.append(f"  {name:<22}: {value:.0f}")
    return "\n".join(lines)


def verify_against_metrics(execution: "QueryExecution") -> list[str]:
    """Cross-check bus counts against the end-of-run metrics.

    Returns a list of mismatch descriptions (empty = consistent):
    enqueues, dequeue batches and secondary accesses recorded on the
    bus must equal the :class:`OperationMetrics` aggregates.  Used by
    the tests and the CLI demo as a self-audit of the instrumentation.
    """
    bus = _require_obs(execution)
    problems = []
    for name, op in execution.operations.items():
        checks = (
            ("enqueues", bus.enqueue_total(name), op.enqueues),
            ("dequeue_batches", bus.dequeue_batch_total(name),
             op.dequeue_batches),
            ("secondary_accesses", bus.secondary_access_total(name),
             op.secondary_accesses),
        )
        for label, observed, metric in checks:
            if observed != metric:
                problems.append(
                    f"{name}: bus {label}={observed} != metrics {metric}")
    return problems
