"""Exporters for observed executions.

Three output formats, all derived from one
:class:`~repro.engine.metrics.QueryExecution` produced with
``ExecutionOptions(observe=True)``:

* :func:`write_jsonl` — the full structured record, one JSON object
  per line: a meta header, every bus event, every span of the
  activation trace, compacted probe series samples, scalar counters,
  and per-operation metric summaries.  This is the machine-readable
  log; the obs tests re-parse it and check the event counts against
  :class:`~repro.engine.metrics.OperationMetrics`, and
  :func:`read_jsonl` round-trips it back into a :class:`LoadedRun`
  that the diagnostics layer (:mod:`repro.diag`) analyses exactly as
  it would the live execution.
* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome
  trace-event JSON (the ``traceEvents`` array format), loadable in
  Perfetto / ``chrome://tracing``: one track per simulated thread
  built from the activation/finalize spans, instant markers for the
  discrete bus events, and one counter track per probe series.
* :func:`metrics_snapshot` — a plain-text report extending
  ``QueryExecution.summary()`` with the observed peaks and counters.

Virtual seconds are exported as microseconds in the Chrome trace (its
native unit), so a 1.5 s virtual execution reads as 1.5 s in Perfetto.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.engine.trace import ExecutionTrace
from repro.errors import ReproError
from repro.obs.bus import (
    BLOCK,
    DEQUEUE,
    ENQUEUE,
    MEMORY,
    EventBus,
    Event,
)
from repro.obs.probes import ACTIVE_THREADS, Series, queue_depth_key

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.engine.metrics import QueryExecution

#: Chrome trace ``pid`` of the whole virtual execution.
_PID = 1

#: Virtual seconds -> Chrome trace microseconds.
_US = 1e6

#: JSONL schema version, recorded in the meta header.  Version 2 added
#: ``span`` records (the activation trace) and the per-operation timing
#: fields (``busy_time``, ``queue_activations``, ...) the diagnostics
#: layer reloads.  Version 3 added workload telemetry: ``qspan``
#: records (one per-query :class:`~repro.obs.spans.QuerySpan`) and
#: ``metric`` records (:meth:`~repro.obs.metrics.MetricsRegistry
#: .snapshot` rows), written by :func:`write_workload_jsonl`.  Version
#: 4 added online observability: ``alert`` records (one per
#: :class:`~repro.obs.alerts.Alert` the monitor rules fired) and a
#: single ``profile`` record (the engine self-profiler's call tree),
#: both present only when the corresponding subsystem ran.  Older
#: logs still parse (they simply carry no workload records).
SCHEMA_VERSION = 4


def _require_obs(execution: "QueryExecution") -> EventBus:
    if execution.obs is None:
        raise ReproError(
            "execution was not observed; run with ExecutionOptions("
            "observe=True) to export it")
    return execution.obs


# -- JSONL ------------------------------------------------------------------

def _event_record(event: Event) -> dict:
    record: dict = {"type": "event", "kind": event.kind,
                    "t": event.t}
    if event.operation is not None:
        record["op"] = event.operation
    if event.thread_id is not None:
        record["thread"] = event.thread_id
    if event.data:
        record.update(event.data)
    return record


def jsonl_records(execution: "QueryExecution") -> Iterator[dict]:
    """All JSONL records of one observed execution, in order."""
    bus = _require_obs(execution)
    yield {
        "type": "meta",
        "schema": SCHEMA_VERSION,
        "status": execution.status,
        "response_time": execution.response_time,
        "startup_time": execution.startup_time,
        "total_threads": execution.total_threads,
        "dilation": execution.dilation,
        "result_rows": execution.result_cardinality,
    }
    for name, op in execution.operations.items():
        yield {
            "type": "op",
            "name": name,
            "trigger_mode": op.trigger_mode,
            "instances": op.instances,
            "threads": op.threads,
            "strategy": op.strategy,
            "started_at": op.started_at,
            "finished_at": op.finished_at,
            "busy_time": op.busy_time,
            "idle_time": op.idle_time,
            "work": op.work,
            "activations": op.activations,
            "queue_activations": list(op.queue_activations),
            "enqueues": op.enqueues,
            "dequeue_batches": op.dequeue_batches,
            "secondary_accesses": op.secondary_accesses,
            "polls": op.polls,
            "memory_penalty": op.memory_penalty,
            "faults_injected": op.faults_injected,
            "fault_retries": op.fault_retries,
            "fault_aborts": op.fault_aborts,
            "discarded": op.discarded,
            "stalled_time": op.stalled_time,
        }
    for event in bus.events:
        yield _event_record(event)
    if execution.trace is not None:
        for span in execution.trace.events:
            yield {"type": "span", "thread": span.thread_id,
                   "op": span.operation, "kind": span.kind,
                   "start": span.start, "end": span.end}
    for name in sorted(bus.series):
        for t, value in bus.series[name].compacted():
            yield {"type": "sample", "name": name, "t": t, "value": value}
    for name in sorted(bus.counters):
        yield {"type": "counter", "name": name, "value": bus.counters[name]}


def write_jsonl(execution: "QueryExecution", path: str | Path) -> int:
    """Write the JSONL event log; returns the number of records."""
    return _write_records(jsonl_records(execution), path)


def _write_records(records: Iterator[dict], path: str | Path) -> int:
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def workload_jsonl_records(result) -> Iterator[dict]:
    """All JSONL records of one observed workload run, in order.

    The workload-level sibling of :func:`jsonl_records`: a meta
    header (``workload: true``), one ``qspan`` record per submitted
    query, one ``metric`` record per registry snapshot row, and the
    raw workload-bus events.  *result* is a telemetry-enabled
    :class:`~repro.workload.engine.WorkloadResult`.
    """
    if result.metrics is None or result.spans is None:
        raise ReproError(
            "workload was not observed; enable WorkloadOptions("
            "observability=ObservabilityOptions(observe=True)) to "
            "export it")
    yield {
        "type": "meta",
        "schema": SCHEMA_VERSION,
        "workload": True,
        "makespan": result.makespan,
        "queries": len(result.spans),
        "statuses": result.spans.status_counts(),
    }
    for span in result.spans:
        yield {"type": "qspan", **span.to_json()}
    for row in result.metrics.snapshot():
        yield {"type": "metric", **row}
    if result.alerts is not None:
        for alert in result.alerts:
            yield {"type": "alert", **alert.to_json()}
    if result.profile is not None:
        yield {"type": "profile", **result.profile.to_json()}
    for event in result.bus.events:
        yield _event_record(event)


def write_workload_jsonl(result, path: str | Path) -> int:
    """Write the workload JSONL log; returns the number of records."""
    return _write_records(workload_jsonl_records(result), path)


#: Keys of an ``event`` record that are :class:`Event` fields; every
#: other key is kind-specific payload and round-trips into ``data``.
_EVENT_FIELD_KEYS = frozenset(("type", "kind", "t", "op", "thread"))


@dataclass
class LoadedRun:
    """One JSONL event log parsed back into live objects.

    The inverse of :func:`write_jsonl`: ``events`` are real
    :class:`~repro.obs.bus.Event` objects, ``trace`` a real
    :class:`~repro.engine.trace.ExecutionTrace`, ``series`` real
    :class:`~repro.obs.probes.Series` (compacted — duplicate-value
    samples were dropped at export).  ``meta`` and ``ops`` stay plain
    dicts, exactly as written.  :mod:`repro.diag` analyses a
    ``LoadedRun`` identically to the live execution it came from.
    """

    meta: dict
    ops: list[dict] = field(default_factory=list)
    events: list[Event] = field(default_factory=list)
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    series: dict[str, Series] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    #: Schema-3 workload records: per-query span dicts and registry
    #: snapshot rows (both exactly as written; empty for per-query
    #: logs and pre-3 schemas).
    qspans: list[dict] = field(default_factory=list)
    metrics: list[dict] = field(default_factory=list)
    #: Schema-4 online-observability records: alert dicts in fire
    #: order, and the profiler call tree (``None`` when the run was
    #: not profiled).  Replay with :meth:`Alert.from_json` /
    #: :meth:`EngineProfiler.from_json`.
    alerts: list[dict] = field(default_factory=list)
    profile: dict | None = None

    @property
    def schema(self) -> int:
        return self.meta.get("schema", 1)

    @property
    def is_workload(self) -> bool:
        """True for a :func:`write_workload_jsonl` log."""
        return bool(self.meta.get("workload"))

    @property
    def makespan(self) -> float:
        return self.meta["makespan"]

    @property
    def status(self) -> str:
        """Terminal status; logs written before the fault layer
        existed carry no status field and default to ``done``."""
        return self.meta.get("status", "done")

    @property
    def response_time(self) -> float:
        return self.meta["response_time"]

    @property
    def startup_time(self) -> float:
        return self.meta["startup_time"]


def _load_event(record: dict) -> Event:
    data = {key: value for key, value in record.items()
            if key not in _EVENT_FIELD_KEYS}
    return Event(record["kind"], record["t"], record.get("op"),
                 record.get("thread"), data if data else None)


def read_jsonl(path: str | Path) -> LoadedRun:
    """Round-trip a :func:`write_jsonl` log back into a :class:`LoadedRun`.

    Raises :class:`ReproError` when the file does not start with a
    meta header or declares a schema newer than this reader.
    """
    run: LoadedRun | None = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if run is None:
                if kind != "meta":
                    raise ReproError(
                        f"{path}: line {line_no} is {kind!r}, expected the "
                        f"meta header — not a JSONL event log?")
                if record.get("schema", 1) > SCHEMA_VERSION:
                    raise ReproError(
                        f"{path}: schema {record['schema']} is newer than "
                        f"this reader (knows up to {SCHEMA_VERSION})")
                run = LoadedRun(meta=record)
            elif kind == "op":
                run.ops.append(record)
            elif kind == "event":
                run.events.append(_load_event(record))
            elif kind == "span":
                run.trace.record(record["thread"], record["op"],
                                 record["kind"], record["start"],
                                 record["end"])
            elif kind == "sample":
                series = run.series.get(record["name"])
                if series is None:
                    series = run.series[record["name"]] = Series(
                        record["name"])
                series.sample(record["t"], record["value"])
            elif kind == "counter":
                run.counters[record["name"]] = record["value"]
            elif kind == "qspan":
                run.qspans.append(record)
            elif kind == "metric":
                run.metrics.append(record)
            elif kind == "alert":
                run.alerts.append(record)
            elif kind == "profile":
                run.profile = record
            else:
                raise ReproError(
                    f"{path}: line {line_no} has unknown record type "
                    f"{kind!r}")
    if run is None:
        raise ReproError(f"{path}: empty event log")
    return run


# -- Chrome trace-event JSON -------------------------------------------------

def chrome_trace(execution: "QueryExecution") -> dict:
    """The execution as a Chrome trace-event document (JSON-ready).

    One track per simulated thread (named after the operation its pool
    belongs to) carrying the activation/finalize spans, instant
    markers for every discrete bus event, and one counter track per
    probe series.
    """
    bus = _require_obs(execution)
    trace = execution.trace
    if trace is None:
        raise ReproError("observed execution carries no span trace")
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": "DBS3 virtual-time execution"},
    }]
    op_of_thread: dict[int, str] = {}
    for span in trace.events:
        op_of_thread.setdefault(span.thread_id, span.operation)
    for tid, operation in sorted(op_of_thread.items()):
        events.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
            "args": {"name": f"t{tid} {operation}"},
        })
    for span in trace.events:
        events.append({
            "name": f"{span.operation}:{span.kind}",
            "cat": span.kind, "ph": "X", "pid": _PID,
            "tid": span.thread_id,
            "ts": span.start * _US, "dur": span.duration * _US,
            "args": {"operation": span.operation},
        })
    for event in bus.events:
        args: dict = {"kind": event.kind}
        if event.operation is not None:
            args["operation"] = event.operation
        if event.data:
            args.update(event.data)
        events.append({
            "name": event.kind, "cat": "bus", "ph": "i",
            "pid": _PID, "tid": event.thread_id if event.thread_id
            is not None else 0,
            "ts": event.t * _US,
            "s": "t" if event.thread_id is not None else "p",
            "args": args,
        })
    for name in sorted(bus.series):
        for t, value in bus.series[name].compacted():
            events.append({
                "name": name, "ph": "C", "pid": _PID, "tid": 0,
                "ts": t * _US, "args": {"value": value},
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "virtual_response_s": execution.response_time,
            "total_threads": execution.total_threads,
        },
    }


def write_chrome_trace(execution: "QueryExecution",
                       path: str | Path) -> int:
    """Write the Chrome trace JSON; returns the trace-event count."""
    document = chrome_trace(execution)
    Path(path).write_text(json.dumps(document) + "\n", encoding="utf-8")
    return len(document["traceEvents"])


# -- text snapshot -----------------------------------------------------------

def metrics_snapshot(execution: "QueryExecution") -> str:
    """Plain-text observability report for one observed execution."""
    bus = _require_obs(execution)
    kind_counts = bus.kind_counts()
    lines = [execution.summary(), "", "observed execution:"]
    lines.append(f"  bus events    : {len(bus.events)} "
                 f"({', '.join(f'{kind}={count}' for kind, count in sorted(kind_counts.items()))})")
    active = bus.series.get(ACTIVE_THREADS)
    if active is not None and len(active):
        lines.append(f"  active threads: peak {active.peak:.0f}, "
                     f"final {active.last:.0f}")
    for name, op in execution.operations.items():
        depth = bus.series.get(queue_depth_key(name))
        peak = f"{depth.peak:.0f}" if depth is not None and len(depth) else "-"
        steals = bus.secondary_access_total(name)
        blocks = len(bus.events_of(BLOCK, name))
        lines.append(
            f"  {name:<12} enqueues={op.enqueues:<7} "
            f"batches={op.dequeue_batches:<7} steals={steals:<6} "
            f"blocks={blocks:<5} peak_depth={peak}")
    memory = [e for e in bus.events if e.kind == MEMORY]
    if memory:
        total = sum(e.data["penalty"] for e in memory)
        lines.append(f"  memory        : {len(memory)} penalty events, "
                     f"{total:.4f}s total")
    ready_churn = {name: value for name, value in sorted(bus.counters.items())
                   if name.startswith("ready_")}
    for name, value in ready_churn.items():
        lines.append(f"  {name:<22}: {value:.0f}")
    return "\n".join(lines)


def verify_against_metrics(execution: "QueryExecution") -> list[str]:
    """Cross-check bus counts against the end-of-run metrics.

    Returns a list of mismatch descriptions (empty = consistent):
    enqueues, dequeue batches and secondary accesses recorded on the
    bus must equal the :class:`OperationMetrics` aggregates.  Used by
    the tests and the CLI demo as a self-audit of the instrumentation.
    """
    bus = _require_obs(execution)
    problems = []
    for name, op in execution.operations.items():
        checks = (
            ("enqueues", bus.enqueue_total(name), op.enqueues),
            ("dequeue_batches", bus.dequeue_batch_total(name),
             op.dequeue_batches),
            ("secondary_accesses", bus.secondary_access_total(name),
             op.secondary_accesses),
        )
        for label, observed, metric in checks:
            if observed != metric:
                problems.append(
                    f"{name}: bus {label}={observed} != metrics {metric}")
    return problems


def verify_workload_jsonl(run: LoadedRun,
                          executions: dict | None = None) -> list[str]:
    """Self-audit a reloaded workload log (empty list = consistent).

    The workload-level counterpart of :func:`verify_against_metrics`:
    the ``qspan`` records, the ``metric`` snapshot rows and the meta
    header were all derived from the same run, so they must agree —
    status counts, finished-query counters, latency-histogram counts
    and percentiles.  Passing the live ``executions`` mapping (tag ->
    :class:`~repro.engine.metrics.QueryExecution`) additionally checks
    every span's terminal status against the engine's bookkeeping.
    """
    from repro.obs.metrics import (
        QUERIES_FINISHED,
        QUERY_LATENCY,
        percentile,
    )

    problems: list[str] = []
    if not run.is_workload:
        return [f"not a workload log (meta: {run.meta})"]

    statuses: dict[str, int] = {}
    for record in run.qspans:
        status = record.get("status") or "unterminated"
        statuses[status] = statuses.get(status, 0) + 1
    if statuses != run.meta.get("statuses"):
        problems.append(
            f"meta statuses {run.meta.get('statuses')} != qspan "
            f"statuses {statuses}")

    finished = {row["labels"].get("status"): row["value"]
                for row in run.metrics
                if row["name"] == QUERIES_FINISHED}
    for status, count in statuses.items():
        if status != "unterminated" and finished.get(status) != count:
            problems.append(
                f"{QUERIES_FINISHED}{{status={status}}} = "
                f"{finished.get(status)} != {count} qspan records")

    latencies: dict[str, list[float]] = {}
    for record in run.qspans:
        status = record.get("status")
        if status is not None and record.get("finished_at") is not None:
            latencies.setdefault(status, []).append(
                record["finished_at"] - record["submitted_at"])
    for row in run.metrics:
        if row["name"] != QUERY_LATENCY:
            continue
        status = row["labels"].get("status")
        values = latencies.get(status, [])
        if row["count"] != len(values):
            problems.append(
                f"{QUERY_LATENCY}{{status={status}}} count "
                f"{row['count']} != {len(values)} qspan latencies")
            continue
        for quantile in ("p50", "p95", "p99"):
            if quantile not in row:
                continue
            expected = percentile(values, float(quantile[1:]))
            if abs(row[quantile] - expected) > 1e-9:
                problems.append(
                    f"{QUERY_LATENCY}{{status={status}}} {quantile} "
                    f"{row[quantile]} != {expected} from qspans")

    if executions is not None:
        by_tag = {record["tag"]: record for record in run.qspans}
        for tag, execution in executions.items():
            record = by_tag.get(tag)
            if record is None:
                problems.append(f"{tag}: execution has no qspan record")
            elif record.get("status") != execution.status:
                problems.append(
                    f"{tag}: qspan status {record.get('status')!r} != "
                    f"execution status {execution.status!r}")
        for tag in by_tag:
            if tag not in executions:
                problems.append(f"{tag}: qspan has no execution")
    return problems
