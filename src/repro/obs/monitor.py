"""Streaming monitor rules evaluated in virtual time.

The in-flight half of the observability stack: where spans and reports
are assembled *after* the run, monitors watch the run *as it happens*
— but "happens" means virtual time, so evaluation is pinned to the
workload engine's deterministic control points rather than a wall
clock:

* ``POINT_ADMISSION`` — a batch of queries was just admitted;
* ``POINT_REGRANT``  — thread budgets were re-granted after a
  completion;
* ``POINT_WAVE``     — one query's wave hit its barrier (per-thread
  finish stamps are fresh);
* ``POINT_FINISH``   — a query reached a terminal status.

At each point the :class:`MonitorEngine` hands every rule a
:class:`MonitorContext` (the instant, the live metrics registry, and
point-specific payload) and the rule fires :class:`~repro.obs.alerts.
Alert` records onto the shared :class:`~repro.obs.alerts.AlertBus`.
Because the payloads are pure functions of simulation state, the fired
alert log is bit-reproducible per seed — the hypothesis suite holds
the engine to exactly that.

Rules are small declarative objects (threshold + severity + an
``evaluate``), deliberately mirroring the paper's own diagnostics: the
straggler rule keys on the Fig 12 signature — a skewed wave shows one
thread finishing long after the mean, and the *blame* (queue wait vs
processing skew) falls out of that thread's idle share, exactly the
distinction Section 5.4 draws between waiting on the queue and
grinding through an oversized bucket.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.alerts import (
    SEV_CRITICAL,
    SEV_INFO,
    SEV_WARNING,
    AlertBus,
)
from repro.obs.metrics import FAULT_RETRIES

#: Control points, in the order a run visits them.
POINT_ADMISSION = "admission"
POINT_REGRANT = "regrant"
POINT_WAVE = "wave"
POINT_FINISH = "finish"
POINTS = (POINT_ADMISSION, POINT_REGRANT, POINT_WAVE, POINT_FINISH)

#: Section 5.4's two straggler diagnoses: a straggling thread that
#: spent most of its life idle was starved by the tuple queues; one
#: that stayed busy ground through an oversized bucket.
BLAME_QUEUE_WAIT = "queue wait"
BLAME_PROCESSING_SKEW = "processing skew"


@dataclass(frozen=True)
class StragglerSignal:
    """One operation's Fig 12 straggler attribution at a wave barrier.

    The shared vocabulary of the :class:`StragglerMonitor` (which
    turns signals into alerts) and the adaptive controller (which
    turns them into resplit / strategy-switch decisions) — both read
    the *same* attribution, so what the diagnosis blames is exactly
    what the controller acts on.
    """

    operation: str
    """The straggling operation's name."""
    spread: float
    """Slowest thread's relative finish over the pool mean."""
    idle_share: float
    """Idle fraction of the straggler thread's lifetime."""
    blame: str
    """:data:`BLAME_QUEUE_WAIT` or :data:`BLAME_PROCESSING_SKEW`."""


def straggler_signals(started_at: float, ops, ratio: float = 2.0,
                      min_threads: int = 2) -> tuple[StragglerSignal, ...]:
    """The Fig 12 attribution, as a pure function of wave-barrier state.

    *ops* is the wave payload the engine assembles at each barrier:
    ``[(name, [(finished_at, busy_time, idle_time), ...]), ...]`` with
    one stamp triple per thread.  For every operation that ran on at
    least *min_threads* threads, the slowest thread's relative finish
    (from *started_at*) is compared against the pool mean; a ratio
    above *ratio* yields a signal whose blame follows the straggler
    thread's idle share.  Deterministic: virtual-time stamps in,
    signals out.
    """
    signals: list[StragglerSignal] = []
    for name, threads in ops:
        if len(threads) < min_threads:
            continue
        relative = [max(finished - started_at, 0.0)
                    for finished, _, _ in threads]
        slowest = max(relative)
        mean = sum(relative) / len(relative)
        if mean <= 0.0 or slowest <= 0.0:
            continue
        spread = slowest / mean
        if spread <= ratio:
            continue
        index = relative.index(slowest)
        _, busy, idle = threads[index]
        lifetime = busy + idle
        idle_share = idle / lifetime if lifetime > 0.0 else 0.0
        blame = (BLAME_QUEUE_WAIT if idle_share > 0.5
                 else BLAME_PROCESSING_SKEW)
        signals.append(StragglerSignal(name, spread, idle_share, blame))
    return tuple(signals)


def pool_idle_shares(ops) -> dict[str, float]:
    """Pooled idle share per operation at a wave barrier.

    Takes the same ``[(name, [(finished_at, busy, idle), ...]), ...]``
    payload as :func:`straggler_signals` and sums busy/idle over each
    pool: a share near 1.0 marks a pool that spent the wave waiting on
    empty queues (the starved consumer of Section 5.4's queue-wait
    picture); a share near 0.0 marks the saturated producer driving
    it.  The adaptive controller's resplit decision reads exactly this.
    """
    shares: dict[str, float] = {}
    for name, threads in ops:
        busy = sum(stamp[1] for stamp in threads)
        idle = sum(stamp[2] for stamp in threads)
        lifetime = busy + idle
        shares[name] = idle / lifetime if lifetime > 0.0 else 0.0
    return shares


class MonitorContext:
    """What a rule sees at one control point."""

    __slots__ = ("point", "now", "metrics", "data")

    def __init__(self, point: str, now: float, metrics, data: dict) -> None:
        self.point = point
        self.now = now
        self.metrics = metrics
        self.data = data

    def __repr__(self) -> str:
        return f"MonitorContext({self.point!r}, now={self.now:g})"

    def get(self, key: str, default=None):
        return self.data.get(key, default)


class Monitor:
    """Base rule: a name, a severity, and an ``evaluate`` hook.

    Rule instances live inside frozen ``ObservabilityOptions`` and may
    be reused across runs, so anything mutable belongs in
    :meth:`reset` — the engine calls it once per run before the first
    evaluation.
    """

    name = "monitor"
    severity = SEV_WARNING

    def reset(self) -> None:
        """Clear per-run state (called once per run)."""

    def evaluate(self, ctx: MonitorContext, alerts: AlertBus) -> None:
        """Inspect *ctx* and fire/resolve alerts as needed."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def _signal(self, alerts: AlertBus, key: str, breached: bool,
                now: float, value: float, threshold: float,
                message: str = "", severity: str | None = None) -> None:
        """Level-triggered helper: fire on crossing, resolve on
        recovery — the condition-alert lifecycle in one call."""
        if breached:
            alerts.fire(self.name, key, severity or self.severity, now,
                        value, threshold, message)
        elif alerts.is_active(self.name, key):
            alerts.resolve(self.name, key, now)


class LatencySloMonitor(Monitor):
    """Per-query latency SLO with burn-rate tracking.

    Fires a warning event per query that finishes over *slo* (virtual
    seconds end-to-end), and keeps a critical condition alert on the
    running violation fraction: once at least *min_finished* queries
    have finished, a violation share above *burn_budget* means the
    workload is burning its error budget — the alert resolves when
    later queries pull the share back under.
    """

    name = "latency_slo"
    severity = SEV_WARNING

    def __init__(self, slo: float, burn_budget: float = 0.25,
                 min_finished: int = 4) -> None:
        self.slo = slo
        self.burn_budget = burn_budget
        self.min_finished = min_finished
        self.finished = 0
        self.violations = 0

    def __repr__(self) -> str:
        return (f"LatencySloMonitor(slo={self.slo}, "
                f"burn_budget={self.burn_budget})")

    def reset(self) -> None:
        self.finished = 0
        self.violations = 0

    def evaluate(self, ctx: MonitorContext, alerts: AlertBus) -> None:
        if ctx.point != POINT_FINISH:
            return
        if ctx.get("status") in ("rejected", "shed"):
            # Shed/rejected queries never ran: their (tiny) queue
            # residence would dilute the burn-rate denominator and
            # hand the brownout loop a false recovery signal.
            return
        latency = ctx.get("latency")
        if latency is None:
            return
        self.finished += 1
        if latency > self.slo:
            self.violations += 1
            alerts.fire(self.name, ctx.get("tag", "?"), self.severity,
                        ctx.now, latency, self.slo,
                        f"query {ctx.get('tag')} finished in "
                        f"{latency:.4f}s (SLO {self.slo:g}s, "
                        f"status {ctx.get('status')})",
                        event=True)
        if self.finished >= self.min_finished:
            share = self.violations / self.finished
            self._signal(alerts, "burn", share > self.burn_budget,
                         ctx.now, share, self.burn_budget,
                         f"{self.violations}/{self.finished} queries over "
                         f"the {self.slo:g}s SLO "
                         f"(budget {self.burn_budget:.0%})",
                         severity=SEV_CRITICAL)


class AdmissionWaitMonitor(Monitor):
    """Queueing-delay ceiling: a query waited too long for admission.

    One event alert per admitted query whose virtual wait exceeded
    *ceiling* — the workload-level "your queue is backing up" signal.
    """

    name = "admission_wait"
    severity = SEV_WARNING

    def __init__(self, ceiling: float) -> None:
        self.ceiling = ceiling

    def __repr__(self) -> str:
        return f"AdmissionWaitMonitor(ceiling={self.ceiling})"

    def evaluate(self, ctx: MonitorContext, alerts: AlertBus) -> None:
        if ctx.point != POINT_ADMISSION:
            return
        for tag, wait in ctx.get("admitted", ()):
            if wait > self.ceiling:
                alerts.fire(self.name, tag, self.severity, ctx.now,
                            wait, self.ceiling,
                            f"query {tag} queued {wait:.4f}s before "
                            f"admission (ceiling {self.ceiling:g}s)",
                            event=True)


class MemoryPressureMonitor(Monitor):
    """Admission memory gate running close to its limit.

    Condition alert while reserved bytes exceed *fraction* of the
    configured ``memory_limit_bytes``; resolves when releases bring
    usage back under.  A no-op when the workload has no memory gate.
    """

    name = "memory_pressure"
    severity = SEV_WARNING

    def __init__(self, fraction: float = 0.9) -> None:
        self.fraction = fraction

    def __repr__(self) -> str:
        return f"MemoryPressureMonitor(fraction={self.fraction})"

    def evaluate(self, ctx: MonitorContext, alerts: AlertBus) -> None:
        if ctx.point not in (POINT_ADMISSION, POINT_FINISH):
            return
        limit = ctx.get("memory_limit")
        if not limit:
            return
        used = ctx.get("used_bytes", 0)
        share = used / limit
        self._signal(alerts, "gate", share > self.fraction, ctx.now,
                     share, self.fraction,
                     f"memory gate at {share:.0%} of "
                     f"{limit} bytes")


class RetryStormMonitor(Monitor):
    """Fault retries piling up across the run.

    Condition alert once the run's total retry count (the
    ``fault_retries_total`` family, all operations) reaches
    *threshold*.  Retry totals are monotone, so the alert never
    resolves within a run — it marks the instant the storm started.
    """

    name = "retry_storm"
    severity = SEV_CRITICAL

    def __init__(self, threshold: int = 8) -> None:
        self.threshold = threshold

    def __repr__(self) -> str:
        return f"RetryStormMonitor(threshold={self.threshold})"

    def evaluate(self, ctx: MonitorContext, alerts: AlertBus) -> None:
        if ctx.metrics is None:
            return
        retries = ctx.metrics.total(FAULT_RETRIES)
        if retries >= self.threshold:
            alerts.fire(self.name, "total", self.severity, ctx.now,
                        retries, self.threshold,
                        f"{retries:g} fault retries injected "
                        f"(threshold {self.threshold})")


class StragglerMonitor(Monitor):
    """Per-wave skew detector keyed to the Fig 12 signature.

    At each wave barrier, for every operation that ran on at least
    *min_threads* threads, compare the slowest thread's relative
    finish (from wave start) against the mean: a ratio above *ratio*
    is the paper's skew picture — one bucket (or one starved thread)
    holding the whole wave hostage.  The blame split follows Section
    5.4: a straggler that spent most of its life *idle* was starved by
    the tuple queues (queue wait); one that stayed busy ground through
    an oversized partition (processing skew).
    """

    name = "straggler"
    severity = SEV_WARNING

    def __init__(self, ratio: float = 2.0, min_threads: int = 2) -> None:
        self.ratio = ratio
        self.min_threads = min_threads

    def __repr__(self) -> str:
        return (f"StragglerMonitor(ratio={self.ratio}, "
                f"min_threads={self.min_threads})")

    def evaluate(self, ctx: MonitorContext, alerts: AlertBus) -> None:
        if ctx.point != POINT_WAVE:
            return
        started = ctx.get("started_at")
        if started is None:
            return
        tag = ctx.get("tag", "?")
        wave = ctx.get("wave", 0)
        for signal in straggler_signals(started, ctx.get("ops", ()),
                                        ratio=self.ratio,
                                        min_threads=self.min_threads):
            alerts.fire(self.name,
                        f"{tag}/w{wave}/{signal.operation}", self.severity,
                        ctx.now, signal.spread, self.ratio,
                        f"{signal.operation} straggler finished "
                        f"{signal.spread:.2f}x the mean (blame: "
                        f"{signal.blame}, idle share "
                        f"{signal.idle_share:.0%})",
                        event=True)


def default_monitors(slo: float = 1.0, admission_ceiling: float = 1.0,
                     straggler_ratio: float = 2.0,
                     burn_budget: float = 0.25,
                     memory_fraction: float = 0.9,
                     retry_threshold: int = 8) -> tuple[Monitor, ...]:
    """The standard rule pack (every built-in rule, thresholds
    overridable) — what ``python -m repro run --monitors`` installs."""
    return (
        LatencySloMonitor(slo, burn_budget=burn_budget),
        AdmissionWaitMonitor(admission_ceiling),
        StragglerMonitor(straggler_ratio),
        MemoryPressureMonitor(memory_fraction),
        RetryStormMonitor(retry_threshold),
    )


class MonitorEngine:
    """Runs a rule set at each control point, collecting alerts.

    Owned by one workload run: construction resets every rule (rule
    instances may be shared across runs through frozen options) and
    creates a fresh :class:`AlertBus`.
    """

    __slots__ = ("rules", "metrics", "alerts")

    def __init__(self, rules, metrics=None) -> None:
        self.rules = tuple(rules)
        self.metrics = metrics
        self.alerts = AlertBus()
        for rule in self.rules:
            rule.reset()

    def __repr__(self) -> str:
        return (f"MonitorEngine(rules={len(self.rules)}, "
                f"alerts={len(self.alerts)})")

    def observe(self, point: str, now: float, **data) -> None:
        """Evaluate every rule at one control point."""
        ctx = MonitorContext(point, now, self.metrics, data)
        for rule in self.rules:
            rule.evaluate(ctx, self.alerts)


#: Severity names re-exported for rule authors.
__all__ = [
    "AdmissionWaitMonitor",
    "BLAME_PROCESSING_SKEW",
    "BLAME_QUEUE_WAIT",
    "LatencySloMonitor",
    "MemoryPressureMonitor",
    "Monitor",
    "MonitorContext",
    "MonitorEngine",
    "POINT_ADMISSION",
    "POINT_FINISH",
    "POINT_REGRANT",
    "POINT_WAVE",
    "POINTS",
    "RetryStormMonitor",
    "SEV_CRITICAL",
    "SEV_INFO",
    "SEV_WARNING",
    "StragglerMonitor",
    "StragglerSignal",
    "default_monitors",
    "pool_idle_shares",
    "straggler_signals",
]
