"""Virtual-time time-series probes.

A :class:`Series` is a named sequence of ``(virtual_time, value)``
samples.  The event bus maintains one series per probed quantity —
queue depth per operation, ready-set size, active threads, cumulative
memory penalty — appending a sample whenever the underlying counter
changes.  Because the engine is a discrete-event simulator, sampling
on change loses nothing: between samples the quantity is exactly
constant, so a series is a complete step function of virtual time.

Series are what the Chrome-trace exporter turns into counter tracks
and what :func:`repro.obs.export.metrics_snapshot` summarizes.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.errors import ReproError


class Series:
    """One probed quantity over virtual time (a step function)."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:
        return f"Series({self.name!r}, samples={len(self.times)})"

    def sample(self, t: float, value: float) -> None:
        """Append one sample.  Virtual time must not go backwards by
        more than simulator tie-breaking allows; samples are kept in
        arrival order (which the engine emits non-decreasing per
        probe site, but distinct thread clocks may interleave)."""
        self.times.append(t)
        self.values.append(value)

    @property
    def last(self) -> float:
        """Most recent sampled value."""
        if not self.values:
            raise ReproError(f"series {self.name!r} has no samples")
        return self.values[-1]

    @property
    def peak(self) -> float:
        """Largest sampled value."""
        if not self.values:
            raise ReproError(f"series {self.name!r} has no samples")
        return max(self.values)

    def at(self, t: float) -> float:
        """Step-function value at virtual time *t* (0 before the
        first sample).  Requires samples in non-decreasing time order;
        the engine's probe sites emit them that way per series because
        every series is driven by one monotone counter."""
        index = bisect_right(self.times, t)
        if index == 0:
            return 0.0
        return self.values[index - 1]

    def to_pairs(self) -> list[tuple[float, float]]:
        """The samples as ``(time, value)`` pairs."""
        return list(zip(self.times, self.values))

    def compacted(self) -> list[tuple[float, float]]:
        """Pairs with consecutive duplicate values dropped (keeps the
        first sample of every run) — what exporters emit."""
        pairs: list[tuple[float, float]] = []
        previous: float | None = None
        for t, value in zip(self.times, self.values):
            if previous is None or value != previous:
                pairs.append((t, value))
                previous = value
        return pairs


#: Well-known series names.  Per-operation probes append the operation
#: name after the slash.
ACTIVE_THREADS = "active_threads"
MEMORY_PENALTY = "memory_penalty"
QUEUE_DEPTH_PREFIX = "queue_depth/"
READY_SET_PREFIX = "ready_set/"


def queue_depth_key(operation_name: str) -> str:
    """Series name of one operation's total pending-activation depth."""
    return QUEUE_DEPTH_PREFIX + operation_name


def ready_set_key(operation_name: str) -> str:
    """Series name of one operation's ready-index ready-set size."""
    return READY_SET_PREFIX + operation_name
