"""The WorkloadReport: one readable page per workload run.

Distils a telemetry-enabled workload run — the
:class:`~repro.obs.metrics.MetricsRegistry` plus the
:class:`~repro.obs.spans.SpanSet` — into the numbers an operator
actually asks for: how many queries ended in which status, the
p50/p95/p99/max end-to-end virtual latency of the completed ones,
admission queue pressure, grant churn, pool utilization, fold
hit-rate and fault counters.  Renderable as text
(``python -m repro run --concurrent 4 --report``, ``make
report-demo``) or as a JSON document (:meth:`WorkloadReport.to_json`).

The latency percentiles come from the registry's raw latency
observations through :func:`repro.obs.metrics.percentile`, so they
match a direct computation over ``QueryHandle.result()`` latencies
exactly — that equality is an acceptance test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.obs.metrics import (
    ADMISSION_QUEUE_DEPTH,
    ADMISSION_WAIT,
    BROWNOUT_ACTIVE,
    FAULT_ABORTS,
    FAULT_BACKOFF,
    FAULT_MEMORY_EVENTS,
    FAULT_RETRIES,
    FAULTS_INJECTED,
    FOLD_ATTEMPTS,
    FOLD_COST_SHARE,
    FOLD_HITS,
    GRANTS,
    POOL_UTILIZATION,
    QUERIES_REJECTED,
    QUERIES_SHED,
    QUERY_LATENCY,
    MetricsRegistry,
    percentile,
)
from repro.obs.spans import SPAN_DONE, SpanSet, verify_spans


@dataclass
class WorkloadReport:
    """Aggregated telemetry of one workload run."""

    queries: int
    statuses: dict[str, int]
    makespan: float
    throughput: float                 # done queries per virtual second
    latency: dict                     # p50/p95/p99/max/mean/count (done)
    admission: dict                   # peak_queue_depth, wait mean/max
    grants: dict[str, int]            # reason -> count
    pools: dict                       # utilization mean/min + laggard
    folds: dict                       # attempts, hits, hit_rate, shares
    faults: dict                      # injected/retries/aborts/backoff/mem
    problems: list[str] = field(default_factory=list)
    serving: dict = field(default_factory=dict)  # shed/rejected by reason

    @property
    def clean(self) -> bool:
        """True when the span self-audit found nothing inconsistent."""
        return not self.problems

    def to_json(self) -> dict:
        return {
            "queries": self.queries,
            "statuses": dict(self.statuses),
            "makespan": self.makespan,
            "throughput": self.throughput,
            "latency": dict(self.latency),
            "admission": dict(self.admission),
            "grants": dict(self.grants),
            "pools": dict(self.pools),
            "folds": dict(self.folds),
            "faults": dict(self.faults),
            "problems": list(self.problems),
            "serving": dict(self.serving),
        }

    def render(self) -> str:
        status_bits = ", ".join(f"{status}={count}" for status, count
                                in sorted(self.statuses.items()))
        lines = [
            "workload report",
            f"  queries    : {self.queries} ({status_bits})",
            f"  makespan   : {self.makespan:.4f}s virtual, "
            f"throughput {self.throughput:.2f} done/s",
        ]
        if self.latency:
            lines.append(
                f"  latency    : p50={self.latency['p50']:.4f}s "
                f"p95={self.latency['p95']:.4f}s "
                f"p99={self.latency['p99']:.4f}s "
                f"max={self.latency['max']:.4f}s "
                f"(mean {self.latency['mean']:.4f}s over "
                f"{self.latency['count']} done)")
        else:
            lines.append("  latency    : no completed queries")
        lines.append(
            f"  admission  : peak queue depth "
            f"{self.admission['peak_queue_depth']:.0f}, wait "
            f"mean {self.admission['wait_mean']:.4f}s / "
            f"max {self.admission['wait_max']:.4f}s")
        if self.grants:
            lines.append("  grants     : " + " ".join(
                f"{reason}={count}" for reason, count
                in sorted(self.grants.items())))
        if self.pools.get("count"):
            laggard = self.pools.get("laggard")
            lines.append(
                f"  pools      : mean utilization "
                f"{self.pools['mean']:.2f} over {self.pools['count']} "
                f"pools, min {self.pools['min']:.2f}"
                + (f" ({laggard})" if laggard else ""))
        if self.folds.get("attempts"):
            lines.append(
                f"  folds      : {self.folds['hits']}/"
                f"{self.folds['attempts']} nodes folded "
                f"({self.folds['hit_rate']:.0%}), "
                f"{self.folds['shared_appearances']} fractional "
                f"appearances")
        if any(self.faults.values()):
            lines.append(
                f"  faults     : injected={self.faults['injected']:.0f} "
                f"retries={self.faults['retries']:.0f} "
                f"aborts={self.faults['aborts']:.0f} "
                f"backoff={self.faults['backoff_s']:.4f}s "
                f"memory={self.faults['memory_events']:.0f}")
        if self.serving:
            bits = [f"shed={self.serving.get('shed', 0)}",
                    f"rejected={self.serving.get('rejected', 0)}"]
            reasons = self.serving.get("reasons", {})
            bits.extend(f"{reason}={count}"
                        for reason, count in sorted(reasons.items()))
            if self.serving.get("brownout_tripped"):
                bits.append("brownout")
            lines.append("  serving    : " + " ".join(bits))
        for problem in self.problems:
            lines.append(f"  AUDIT      : {problem}")
        return "\n".join(lines)


def build_workload_report(result) -> WorkloadReport:
    """Build the report from one telemetry-enabled
    :class:`~repro.workload.engine.WorkloadResult`."""
    metrics: MetricsRegistry | None = getattr(result, "metrics", None)
    spans: SpanSet | None = getattr(result, "spans", None)
    if metrics is None or spans is None:
        raise ReproError(
            "workload was not observed; enable WorkloadOptions("
            "observability=ObservabilityOptions(observe=True)) — or "
            "per-query observe — to collect telemetry")

    statuses = spans.status_counts()
    done = statuses.get(SPAN_DONE, 0)
    throughput = done / result.makespan if result.makespan > 0 else 0.0

    latency: dict = {}
    done_latencies = spans.latencies(status=SPAN_DONE)
    if done_latencies:
        latency = {
            "p50": percentile(done_latencies, 50),
            "p95": percentile(done_latencies, 95),
            "p99": percentile(done_latencies, 99),
            "max": max(done_latencies),
            "mean": sum(done_latencies) / len(done_latencies),
            "count": len(done_latencies),
        }

    # get(), not gauge(): reporting must read the registry, never
    # instantiate instruments the run did not populate.
    depth = metrics.get(ADMISSION_QUEUE_DEPTH)
    wait = metrics.get(ADMISSION_WAIT)
    waits = wait.observations_at() if wait is not None else []
    admission = {
        "peak_queue_depth": depth.peak if depth is not None else 0.0,
        "wait_mean": sum(waits) / len(waits) if waits else 0.0,
        "wait_max": max(waits) if waits else 0.0,
    }

    grants = {instrument.labels.get("reason", "?"): int(instrument.value)
              for instrument in metrics.family(GRANTS)}

    pool_gauges = metrics.family(POOL_UTILIZATION)
    pools: dict = {"count": len(pool_gauges)}
    if pool_gauges:
        values = [gauge.value for gauge in pool_gauges]
        worst = min(pool_gauges, key=lambda gauge: gauge.value)
        pools.update(
            mean=sum(values) / len(values), min=min(values),
            laggard=f"{worst.labels.get('pool', '?')}"
                    f"@{worst.labels.get('query', '?')}")

    attempts = metrics.total(FOLD_ATTEMPTS)
    hits = metrics.total(FOLD_HITS)
    folds = {
        "attempts": int(attempts),
        "hits": int(hits),
        "hit_rate": hits / attempts if attempts else 0.0,
        "shared_appearances": len(metrics.family(FOLD_COST_SHARE)),
    }

    faults = {
        "injected": metrics.total(FAULTS_INJECTED),
        "retries": metrics.total(FAULT_RETRIES),
        "aborts": metrics.total(FAULT_ABORTS),
        "backoff_s": metrics.total(FAULT_BACKOFF),
        "memory_events": metrics.total(FAULT_MEMORY_EVENTS),
    }

    shed_total = 0
    rejected_total = 0
    reasons: dict[str, int] = {}
    for counter in metrics.family(QUERIES_SHED):
        shed_total += int(counter.value)
        reason = counter.labels.get("reason", "?")
        reasons[reason] = reasons.get(reason, 0) + int(counter.value)
    for counter in metrics.family(QUERIES_REJECTED):
        rejected_total += int(counter.value)
        reason = counter.labels.get("reason", "?")
        reasons[reason] = reasons.get(reason, 0) + int(counter.value)
    brownout = metrics.get(BROWNOUT_ACTIVE)
    serving: dict = {}
    if shed_total or rejected_total or brownout is not None:
        serving = {
            "shed": shed_total,
            "rejected": rejected_total,
            "reasons": reasons,
            "brownout_tripped": bool(brownout is not None
                                     and brownout.peak > 0),
        }

    problems = verify_spans(spans, result.executions,
                            makespan=result.makespan)
    return WorkloadReport(
        queries=len(spans),
        statuses=statuses,
        makespan=result.makespan,
        throughput=throughput,
        latency=latency,
        admission=admission,
        grants=grants,
        pools=pools,
        folds=folds,
        faults=faults,
        problems=problems,
        serving=serving,
    )
