"""Execution observability: event bus, probes, explain, exporters.

Enable with ``ExecutionOptions(observe=True)``; the resulting
:class:`~repro.engine.metrics.QueryExecution` then carries an
:class:`~repro.obs.bus.EventBus` on ``.obs``, exportable via
:mod:`repro.obs.export`.  Scheduler decisions are explained by passing
a :class:`~repro.obs.explain.ScheduleExplanation` to
``AdaptiveScheduler.schedule``.  See the Observability section of
docs/architecture.md for the event taxonomy and overhead guarantees.
"""

from repro.obs.bus import Event, EventBus
from repro.obs.explain import (
    STEP_CHAIN_SPLIT,
    STEP_OPERATION_SPLIT,
    STEP_STRATEGY,
    STEP_THREAD_COUNT,
    Decision,
    ScheduleExplanation,
)
from repro.obs.export import (
    SCHEMA_VERSION,
    LoadedRun,
    chrome_trace,
    jsonl_records,
    metrics_snapshot,
    read_jsonl,
    verify_against_metrics,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.probes import Series

__all__ = [
    "Event",
    "EventBus",
    "Decision",
    "ScheduleExplanation",
    "STEP_THREAD_COUNT",
    "STEP_CHAIN_SPLIT",
    "STEP_OPERATION_SPLIT",
    "STEP_STRATEGY",
    "Series",
    "SCHEMA_VERSION",
    "LoadedRun",
    "chrome_trace",
    "jsonl_records",
    "metrics_snapshot",
    "read_jsonl",
    "verify_against_metrics",
    "write_chrome_trace",
    "write_jsonl",
]
