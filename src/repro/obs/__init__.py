"""Execution observability: event bus, probes, metrics, spans, exporters.

Enable per-query observability with ``ExecutionOptions(observe=True)``;
the resulting :class:`~repro.engine.metrics.QueryExecution` then
carries an :class:`~repro.obs.bus.EventBus` on ``.obs``, exportable
via :mod:`repro.obs.export`.  Workload-level telemetry — the
:class:`~repro.obs.metrics.MetricsRegistry`, per-query
:class:`~repro.obs.spans.QuerySpan` lifecycles and the
:class:`~repro.obs.report.WorkloadReport` — is enabled with
``WorkloadOptions(observability=ObservabilityOptions(observe=True))``
and lives on the :class:`~repro.workload.engine.WorkloadResult`.
Scheduler decisions are explained by passing a
:class:`~repro.obs.explain.ScheduleExplanation` to
``AdaptiveScheduler.schedule``.  See the Observability and Workload
telemetry sections of docs/architecture.md for the event taxonomy and
overhead guarantees.
"""

from repro.obs.alerts import (
    SEV_CRITICAL,
    SEV_INFO,
    SEV_WARNING,
    Alert,
    AlertBus,
)
from repro.obs.bus import Event, EventBus
from repro.obs.explain import (
    STEP_CHAIN_SPLIT,
    STEP_OPERATION_SPLIT,
    STEP_STRATEGY,
    STEP_THREAD_COUNT,
    Decision,
    ScheduleExplanation,
)
from repro.obs.export import (
    SCHEMA_VERSION,
    LoadedRun,
    chrome_trace,
    jsonl_records,
    metrics_snapshot,
    read_jsonl,
    verify_against_metrics,
    verify_workload_jsonl,
    workload_jsonl_records,
    write_chrome_trace,
    write_jsonl,
    write_workload_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.obs.monitor import (
    AdmissionWaitMonitor,
    LatencySloMonitor,
    MemoryPressureMonitor,
    Monitor,
    MonitorContext,
    MonitorEngine,
    RetryStormMonitor,
    StragglerMonitor,
    default_monitors,
)
from repro.obs.probes import Series
from repro.obs.report import WorkloadReport, build_workload_report
from repro.obs.spans import (
    QuerySpan,
    SpanSet,
    assemble_spans,
    verify_spans,
)

__all__ = [
    "Alert",
    "AlertBus",
    "SEV_CRITICAL",
    "SEV_INFO",
    "SEV_WARNING",
    "Monitor",
    "MonitorContext",
    "MonitorEngine",
    "AdmissionWaitMonitor",
    "LatencySloMonitor",
    "MemoryPressureMonitor",
    "RetryStormMonitor",
    "StragglerMonitor",
    "default_monitors",
    "Event",
    "EventBus",
    "Decision",
    "ScheduleExplanation",
    "STEP_THREAD_COUNT",
    "STEP_CHAIN_SPLIT",
    "STEP_OPERATION_SPLIT",
    "STEP_STRATEGY",
    "Series",
    "SCHEMA_VERSION",
    "LoadedRun",
    "chrome_trace",
    "jsonl_records",
    "metrics_snapshot",
    "read_jsonl",
    "verify_against_metrics",
    "verify_workload_jsonl",
    "workload_jsonl_records",
    "write_chrome_trace",
    "write_jsonl",
    "write_workload_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
    "WorkloadReport",
    "build_workload_report",
    "QuerySpan",
    "SpanSet",
    "assemble_spans",
    "verify_spans",
]
