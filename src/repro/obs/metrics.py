"""The virtual-time metrics registry: counters, gauges, histograms.

The workload layer's aggregate telemetry.  Where :mod:`repro.obs.bus`
records *what happened* (discrete events), this module records *how
much and how fast*: labelled :class:`Counter` / :class:`Gauge` /
:class:`Histogram` instruments collected in one
:class:`MetricsRegistry` per workload run.  Every sample is stamped
with virtual time, so the registry can be snapshot at any instant of
the simulation — ``registry.snapshot(at=0.25)`` answers "what did the
system look like a quarter of a virtual second in", not just "what
happened by the end".

Instruments:

* :class:`Counter` — monotonically non-decreasing tally (queries
  admitted, grants by reason, faults injected).  Keeps its full step
  function, so ``value_at(t)`` works.
* :class:`Gauge` — last-write-wins level (admission queue depth,
  running queries, per-pool utilization).  Also a step function.
* :class:`Histogram` — observation distribution (admission wait,
  end-to-end query latency) over **fixed log-scale buckets**
  (powers of two, :data:`LOG_BUCKET_BOUNDS`).  The raw time-stamped
  observations are retained as well — a workload records O(queries)
  latencies, not O(activations) — so :meth:`Histogram.percentile`
  is *exact* (nearest-rank over the real values), and the buckets
  are a rendering/export aid, not a precision limit.

Labels are plain keyword arguments (``registry.counter("grants_total",
reason="shrink")``); each distinct label set is its own time series,
and :meth:`MetricsRegistry.family` / :meth:`MetricsRegistry.total`
aggregate across a name's label sets.

The registry follows the bus's guarded no-op discipline: engine
layers hold an optional reference (``None`` when workload
observability is off) and pay one ``is not None`` check per site —
the perf harness pins the disabled mode at under 5 % wall clock
(``obs_workload`` cell of ``BENCH_engine.json``).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right

from repro.errors import ReproError

#: Histogram bucket upper bounds: powers of two from 2^-10 (~1 ms
#: virtual) to 2^10 (~17 virtual minutes), plus an implicit +inf
#: overflow bucket.  Fixed — every histogram in a run shares them, so
#: exported bucket rows are comparable across metrics and runs.
LOG_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    2.0 ** exponent for exponent in range(-10, 11))

#: Well-known metric names.  The workload engine populates these; the
#: report renderer and the chaos harness read them back by name.
QUERIES_SUBMITTED = "queries_submitted_total"
QUERIES_ADMITTED = "queries_admitted_total"
QUERIES_FINISHED = "queries_finished_total"          # label: status
ADMISSION_QUEUE_DEPTH = "admission_queue_depth"
ADMISSION_WAIT = "admission_wait_virtual_s"
ADMISSION_USED_BYTES = "admission_used_bytes"
RUNNING_QUERIES = "running_queries"
GRANTS = "grants_total"                              # label: reason
GRANTED_THREADS = "granted_threads"                  # label: query
POOL_UTILIZATION = "pool_utilization"                # labels: query, pool
QUERY_LATENCY = "query_latency_virtual_s"            # label: status
FOLD_ATTEMPTS = "fold_attempts_total"
FOLD_HITS = "fold_hits_total"
FOLD_SUBSCRIBERS = "fold_subscribers"                # label: operator
FOLD_COST_SHARE = "fold_cost_share"                  # labels: query, operator
QUERIES_SHED = "queries_shed_total"                  # label: reason
QUERIES_REJECTED = "queries_rejected_total"          # label: reason
BACKPRESSURE_ENGAGED = "backpressure_engaged"
BROWNOUT_ACTIVE = "brownout_active"
FAULTS_INJECTED = "faults_injected_total"            # label: operation
FAULT_RETRIES = "fault_retries_total"                # label: operation
FAULT_ABORTS = "fault_aborts_total"                  # label: operation
FAULT_BACKOFF = "fault_backoff_virtual_s"
FAULT_MEMORY_EVENTS = "fault_memory_events_total"


def percentile(values, q: float) -> float:
    """Nearest-rank percentile of *values* (q in [0, 100]).

    The one percentile definition the whole telemetry layer uses —
    the report renderer, the JSONL export and the acceptance tests all
    call this, so "p95 in the report" and "p95 computed from the raw
    handle latencies" are the same number by construction.
    """
    if not 0.0 <= q <= 100.0:
        raise ReproError(f"percentile rank must be in [0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        raise ReproError("percentile of an empty value set")
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(rank, 1) - 1]


def bucket_index(value: float) -> int:
    """Index of the first bucket whose bound is >= *value*
    (``len(LOG_BUCKET_BOUNDS)`` = the +inf overflow bucket)."""
    return bisect_left(LOG_BUCKET_BOUNDS, value)


def _labels_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _g(value: float) -> str:
    """Prometheus-style shortest float rendering (``12`` not ``12.0``)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label(value) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_labels(labels: dict, **extra) -> str:
    """``{key="value",...}`` or empty when there are no labels."""
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(f'{key}="{_escape_label(merged[key])}"'
                     for key in sorted(merged))
    return "{" + inner + "}"


class _Instrument:
    """Shared shape: a name, a frozen label set, time-stamped samples."""

    kind = "?"
    __slots__ = ("name", "labels", "times", "values")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = dict(labels)
        self.times: list[float] = []
        self.values: list[float] = []

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.labels.items()))
        return (f"{type(self).__name__}({self.name!r}"
                + (f", {inner}" if inner else "")
                + f", samples={len(self.times)})")

    def __len__(self) -> int:
        return len(self.times)

    @property
    def value(self) -> float:
        """Current (final) value; 0.0 before any sample."""
        return self.values[-1] if self.values else 0.0

    def value_at(self, t: float) -> float:
        """Step-function value at virtual time *t* (0 before the
        first sample; samples at exactly *t* are included)."""
        index = bisect_right(self.times, t)
        return self.values[index - 1] if index else 0.0

    def _record(self, t: float, value: float) -> None:
        """Insert one sample, keeping the series sorted by stamp.

        Samples usually arrive in stamp order, but not always: the
        workload engine processes completions in simulator-callback
        order while stamping each query with its *logical* finish
        instant, and a folded subscriber's stamp (which includes its
        own late-started operations) can exceed its host's even though
        the host's bookkeeping runs later in the same callback.  A
        late sample with an earlier stamp is therefore filed at its
        sorted position, not rejected.
        """
        if not self.times or t >= self.times[-1]:
            self.times.append(t)
            self.values.append(value)
        else:
            index = bisect_right(self.times, t)
            self.times.insert(index, t)
            self.values.insert(index, value)


class Counter(_Instrument):
    """A monotone tally over virtual time."""

    kind = "counter"
    __slots__ = ()

    def inc(self, t: float, delta: float = 1.0) -> float:
        """Add *delta* (>= 0) at virtual time *t*; returns the total.

        The series holds cumulative totals, so an increment whose
        stamp lands *before* already-recorded samples (see
        :meth:`_Instrument._record` for how that happens) splices in
        at its sorted position and bumps every later total — keeping
        ``value_at(t)`` = "events stamped <= t" exact.
        """
        if delta < 0:
            raise ReproError(
                f"counter {self.name!r} cannot decrease (delta {delta})")
        if not self.times or t >= self.times[-1]:
            total = self.value + delta
            self._record(t, total)
            return total
        index = bisect_right(self.times, t)
        base = self.values[index - 1] if index else 0.0
        self.times.insert(index, t)
        self.values.insert(index, base + delta)
        for i in range(index + 1, len(self.values)):
            self.values[i] += delta
        return self.values[-1]


class Gauge(_Instrument):
    """A last-write-wins level over virtual time."""

    kind = "gauge"
    __slots__ = ()

    def set(self, t: float, value: float) -> None:
        """Record the level at virtual time *t*."""
        self._record(t, value)

    @property
    def peak(self) -> float:
        """Largest level ever set; 0.0 before any sample."""
        return max(self.values) if self.values else 0.0


class Histogram(_Instrument):
    """An observation distribution over fixed log-scale buckets.

    ``times``/``values`` hold the raw observations in arrival order
    (the workload layer observes O(queries) values, so keeping them is
    cheap); ``bucket_counts`` maintains the log-bucket aggregation
    incrementally for rendering and export.
    """

    kind = "histogram"
    __slots__ = ("bucket_counts", "total")

    def __init__(self, name: str, labels: dict) -> None:
        super().__init__(name, labels)
        self.bucket_counts = [0] * (len(LOG_BUCKET_BOUNDS) + 1)
        self.total = 0.0

    def observe(self, t: float, value: float) -> None:
        """Record one observation *value* at virtual time *t*."""
        self._record(t, value)
        self.bucket_counts[bucket_index(value)] += 1
        self.total += value

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def max(self) -> float:
        if not self.values:
            raise ReproError(f"histogram {self.name!r} has no observations")
        return max(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ReproError(f"histogram {self.name!r} has no observations")
        return self.total / len(self.values)

    def observations_at(self, t: float | None = None) -> list[float]:
        """Raw observed values, restricted to virtual time <= *t*."""
        if t is None:
            return list(self.values)
        return self.values[:bisect_right(self.times, t)]

    def percentile(self, q: float, at: float | None = None) -> float:
        """Exact nearest-rank percentile of the raw observations."""
        return percentile(self.observations_at(at), q)

    def buckets(self) -> list[tuple[float, int]]:
        """Non-empty ``(upper_bound, count)`` rows (inf = overflow)."""
        bounds = LOG_BUCKET_BOUNDS + (float("inf"),)
        return [(bound, count)
                for bound, count in zip(bounds, self.bucket_counts)
                if count]


class MetricsRegistry:
    """All instruments of one workload run, keyed by (name, labels).

    Instruments are created on first touch (``counter`` / ``gauge`` /
    ``histogram`` are get-or-create and type-checked), so emitting
    sites never pre-register anything.  One registry observes one
    run — like the bus, it is single-use.
    """

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, tuple], _Instrument] = {}

    def __repr__(self) -> str:
        return f"MetricsRegistry(instruments={len(self._instruments)})"

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self):
        return iter(self._instruments.values())

    def _get(self, cls, name: str, labels: dict):
        key = (name, _labels_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = cls(name, labels)
        elif type(instrument) is not cls:
            raise ReproError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, not {cls.kind}")
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def get(self, name: str, **labels) -> _Instrument | None:
        """The instrument with exactly these labels, or ``None``."""
        return self._instruments.get((name, _labels_key(labels)))

    def family(self, name: str) -> list[_Instrument]:
        """Every instrument registered under *name* (any label set)."""
        return [instrument for (key, _), instrument
                in self._instruments.items() if key == name]

    def total(self, name: str, at: float | None = None) -> float:
        """Sum of a counter family's values across label sets."""
        return sum(instrument.value if at is None
                   else instrument.value_at(at)
                   for instrument in self.family(name))

    def render_prom(self, at: float | None = None) -> str:
        """Prometheus text-exposition rendering of the registry.

        Counters and gauges render as one sample per label set;
        histograms render the standard cumulative ``_bucket`` /
        ``_sum`` / ``_count`` triple over :data:`LOG_BUCKET_BOUNDS`.
        With *at*, every value is the virtual-time snapshot at that
        instant — the text format is wall-clock-agnostic, so "the
        registry a quarter of a virtual second in" is a perfectly
        valid exposition.  Deterministic order (name, then labels),
        so outputs diff cleanly in tests.
        """
        families: dict[str, list[_Instrument]] = {}
        for (name, _), instrument in sorted(self._instruments.items()):
            families.setdefault(name, []).append(instrument)
        lines: list[str] = []
        for name, instruments in families.items():
            kind = instruments[0].kind
            lines.append(f"# TYPE {name} {kind}")
            for instrument in instruments:
                if kind == "histogram":
                    values = instrument.observations_at(at)
                    cumulative = 0
                    for bound in LOG_BUCKET_BOUNDS:
                        cumulative = sum(1 for v in values if v <= bound)
                        lines.append(
                            f"{name}_bucket"
                            f"{_prom_labels(instrument.labels, le=_g(bound))}"
                            f" {cumulative}")
                    lines.append(
                        f"{name}_bucket"
                        f"{_prom_labels(instrument.labels, le='+Inf')}"
                        f" {len(values)}")
                    lines.append(f"{name}_sum"
                                 f"{_prom_labels(instrument.labels)}"
                                 f" {_g(math.fsum(values))}")
                    lines.append(f"{name}_count"
                                 f"{_prom_labels(instrument.labels)}"
                                 f" {len(values)}")
                else:
                    value = (instrument.value if at is None
                             else instrument.value_at(at))
                    lines.append(f"{name}"
                                 f"{_prom_labels(instrument.labels)}"
                                 f" {_g(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self, at: float | None = None) -> list[dict]:
        """Every instrument as one plain-dict row, at virtual time
        *at* (``None`` = end of run).  Deterministic order (name,
        then labels); the JSONL exporter writes these verbatim."""
        rows = []
        for (name, labels_key), instrument in sorted(
                self._instruments.items()):
            row: dict = {"name": name, "labels": dict(labels_key),
                         "kind": instrument.kind}
            if instrument.kind == "histogram":
                values = instrument.observations_at(at)
                row["count"] = len(values)
                row["sum"] = math.fsum(values)
                if values:
                    row["max"] = max(values)
                    row["p50"] = percentile(values, 50)
                    row["p95"] = percentile(values, 95)
                    row["p99"] = percentile(values, 99)
                # The overflow bucket's bound is JSON ``null``, not a
                # non-standard Infinity literal.
                bounds = LOG_BUCKET_BOUNDS + (None,)
                counts = [0] * len(bounds)
                for value in values:
                    counts[bucket_index(value)] += 1
                row["buckets"] = [[bound, count]
                                  for bound, count in zip(bounds, counts)
                                  if count]
            else:
                row["value"] = (instrument.value if at is None
                                else instrument.value_at(at))
            rows.append(row)
        return rows
