"""Concurrent workloads: throughput versus multiprogramming level.

The paper's evaluation stops at one query; its Section 6 outlook (and
the multi-user factor of the four-step scheduler) points at several
queries sharing the machine.  This experiment quantifies that: the
same bag of N queries is executed back-to-back (one shared-nothing
simulation each) and concurrently (one shared simulation through the
workload engine), sweeping N — the multiprogramming level (MPL).

Shapes the workload layer must produce:

* concurrent makespan strictly below the back-to-back total at every
  MPL >= 2 — sharing the 70 processors between queries whose lone
  demand cannot fill the machine recovers otherwise idle capacity;
* throughput (queries per virtual second) rising with MPL before
  flattening as the machine saturates;
* at MPL = 1 the workload path adds **zero** virtual time: the
  makespan equals the single-query response time exactly.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.bench.runners import (
    default_machine,
    run_assoc_join,
    run_concurrent_workload,
    run_ideal_join,
    run_overlap_workload,
)
from repro.bench.workloads import make_join_database
from repro.workload.options import WorkloadOptions

#: Multiprogramming levels to sweep.
LEVELS = (1, 2, 3, 4, 6, 8)

#: The shared-work sweep: MPLs crossed with scan-overlap fractions.
SHARING_LEVELS = (1, 2, 4, 8)
OVERLAPS = (0.0, 0.5, 1.0)

#: Reduced-scale default workload (a CI-friendly cousin of the
#: Figure 13/14 databases); the paper-scale run is `--scale paper`.
CARD_A = 20_000
CARD_B = 2_000
DEGREE = 100

PAPER_CARD_A = 100_000
PAPER_CARD_B = 10_000
PAPER_DEGREE = 200

#: Per-query degree of parallelism: fixed (rather than scheduler-
#: chosen) so every MPL runs the same queries and the sweep isolates
#: the workload layer's contribution.
THREADS = 24


def run(card_a: int = CARD_A, card_b: int = CARD_B, degree: int = DEGREE,
        levels: tuple[int, ...] = LEVELS, threads: int = THREADS,
        seed: int = 0) -> ExperimentResult:
    """Regenerate the concurrent-workload figure."""
    database = make_join_database(card_a, card_b, degree, theta=0.0)
    machine = default_machine()
    result = ExperimentResult(
        experiment_id="fig_concurrent",
        title=(f"Concurrent workload throughput (|A|={card_a}, "
               f"|B'|={card_b}, degree={degree}, "
               f"{machine.processors} processors, {threads} threads/query)"),
        x_label="multiprogramming level",
        x_values=tuple(float(n) for n in levels),
    )
    # Back-to-back reference: each query alone in its own simulation.
    runners = (run_ideal_join, run_assoc_join)
    single_times = [
        runners[index % 2](database, threads, machine=machine,
                           seed=seed).response_time
        for index in range(max(levels))
    ]
    serial, makespan, throughput, speedup = [], [], [], []
    for level in levels:
        back_to_back = sum(single_times[:level])
        # Lift the default admission bound: the sweep measures *true*
        # multiprogramming levels, not a 4-deep admission queue.
        workload = run_concurrent_workload(
            database, level, threads=threads, machine=machine,
            workload=WorkloadOptions(max_concurrent=level), seed=seed)
        serial.append(back_to_back)
        makespan.append(workload.makespan)
        throughput.append(workload.throughput)
        speedup.append(back_to_back / workload.makespan)
    result.add_series("back_to_back_s", serial)
    result.add_series("makespan_s", makespan)
    result.add_series("throughput_qps", throughput)
    result.add_series("speedup", speedup)
    result.notes["threads_per_query"] = threads
    result.notes["processors"] = machine.processors
    return result


def run_sharing(card_a: int = CARD_A, card_b: int = CARD_B,
                degree: int = DEGREE,
                levels: tuple[int, ...] = SHARING_LEVELS,
                overlaps: tuple[float, ...] = OVERLAPS,
                threads: int = THREADS, seed: int = 0) -> ExperimentResult:
    """Shared-work vs private execution across MPL and scan overlap.

    The same submissions run twice at every (MPL, overlap) point —
    once with ``shared=False`` (each query builds every operator) and
    once with ``shared=True`` (identical subplans fold onto one
    operator fanning out to all subscribers).  Shapes:

    * at 100 % overlap the shared makespan collapses toward the
      single-query time — one physical execution serves all N;
    * at 0 % overlap the fold pass finds nothing and the shared
      engine must cost no virtual time over the private one;
    * the gain at 50 % sits in between, scaling with the folded half.
    """
    machine = default_machine()
    databases = [make_join_database(card_a, card_b, degree, theta=0.0)
                 for _ in range(max(levels))]
    result = ExperimentResult(
        experiment_id="fig_sharing",
        title=(f"Shared-work execution (|A|={card_a}, |B'|={card_b}, "
               f"degree={degree}, {machine.processors} processors, "
               f"{threads} threads/query)"),
        x_label="multiprogramming level",
        x_values=tuple(float(n) for n in levels),
    )
    for overlap in overlaps:
        pct = int(round(overlap * 100))
        private, shared, gain = [], [], []
        for level in levels:
            subset = databases[:level]
            base = run_overlap_workload(subset, overlap, shared=False,
                                        threads=threads, machine=machine,
                                        seed=seed)
            folded = run_overlap_workload(subset, overlap, shared=True,
                                          threads=threads, machine=machine,
                                          seed=seed)
            for tag in base.order:  # sharing must not change any result
                expected = base.execution(tag).result_cardinality
                got = folded.execution(tag).result_cardinality
                if got != expected:
                    raise AssertionError(
                        f"sharing changed {tag}'s cardinality at MPL "
                        f"{level}, overlap {pct}%: {expected} -> {got}")
            private.append(base.makespan)
            shared.append(folded.makespan)
            gain.append(base.makespan / folded.makespan)
        result.add_series(f"private_s_o{pct}", private)
        result.add_series(f"shared_s_o{pct}", shared)
        result.add_series(f"gain_o{pct}", gain)
    result.notes["threads_per_query"] = threads
    result.notes["processors"] = machine.processors
    result.notes["overlaps"] = list(overlaps)
    return result


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "paper"),
                        default="small")
    parser.add_argument("--sharing", action="store_true",
                        help="run the shared-work overlap sweep instead")
    args = parser.parse_args(argv)
    if args.sharing:
        if args.scale == "paper":
            print(run_sharing(PAPER_CARD_A, PAPER_CARD_B,
                              PAPER_DEGREE).render())
        else:
            print(run_sharing().render())
        return 0
    if args.scale == "paper":
        print(run(PAPER_CARD_A, PAPER_CARD_B, PAPER_DEGREE).render())
    else:
        print(run().render())
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
