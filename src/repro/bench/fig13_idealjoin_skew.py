"""Figure 13: IdealJoin execution time versus skew, Random vs LPT.

Same databases as Figure 12, but the triggered IdealJoin: the number
of activations equals the number of fragments (200), so consumption
strategy matters.

Paper shapes to reproduce:

* for low skew (theta < ~0.4) Random and LPT are both near-ideal;
* with higher skew Random degrades while LPT stays near-ideal up to
  about theta = 0.8 (the paper reports < 2% overhead);
* past ~0.8 even LPT rises: the longest activation alone exceeds the
  ideal time (``Pmax > a*P/n``), pinning the response time.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.bench.runners import chain_ideal_time, chain_worst_time, run_ideal_join
from repro.bench.workloads import make_join_database

PAPER_THETAS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
PAPER_CARD_A = 100_000
PAPER_CARD_B = 10_000
PAPER_DEGREE = 200
PAPER_THREADS = 10
#: LPT stays within ~2% of ideal up to this skew (Section 5.4).
PAPER_LPT_FLAT_UNTIL = 0.8


def run(card_a: int = PAPER_CARD_A, card_b: int = PAPER_CARD_B,
        degree: int = PAPER_DEGREE, threads: int = PAPER_THREADS,
        thetas: tuple[float, ...] = PAPER_THETAS,
        seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 13: Random vs LPT vs Tworst, with Pmax."""
    random_times = []
    lpt_times = []
    worst = []
    ideal = []
    pmax = []
    for theta in thetas:
        database = make_join_database(card_a, card_b, degree, theta)
        random_run = run_ideal_join(database, threads, strategy="random",
                                    seed=seed)
        lpt_run = run_ideal_join(database, threads, strategy="lpt", seed=seed)
        random_times.append(random_run.response_time)
        lpt_times.append(lpt_run.response_time)
        worst.append(chain_worst_time(random_run))
        ideal.append(chain_ideal_time(random_run))
        pmax.append(random_run.operation("join").profile().max_cost)

    result = ExperimentResult(
        experiment_id="fig13",
        title=(f"IdealJoin execution time vs skew "
               f"(|A|={card_a}, |B'|={card_b}, degree={degree}, "
               f"{threads} threads)"),
        x_label="zipf",
        x_values=thetas,
    )
    result.add_series("Random", random_times)
    result.add_series("LPT", lpt_times)
    result.add_series("Tworst", worst)
    result.add_series("Tideal", ideal)
    result.add_series("Pmax", pmax)
    result.notes["paper_lpt_flat_until"] = PAPER_LPT_FLAT_UNTIL
    return result
