"""Figure 15: IdealJoin speed-up ceilings under skew.

Same databases as Figure 14 but the triggered IdealJoin: with 200
activations (one per fragment), the longest activation caps the
speed-up at ``nmax = a*P / Pmax``.

Paper shapes to reproduce:

* unskewed: near-linear speed-up (> 60 at 70 threads);
* skewed: the speed-up plateaus at nmax — about **6** for Zipf = 1,
  **19** for 0.6 and **40** for 0.4 (with 200 fragments these are the
  inverse normalized Zipf weights of the largest fragment, e.g.
  H(200) ~= 5.88 for Zipf = 1).
"""

from __future__ import annotations

from repro.analysis.formulas import nmax_from_costs
from repro.analysis.speedup import theoretical_speedup
from repro.bench.harness import ExperimentResult
from repro.bench.runners import RESERVED_PROCESSORS, run_ideal_join
from repro.bench.workloads import make_join_database

PAPER_THREAD_COUNTS = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
PAPER_CARD_A = 200_000
PAPER_CARD_B = 20_000
PAPER_DEGREE = 200
PAPER_THETAS = (0.0, 0.4, 0.6, 1.0)
#: Section 5.5: "We obtain nmax = 6 with Zipf = 1, 19 with 0.6 and 40
#: with 0.4."
PAPER_NMAX = {1.0: 6, 0.6: 19, 0.4: 40}


def run(card_a: int = PAPER_CARD_A, card_b: int = PAPER_CARD_B,
        degree: int = PAPER_DEGREE,
        thread_counts: tuple[int, ...] = PAPER_THREAD_COUNTS,
        thetas: tuple[float, ...] = PAPER_THETAS,
        processors: int = RESERVED_PROCESSORS,
        strategy: str = "lpt",
        seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 15: speed-up per skew level, nmax in notes."""
    result = ExperimentResult(
        experiment_id="fig15",
        title=(f"IdealJoin speed-up (|A|={card_a}, |B'|={card_b}, "
               f"degree={degree}, {processors} processors, {strategy})"),
        x_label="threads",
        x_values=tuple(float(n) for n in thread_counts),
    )
    measured_nmax = {}
    for theta in thetas:
        database = make_join_database(card_a, card_b, degree, theta)
        speedups = []
        sequential = None
        profile_nmax = None
        for threads in thread_counts:
            execution = run_ideal_join(database, threads, strategy=strategy,
                                       seed=seed)
            if sequential is None:
                sequential = execution.work
                profile_nmax = nmax_from_costs(
                    execution.operation("join").activation_costs)
            speedups.append(sequential / execution.response_time)
        label = "unskewed" if theta == 0 else f"zipf={theta:g}"
        result.add_series(label, speedups)
        measured_nmax[label] = profile_nmax
    result.add_series("theoretical",
                      [theoretical_speedup(n, processors)
                       for n in thread_counts])
    result.notes["profile_nmax"] = measured_nmax
    result.notes["paper_nmax"] = PAPER_NMAX
    return result
