"""Experiment harness: result series, tables, and shape checks.

Every figure of the paper is regenerated as an
:class:`ExperimentResult`: a set of named series over a common x-axis,
renderable as an aligned text table (the library's equivalent of the
paper's plots) and queryable by the benches' shape assertions.

Set ``REPRO_RECORD_RUNS=1`` to additionally persist a diagnosed
:class:`~repro.diag.registry.RunRecord` for every bench point the
shared runners execute (under ``benchmarks/results/runs/`` or
``$REPRO_RUNS_DIR``) — regenerating a figure then also refreshes the
registry, ready for ``python -m repro compare``.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ReproError

#: Opt-in switch for per-bench-point run recording.
RECORD_RUNS_ENV = "REPRO_RECORD_RUNS"

#: Process-wide sequence so every recorded bench point gets its own id.
_record_sequence = itertools.count(1)


def record_runs_enabled() -> bool:
    """True when ``REPRO_RECORD_RUNS`` asks the runners to record."""
    return os.environ.get(RECORD_RUNS_ENV, "") not in ("", "0")


def record_bench_run(execution, plan_name: str, **workload) -> None:
    """Persist one bench execution to the run registry (best effort).

    Called by the shared runners after each execution when
    :func:`record_runs_enabled`; the run id encodes the plan and the
    workload knobs plus a sequence number, so a sweep leaves one
    record per point.  Imported lazily: benches that never record
    never touch the diagnostics layer.
    """
    from repro.diag.registry import RunRegistry

    parts = [plan_name] + [
        f"{key}={value}" for key, value in sorted(workload.items())]
    run_id = "-".join(parts) + f"-{next(_record_sequence):04d}"
    RunRegistry().record(execution, run_id, workload=dict(workload))


@dataclass(frozen=True)
class Series:
    """One labelled curve of an experiment."""

    label: str
    values: tuple[float, ...]

    def __len__(self) -> int:
        return len(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    @property
    def peak(self) -> float:
        """Alias of :attr:`maximum` (speed-up curve vocabulary)."""
        return max(self.values)

    def spread(self) -> float:
        """(max - min) / min — how flat the curve is (0 = perfectly flat)."""
        low = self.minimum
        if low == 0:
            raise ReproError(f"series {self.label!r} touches zero")
        return (self.maximum - low) / low

    def argmin(self) -> int:
        return min(range(len(self.values)), key=self.values.__getitem__)

    def argmax(self) -> int:
        return max(range(len(self.values)), key=self.values.__getitem__)

    def ceiling(self, tolerance: float = 0.05) -> float:
        """Plateau value: mean of the points within *tolerance* of the
        peak — a robust estimate of a saturating curve's level (the
        nmax plateaus of Figure 15)."""
        peak = self.maximum
        plateau = [v for v in self.values if v >= peak * (1 - tolerance)]
        return sum(plateau) / len(plateau)


@dataclass
class ExperimentResult:
    """All series of one regenerated figure."""

    experiment_id: str
    title: str
    x_label: str
    x_values: tuple[float, ...]
    series: list[Series] = field(default_factory=list)
    notes: dict[str, object] = field(default_factory=dict)

    def add_series(self, label: str, values: Sequence[float]) -> Series:
        if len(values) != len(self.x_values):
            raise ReproError(
                f"series {label!r} has {len(values)} points for "
                f"{len(self.x_values)} x values")
        s = Series(label, tuple(float(v) for v in values))
        self.series.append(s)
        return s

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise ReproError(
            f"no series {label!r} in {self.experiment_id}; "
            f"have {[s.label for s in self.series]}")

    def x_at(self, index: int) -> float:
        return self.x_values[index]

    # -- presentation ------------------------------------------------------

    def render(self, precision: int = 3) -> str:
        """Aligned text table: one row per x value, one column per series."""
        headers = [self.x_label] + [s.label for s in self.series]
        rows = []
        for i, x in enumerate(self.x_values):
            row = [_format_number(x, precision)]
            row += [_format_number(s.values[i], precision) for s in self.series]
            rows.append(row)
        widths = [max(len(headers[c]), *(len(r[c]) for r in rows))
                  for c in range(len(headers))]
        lines = [f"{self.experiment_id}: {self.title}"]
        lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        for key, value in self.notes.items():
            lines.append(f"note: {key} = {value}")
        return "\n".join(lines)


def _format_number(value: float, precision: int) -> str:
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.{precision}f}"


def crossover_index(series_a: Series, series_b: Series) -> int | None:
    """First index where ``a`` stops being below ``b`` (None if never).

    Used to locate "X wins until degree d, then Y wins" claims.
    """
    was_below = None
    for i, (a, b) in enumerate(zip(series_a.values, series_b.values)):
        below = a < b
        if was_below is True and not below:
            return i
        was_below = below if was_below is None else was_below
    return None
