"""Figure 14: AssocJoin speed-up versus number of threads.

A = 200K (skewed or not), B' = 20K, 200 fragments, nested loop; 70 of
the KSR1's 72 processors reserved; threads from 1 (sequential) to 100.

Paper shapes to reproduce:

* near-linear speed-up to ~70 threads for **both** unskewed and fully
  skewed (Zipf = 1) data — the 20,000 tuple activations absorb skew
  (measured deviation under ~5%; equation (3) bounds it at 11.7%);
* no benefit past 70 threads (speed-up flattens or dips slightly).
"""

from __future__ import annotations

from repro.analysis.speedup import theoretical_speedup
from repro.bench.harness import ExperimentResult
from repro.bench.runners import RESERVED_PROCESSORS, run_assoc_join
from repro.bench.workloads import make_join_database

PAPER_THREAD_COUNTS = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
PAPER_CARD_A = 200_000
PAPER_CARD_B = 20_000
PAPER_DEGREE = 200
PAPER_THETAS = (0.0, 1.0)
#: Equation (3) worked example: v = 34 * 69 / 20000 = 0.117 at 70
#: threads, Zipf = 1; measurements never exceeded ~5%.
PAPER_V_BOUND_AT_70 = 0.117


def run(card_a: int = PAPER_CARD_A, card_b: int = PAPER_CARD_B,
        degree: int = PAPER_DEGREE,
        thread_counts: tuple[int, ...] = PAPER_THREAD_COUNTS,
        thetas: tuple[float, ...] = PAPER_THETAS,
        processors: int = RESERVED_PROCESSORS,
        seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 14: speed-up per skew level plus theoretical."""
    result = ExperimentResult(
        experiment_id="fig14",
        title=(f"AssocJoin speed-up (|A|={card_a}, |B'|={card_b}, "
               f"degree={degree}, {processors} processors)"),
        x_label="threads",
        x_values=tuple(float(n) for n in thread_counts),
    )
    sequential_times = {}
    for theta in thetas:
        database = make_join_database(card_a, card_b, degree, theta)
        speedups = []
        sequential = None
        for threads in thread_counts:
            execution = run_assoc_join(database, threads, strategy="random",
                                       seed=seed)
            if sequential is None:
                # The un-dilated activation work is skew- and
                # thread-independent: the Tseq baseline.
                sequential = execution.work
            speedups.append(sequential / execution.response_time)
        label = "unskewed" if theta == 0 else f"zipf={theta:g}"
        result.add_series(label, speedups)
        sequential_times[label] = sequential
    result.add_series("theoretical",
                      [theoretical_speedup(n, processors)
                       for n in thread_counts])
    result.notes["sequential_times"] = sequential_times
    result.notes["paper_v_bound_at_70"] = PAPER_V_BOUND_AT_70
    return result
