"""Regenerate every figure and archive the series tables.

Usage::

    python -m repro.bench.reporting [--scale small|paper] [--out DIR]

Runs the figure experiments (Figures 8/9 and 12-19, plus the
concurrent-workload sweep) and writes
one text table per figure under ``--out`` (default
``benchmarks/results``), plus a combined ``all_figures.txt``.  The
``paper`` scale uses the paper's exact cardinalities and sweeps; the
``small`` scale is a few-minutes-on-a-laptop variant that preserves
every qualitative shape.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Callable

from repro.bench import (
    fig08_remote_access,
    fig12_assocjoin_skew,
    fig13_idealjoin_skew,
    fig14_assocjoin_speedup,
    fig15_idealjoin_speedup,
    fig16_partitioning_overhead,
    fig17_partitioning_index,
    fig18_skew_overhead_degree,
    fig19_saved_time,
    fig_concurrent,
)
from repro.bench.harness import ExperimentResult

#: (figure id, paper-scale runner, small-scale runner)
EXPERIMENTS: list[tuple[str, Callable[[], ExperimentResult],
                        Callable[[], ExperimentResult]]] = [
    ("fig08_09",
     fig08_remote_access.run,
     lambda: fig08_remote_access.run(cardinality=50_000)),
    ("fig12",
     fig12_assocjoin_skew.run,
     lambda: fig12_assocjoin_skew.run(card_a=50_000, card_b=5_000)),
    ("fig13",
     fig13_idealjoin_skew.run,
     lambda: fig13_idealjoin_skew.run(card_a=50_000, card_b=5_000)),
    ("fig14",
     fig14_assocjoin_speedup.run,
     lambda: fig14_assocjoin_speedup.run(card_a=100_000, card_b=10_000,
                                         thread_counts=(10, 30, 50, 70, 100))),
    ("fig15",
     fig15_idealjoin_speedup.run,
     lambda: fig15_idealjoin_speedup.run(card_a=100_000, card_b=10_000,
                                         thread_counts=(10, 30, 50, 70, 100))),
    ("fig16",
     fig16_partitioning_overhead.run,
     lambda: fig16_partitioning_overhead.run(degrees=(20, 250, 500, 1000, 1500))),
    ("fig17",
     fig17_partitioning_index.run,
     lambda: fig17_partitioning_index.run(card_a=200_000, card_b=20_000,
                                          degrees=(40, 250, 500, 1000, 1500))),
    ("fig18",
     fig18_skew_overhead_degree.run,
     lambda: fig18_skew_overhead_degree.run(
         degrees=(40, 100, 250, 500, 1000, 1500))),
    ("fig19",
     fig19_saved_time.run,
     lambda: fig19_saved_time.run(degrees=(40, 100, 250, 500, 1000, 1500))),
    ("fig_concurrent",
     lambda: fig_concurrent.run(fig_concurrent.PAPER_CARD_A,
                                fig_concurrent.PAPER_CARD_B,
                                fig_concurrent.PAPER_DEGREE),
     fig_concurrent.run),
]


def generate_all(scale: str = "small",
                 out_dir: pathlib.Path | None = None,
                 stream=sys.stdout) -> list[ExperimentResult]:
    """Run every experiment at *scale*; write tables; return results."""
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    results = []
    combined = []
    for figure_id, paper_run, small_run in EXPERIMENTS:
        runner = paper_run if scale == "paper" else small_run
        started = time.time()
        result = runner()
        elapsed = time.time() - started
        results.append(result)
        table = result.render()
        combined.append(table)
        print(f"[{figure_id}] regenerated in {elapsed:.1f}s wall time",
              file=stream)
        print(table, file=stream)
        print(file=stream)
        if out_dir is not None:
            (out_dir / f"{result.experiment_id}.txt").write_text(table + "\n")
    if out_dir is not None:
        (out_dir / "all_figures.txt").write_text("\n\n".join(combined) + "\n")
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's figures")
    parser.add_argument("--scale", choices=("small", "paper"),
                        default="small",
                        help="workload scale (paper = exact cardinalities)")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/results"),
                        help="directory for the rendered tables")
    args = parser.parse_args(argv)
    generate_all(args.scale, args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
