"""Shared experiment runners.

Thin wrappers that build the paper's two plans over a
:class:`~repro.bench.workloads.JoinDatabase`, schedule them with the
adaptive scheduler (strategy overridable, as the experiments fix
Random or LPT explicitly), and execute on a uniform 72-processor
machine unless told otherwise.
"""

from __future__ import annotations

from repro.bench.harness import record_bench_run, record_runs_enabled
from repro.bench.workloads import JoinDatabase
from repro.engine.executor import (
    ExecutionOptions,
    Executor,
    ObservabilityOptions,
    QuerySchedule,
)
from repro.engine.metrics import QueryExecution
from repro.lera.operators import JOIN_NESTED_LOOP
from repro.lera.plans import assoc_join_plan, ideal_join_plan
from repro.machine.machine import Machine
from repro.scheduler.adaptive import AdaptiveScheduler
from repro.workload.engine import (
    QuerySubmission,
    WorkloadExecutor,
    WorkloadResult,
)
from repro.workload.options import WorkloadOptions

#: The experiments reserve 70 of the KSR1's 72 processors (Section 5.5).
RESERVED_PROCESSORS = 70


def default_machine(processors: int = RESERVED_PROCESSORS) -> Machine:
    """A uniform shared-memory machine, as the join experiments assume
    (the Allcache penalty is the subject of Figures 8-9 only)."""
    return Machine.uniform(processors=processors)


def run_ideal_join(database: JoinDatabase, threads: int,
                   strategy: str | None = None,
                   algorithm: str = JOIN_NESTED_LOOP,
                   machine: Machine | None = None,
                   seed: int = 0, observe: bool = False) -> QueryExecution:
    """Execute IdealJoin over *database* with *threads* threads."""
    machine = machine or default_machine()
    recording = record_runs_enabled()
    plan = ideal_join_plan(database.entry_a, database.entry_b, "key", "key",
                           algorithm=algorithm)
    schedule = AdaptiveScheduler(machine).schedule(plan, threads)
    if strategy is not None:
        schedule = schedule.with_strategy("join", strategy)
    executor = Executor(machine, ExecutionOptions(
        seed=seed,
        observability=ObservabilityOptions(observe=observe or recording)))
    execution = executor.execute(plan, schedule)
    if recording:
        record_bench_run(execution, "ideal_join", threads=threads,
                         strategy=strategy or "default",
                         theta=database.theta, degree=database.degree)
    return execution


def run_assoc_join(database: JoinDatabase, threads: int,
                   strategy: str | None = None,
                   algorithm: str = JOIN_NESTED_LOOP,
                   machine: Machine | None = None,
                   seed: int = 0, observe: bool = False) -> QueryExecution:
    """Execute AssocJoin (Transmit + pipelined join) over *database*."""
    machine = machine or default_machine()
    recording = record_runs_enabled()
    plan = assoc_join_plan(database.entry_a, database.entry_b, "key", "key",
                           algorithm=algorithm)
    schedule = AdaptiveScheduler(machine).schedule(plan, threads)
    if strategy is not None:
        schedule = schedule.with_strategy("join", strategy)
    executor = Executor(machine, ExecutionOptions(
        seed=seed,
        observability=ObservabilityOptions(observe=observe or recording)))
    execution = executor.execute(plan, schedule)
    if recording:
        record_bench_run(execution, "assoc_join", threads=threads,
                         strategy=strategy or "default",
                         theta=database.theta, degree=database.degree)
    return execution


def run_concurrent_workload(database: JoinDatabase, count: int,
                            threads: int | None = None,
                            machine: Machine | None = None,
                            workload: WorkloadOptions | None = None,
                            seed: int = 0,
                            observe: bool = False) -> WorkloadResult:
    """Execute *count* queries concurrently in one shared simulation.

    The queries alternate the paper's two disciplines (triggered
    IdealJoin, pipelined AssocJoin) over *database*, each scheduled
    independently by the adaptive scheduler; the workload layer then
    splits the machine across them and re-grants threads as they
    complete.  With ``REPRO_RECORD_RUNS`` every per-query execution is
    persisted to the diagnostics run registry, like the single-query
    runners do.
    """
    machine = machine or default_machine()
    recording = record_runs_enabled()
    scheduler = AdaptiveScheduler(machine)
    builders = (ideal_join_plan, assoc_join_plan)
    submissions = []
    for index in range(count):
        builder = builders[index % len(builders)]
        plan = builder(database.entry_a, database.entry_b, "key", "key")
        schedule = scheduler.schedule(plan, threads)
        submissions.append(QuerySubmission(f"q{index}", _compiled(plan),
                                           schedule))
    options = ExecutionOptions(
        seed=seed,
        observability=ObservabilityOptions(observe=observe or recording))
    executor = WorkloadExecutor(machine, options, workload)
    result = executor.execute(submissions)
    if recording:
        for tag in result.order:
            record_bench_run(result.execution(tag), "concurrent",
                             mpl=count, tag=tag,
                             theta=database.theta, degree=database.degree)
    return result


def run_overlap_workload(databases: list[JoinDatabase], overlap: float,
                         shared: bool, threads: int | None = None,
                         machine: Machine | None = None,
                         seed: int = 0) -> WorkloadResult:
    """One MPL-``len(databases)`` workload with controlled scan overlap.

    Query ``i`` is the triggered IdealJoin over ``databases[0]`` when
    ``i < round(overlap * mpl)`` and over its own ``databases[i]``
    otherwise, so *overlap* is exactly the fraction of queries whose
    scans (and join — the plans are identical) can fold onto common
    work.  At ``overlap=0.0`` every query reads disjoint fragments and
    the fold pass finds nothing; at ``overlap=1.0`` the whole workload
    is one physical query fanned out ``mpl`` ways.  All queries arrive
    at t=0 with the admission bound lifted to the MPL, so every
    duplicate lands inside the foldability window.
    """
    count = len(databases)
    machine = machine or default_machine()
    scheduler = AdaptiveScheduler(machine)
    common = round(overlap * count)
    submissions = []
    for index in range(count):
        database = databases[0] if index < common else databases[index]
        plan = ideal_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        schedule = scheduler.schedule(plan, threads)
        submissions.append(QuerySubmission(f"q{index}", _compiled(plan),
                                           schedule))
    options = ExecutionOptions(seed=seed)
    workload = WorkloadOptions(max_concurrent=count, shared=shared)
    return WorkloadExecutor(machine, options, workload).execute(submissions)


def _compiled(plan):
    """Wrap a bench plan for the workload engine (no row shaping)."""
    from repro.compiler.parallelizer import CompiledQuery
    return CompiledQuery(plan, None, None, "bench workload")


def chain_ideal_time(execution: QueryExecution) -> float:
    """Analytic ``Tideal`` for a (possibly pipelined) chain execution.

    Operations of one chain run concurrently, so the chain cannot
    finish before its slowest operation's ideal time; start-up is
    sequential and adds on top (equation 1 applied to the bottleneck).
    """
    bottleneck = max(
        op.profile().ideal_time(op.threads) * execution.dilation
        for op in execution.operations.values())
    return execution.startup_time + bottleneck


def chain_worst_time(execution: QueryExecution) -> float:
    """Analytic ``Tworst`` (equation 2) applied to the bottleneck op."""
    bottleneck = max(
        op.profile().worst_time(op.threads) * execution.dilation
        for op in execution.operations.values())
    return execution.startup_time + bottleneck


def sequential_time(execution: QueryExecution) -> float:
    """The Tseq baseline: total un-dilated activation work.

    A perfectly sequential execution does exactly this work with no
    queue machinery, idling, or parallel start-up — the reference the
    paper's speed-up figures divide by.
    """
    return execution.work
