"""Experiment harness regenerating every figure of the evaluation."""

from repro.bench import (
    fig08_remote_access,
    fig12_assocjoin_skew,
    fig13_idealjoin_skew,
    fig14_assocjoin_speedup,
    fig15_idealjoin_speedup,
    fig16_partitioning_overhead,
    fig17_partitioning_index,
    fig18_skew_overhead_degree,
    fig19_saved_time,
)
from repro.bench.harness import ExperimentResult, Series, crossover_index
from repro.bench.repeat import Measurement, measure_series, repeat
from repro.bench.runners import (
    RESERVED_PROCESSORS,
    chain_ideal_time,
    chain_worst_time,
    default_machine,
    run_assoc_join,
    run_ideal_join,
    sequential_time,
)
from repro.bench.workloads import (
    JOIN_SCHEMA,
    JoinDatabase,
    make_join_database,
    make_selection_table,
    skewed_fragments,
)

__all__ = [
    "ExperimentResult",
    "JOIN_SCHEMA",
    "JoinDatabase",
    "Measurement",
    "RESERVED_PROCESSORS",
    "Series",
    "chain_ideal_time",
    "chain_worst_time",
    "crossover_index",
    "default_machine",
    "fig08_remote_access",
    "fig12_assocjoin_skew",
    "fig13_idealjoin_skew",
    "fig14_assocjoin_speedup",
    "fig15_idealjoin_speedup",
    "fig16_partitioning_overhead",
    "fig17_partitioning_index",
    "fig18_skew_overhead_degree",
    "fig19_saved_time",
    "make_join_database",
    "make_selection_table",
    "measure_series",
    "repeat",
    "run_assoc_join",
    "run_ideal_join",
    "sequential_time",
    "skewed_fragments",
]
