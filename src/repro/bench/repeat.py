"""Repeated measurements, as the paper does.

"We repeated each measurement six times and took the average result"
(Section 5.3).  The engine's Random consumption strategy makes skewed
executions seed-sensitive, so experiments that quote a single number
should quote a :class:`Measurement` instead: mean, spread and the raw
samples over several seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ReproError

#: The paper's repetition count.
PAPER_REPETITIONS = 6


@dataclass(frozen=True)
class Measurement:
    """Aggregate of repeated runs of one experiment point."""

    samples: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.samples:
            raise ReproError("a measurement needs at least one sample")

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    @property
    def std(self) -> float:
        """Sample standard deviation (0 for a single sample)."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((s - mean) ** 2 for s in self.samples) / (n - 1))

    @property
    def relative_spread(self) -> float:
        """(max - min) / mean — the measurement-noise indicator."""
        mean = self.mean
        if mean == 0:
            return 0.0
        return (self.maximum - self.minimum) / mean

    def confidence_halfwidth(self, z: float = 1.96) -> float:
        """Half-width of the ~95% normal confidence interval."""
        return z * self.std / math.sqrt(len(self.samples))

    def __repr__(self) -> str:
        return (f"Measurement(mean={self.mean:.4f}, std={self.std:.4f}, "
                f"n={len(self.samples)})")


def repeat(run: Callable[[int], float],
           repetitions: int = PAPER_REPETITIONS,
           seeds: Sequence[int] | None = None) -> Measurement:
    """Run ``run(seed)`` for several seeds and aggregate the results.

    Args:
        run: Maps an RNG seed to one measured value (typically a
            response time).
        repetitions: Number of runs when *seeds* is not given.
        seeds: Explicit seeds (overrides *repetitions*).
    """
    if seeds is None:
        if repetitions < 1:
            raise ReproError(f"repetitions must be >= 1, got {repetitions}")
        seeds = range(repetitions)
    return Measurement(tuple(float(run(seed)) for seed in seeds))


def measure_series(run: Callable[[object, int], float],
                   x_values: Sequence[object],
                   repetitions: int = PAPER_REPETITIONS) -> list[Measurement]:
    """Repeat a parameterized experiment along an x-axis.

    ``run(x, seed)`` is executed *repetitions* times per x value;
    returns one :class:`Measurement` per point, in order.
    """
    return [repeat(lambda seed, _x=x: run(_x, seed), repetitions)
            for x in x_values]
