"""The classic Wisconsin benchmark query set, adapted to this engine.

[Bitton83] defines a fixed query suite over the DewittA/DewittB
("A", "Bprime") relations; the paper runs its experiments on these
relations.  This module provides the suite's canonical shapes as
ready-to-run workloads:

* ``sel_1pct`` / ``sel_10pct`` — selections with 1% / 10% selectivity
  (queries 1 and 3 of the benchmark, without output to screen);
* ``join_a_bprime`` — the two-relation join on ``unique1``
  (query 9's shape: |Bprime| = |A| / 10, every Bprime tuple matches);
* ``join_a_sel_bprime`` — join with a 10% restriction on the streamed
  operand (the selJoin family), compiling to the Figure 1 pipeline;
* ``agg_min_grouped`` — the MIN aggregate with grouping (query 18's
  shape).

Each function returns a ready :class:`WisconsinQuery` bundling the
SQL, the expected cardinality, and the database handle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.database import DBS3
from repro.core.results import QueryResult
from repro.storage.wisconsin import generate_wisconsin


@dataclass(frozen=True)
class WisconsinQuery:
    """One benchmark query, ready to execute."""

    name: str
    sql: str
    expected_cardinality: int
    db: DBS3

    def run(self, threads: int | None = None,
            algorithm: str = "nested_loop") -> QueryResult:
        """Execute and sanity-check the cardinality."""
        result = self.db.query(self.sql, threads=threads,
                               algorithm=algorithm)
        if result.cardinality != self.expected_cardinality:
            raise AssertionError(
                f"{self.name}: got {result.cardinality} rows, benchmark "
                f"defines {self.expected_cardinality}")
        return result


def make_database(cardinality: int = 10_000, degree: int = 50,
                  processors: int = 32, seed: int = 11) -> DBS3:
    """A and Bprime, the benchmark's standard pair (|Bprime| = |A|/10).

    Both hash partitioned on ``unique1`` with the same degree, the
    regime of the paper's IdealJoin experiments.
    """
    db = DBS3(processors=processors)
    db.create_table(generate_wisconsin("A", cardinality, seed=seed),
                    "unique1", degree)
    db.create_table(generate_wisconsin("Bprime", cardinality // 10,
                                       seed=seed + 1),
                    "unique1", degree)
    return db


def sel_1pct(db: DBS3) -> WisconsinQuery:
    """1% selection on A via the onePercent attribute."""
    cardinality = db.table("A").cardinality
    return WisconsinQuery(
        name="sel_1pct",
        sql="SELECT * FROM A WHERE onePercent = 7",
        expected_cardinality=cardinality // 100,
        db=db,
    )


def sel_10pct(db: DBS3) -> WisconsinQuery:
    """10% selection on A via the tenPercent attribute."""
    cardinality = db.table("A").cardinality
    return WisconsinQuery(
        name="sel_10pct",
        sql="SELECT * FROM A WHERE tenPercent = 3",
        expected_cardinality=cardinality // 10,
        db=db,
    )


def join_a_bprime(db: DBS3) -> WisconsinQuery:
    """joinABprime: every Bprime tuple finds its unique A partner."""
    return WisconsinQuery(
        name="join_a_bprime",
        sql="SELECT * FROM A JOIN Bprime ON A.unique1 = Bprime.unique1",
        expected_cardinality=db.table("Bprime").cardinality,
        db=db,
    )


def join_a_sel_bprime(db: DBS3) -> WisconsinQuery:
    """joinAselBprime: restrict Bprime to 10% before joining.

    Compiles to the filter-join pipeline (the filtered operand
    streams), so this is the benchmark query exercising Figure 1.
    """
    return WisconsinQuery(
        name="join_a_sel_bprime",
        sql=("SELECT * FROM A JOIN Bprime ON A.unique1 = Bprime.unique1 "
             "WHERE Bprime.tenPercent = 3"),
        expected_cardinality=db.table("Bprime").cardinality // 10,
        db=db,
    )


def agg_min_grouped(db: DBS3) -> WisconsinQuery:
    """MIN with 100 groups (the benchmark's grouped-aggregate shape)."""
    return WisconsinQuery(
        name="agg_min_grouped",
        sql="SELECT onePercent, MIN(unique1) FROM A GROUP BY onePercent",
        expected_cardinality=100,
        db=db,
    )


def standard_suite(db: DBS3 | None = None) -> list[WisconsinQuery]:
    """The full adapted suite over one shared database."""
    if db is None:
        db = make_database()
    return [sel_1pct(db), sel_10pct(db), join_a_bprime(db),
            join_a_sel_bprime(db), agg_min_grouped(db)]
