"""Figures 8 & 9: impact of the Allcache remote-access penalty.

A parallel selection over a 200K-tuple Wisconsin relation (DewittA)
runs twice per thread count — once with every fragment pre-cached in
the local cache of the thread that owns its queue ("local", Tl) and
once with all fragments starting remote ("remote", Tr).

Paper shapes to reproduce:

* ``Tr - Tl`` is ~4% of total execution time (small overhead);
* ``Tr - Tl`` *decreases* with the number of threads (the line
  shipping is parallelized across threads);
* below ~5 threads the per-thread data share exceeds the local cache,
  so a fully local execution cannot be obtained (Tr ~= Tl).
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.bench.workloads import make_selection_table
from repro.engine.executor import (
    PLACEMENT_COLD,
    PLACEMENT_WARM,
    ExecutionOptions,
    Executor,
    QuerySchedule,
)
from repro.lera.plans import selection_plan
from repro.lera.predicates import attribute_predicate
from repro.machine.machine import Machine
from repro.storage.catalog import Catalog
from repro.storage.partitioning import PartitioningSpec
from repro.storage.wisconsin import generate_wisconsin

#: Paper reference values (read off Figures 8 and 9).
PAPER_DELTA_FRACTION = 0.04     # Tr - Tl ~= 4% of total time
PAPER_THREAD_COUNTS = (5, 10, 15, 20, 25, 30)


def run(cardinality: int = 200_000, degree: int = 200,
        thread_counts: tuple[int, ...] = PAPER_THREAD_COUNTS,
        seed: int = 7) -> ExperimentResult:
    """Regenerate Figures 8/9; returns Tl, Tr and Tr - Tl series."""
    catalog = Catalog(disk_count=8)
    relation = generate_wisconsin("DewittA", cardinality, seed=seed,
                                  with_strings=True)
    entry = catalog.register(relation, PartitioningSpec.on("unique1", degree))
    predicate = attribute_predicate(relation.schema, "unique2", "<",
                                    max(1, cardinality // 100),
                                    selectivity=0.01)
    plan = selection_plan(entry, predicate)

    local_times = []
    remote_times = []
    for threads in thread_counts:
        schedule = QuerySchedule.for_plan(plan, threads)
        times = {}
        for placement in (PLACEMENT_WARM, PLACEMENT_COLD):
            machine = Machine.ksr1(processors=72)
            executor = Executor(machine, ExecutionOptions(placement=placement))
            times[placement] = executor.execute(plan, schedule).response_time
        local_times.append(times[PLACEMENT_WARM])
        remote_times.append(times[PLACEMENT_COLD])

    result = ExperimentResult(
        experiment_id="fig08_09",
        title=(f"Local vs remote data access, {cardinality}-tuple selection "
               f"(KSR1 Allcache)"),
        x_label="threads",
        x_values=tuple(float(n) for n in thread_counts),
    )
    result.add_series("Tl (local)", local_times)
    result.add_series("Tr (remote)", remote_times)
    deltas = [r - l for r, l in zip(remote_times, local_times)]
    result.add_series("Tr - Tl", deltas)
    result.notes["delta_fraction_mean"] = (
        sum(d / r for d, r in zip(deltas, remote_times)) / len(deltas))
    result.notes["paper_delta_fraction"] = PAPER_DELTA_FRACTION
    return result


def run_small_thread_counts(cardinality: int = 200_000, degree: int = 200,
                            seed: int = 7) -> ExperimentResult:
    """The Section 5.2 remark: under ~5 threads, Tl cannot beat Tr.

    Per-thread data exceeds the local cache, so even the "local"
    placement spills and ships lines; Tr/Tl converges toward 1.
    """
    return run(cardinality, degree, thread_counts=(2, 3, 4, 6, 8), seed=seed)
