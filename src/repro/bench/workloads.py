"""Experiment databases.

The paper generated over 50 Wisconsin databases whose tuple
distribution within fragments follows a Zipf law (Section 5.4): for a
degree of skew ``theta`` in [0, 1], fragment ``i`` of the skewed
relation A receives a share proportional to ``1 / i**theta``, while
the second relation B' stays uniform ("it is enough to have only one
skewed relation").

This module builds such databases *constructively*: fragment ``i``
holds exactly the join-key values congruent to ``i`` modulo the
degree, so the skewed placement is still a correct hash partitioning
(the same one the Transmit operator recomputes at run time) and joins
produce verifiable results.  The key invariant — with the paper's
cardinalities every B' key finds exactly one A partner, so the result
cardinality equals |B'| at every skew level — is what the integration
tests check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.catalog import Catalog, TableEntry
from repro.storage.fragment import Fragment
from repro.storage.partitioning import PartitioningSpec
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.skew import zipf_cardinalities
from repro.storage.wisconsin import generate_wisconsin

#: Schema of the synthetic join relations: the join key plus a payload
#: standing in for the rest of the Wisconsin record.
JOIN_SCHEMA = Schema.of_ints("key", "payload")


def skewed_fragments(name: str, total: int, degree: int, theta: float,
                     payload_base: int = 0) -> tuple[Relation, list[Fragment]]:
    """Build one relation with Zipf-skewed fragment cardinalities.

    Fragment ``i`` receives ``zipf_cardinalities(total, degree,
    theta)[i]`` tuples whose keys are ``i, i + degree, i + 2*degree,
    ...`` — all hashing to fragment ``i`` under the engine's stable
    hash, so the placement is a legal hash partitioning.
    """
    cardinalities = zipf_cardinalities(total, degree, theta)
    fragments = []
    rows_all = []
    for i, count in enumerate(cardinalities):
        rows = [(i + degree * j, payload_base + i + degree * j)
                for j in range(count)]
        fragments.append(Fragment(name, i, JOIN_SCHEMA, rows))
        rows_all.extend(rows)
    return Relation(name, JOIN_SCHEMA, rows_all), fragments


@dataclass(frozen=True)
class JoinDatabase:
    """One experiment database: skewed A and uniform B', co-partitioned."""

    entry_a: TableEntry
    entry_b: TableEntry
    theta: float

    @property
    def degree(self) -> int:
        return self.entry_a.degree

    @property
    def expected_matches(self) -> int:
        """Join result cardinality implied by the key construction."""
        a = self.entry_a.statistics.cardinalities
        b = self.entry_b.statistics.cardinalities
        return sum(min(x, y) for x, y in zip(a, b))


def make_join_database(card_a: int, card_b: int, degree: int, theta: float,
                       catalog: Catalog | None = None,
                       name_a: str = "A", name_b: str = "B") -> JoinDatabase:
    """Build and register one skewed join database.

    A (the larger relation) is skewed with *theta*; B' stays uniform.
    Both are hash partitioned on ``key`` with the same *degree*, so
    IdealJoin applies directly and AssocJoin's Transmit re-derives the
    same placement.
    """
    if catalog is None:
        catalog = Catalog(disk_count=8)
    relation_a, fragments_a = skewed_fragments(name_a, card_a, degree, theta)
    relation_b, fragments_b = skewed_fragments(name_b, card_b, degree, 0.0,
                                               payload_base=1_000_000_000)
    spec = PartitioningSpec.on("key", degree)
    entry_a = catalog.register_fragments(relation_a, spec, fragments_a)
    entry_b = catalog.register_fragments(relation_b, spec, fragments_b)
    return JoinDatabase(entry_a, entry_b, theta)


def make_selection_table(cardinality: int = 200_000, degree: int = 200,
                         seed: int = 7, catalog: Catalog | None = None,
                         name: str = "DewittA") -> TableEntry:
    """The Figure 8 workload: a Wisconsin relation for parallel selection."""
    if catalog is None:
        catalog = Catalog(disk_count=8)
    relation = generate_wisconsin(name, cardinality, seed=seed)
    return catalog.register(relation, PartitioningSpec.on("unique1", degree))
