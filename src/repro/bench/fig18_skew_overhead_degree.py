"""Figures 18 & 19: a high degree of partitioning vs skew.

IdealJoin with 20 threads, LPT, Zipf 0.6 against Zipf 0, sweeping the
degree of partitioning.  The measured skew overhead is

    v(0.6) = T(0.6) / T(0) - 1

(equation 1 solved for v), compared against equation (3)'s bound
``vworst = (Pmax/P) * (n - 1) / a`` with ``a = degree``.

Paper shapes to reproduce (Figure 18):

* the nested-loop and temp-index curves are nearly identical — the
  model's skew behaviour does not depend on the join algorithm;
* v falls sharply as the degree grows (smaller activations let LPT
  balance), staying under the analytic vworst;
* pipelined AssocJoin shows v(0.6) < 0.03 at *any* degree
  (Section 5.6.2) — checked by :func:`run_assoc_flatness`.

Figure 19 plots the *time saved* by raising the degree:
``saved(d) = T(0.6, d_min) - T(0.6, d)`` for the temp-index IdealJoin,
to compare against the unskewed execution time T0 (7.34 s in the
paper).
"""

from __future__ import annotations

from repro.analysis.formulas import skew_overhead_bound
from repro.bench.harness import ExperimentResult
from repro.bench.runners import run_assoc_join, run_ideal_join
from repro.bench.workloads import make_join_database
from repro.lera.operators import JOIN_NESTED_LOOP, JOIN_TEMP_INDEX

PAPER_DEGREES = (40, 100, 250, 500, 750, 1000, 1250, 1500)
PAPER_CARD_A = 100_000
PAPER_CARD_B = 10_000
PAPER_THREADS = 20
PAPER_THETA = 0.6
#: Section 5.6.2: AssocJoin's v(0.6) stays below 0.03 at any degree.
PAPER_ASSOC_V_LIMIT = 0.03


def _sweep(card_a: int, card_b: int, degrees: tuple[int, ...], threads: int,
           theta: float, algorithm: str, seed: int) -> dict[float, list[float]]:
    """IdealJoin response times for theta and 0, per degree."""
    times: dict[float, list[float]] = {0.0: [], theta: []}
    for degree in degrees:
        for t in (0.0, theta):
            database = make_join_database(card_a, card_b, degree, t)
            execution = run_ideal_join(database, threads, strategy="lpt",
                                       algorithm=algorithm, seed=seed)
            times[t].append(execution.response_time)
    return times


def run(card_a: int = PAPER_CARD_A, card_b: int = PAPER_CARD_B,
        degrees: tuple[int, ...] = PAPER_DEGREES,
        threads: int = PAPER_THREADS, theta: float = PAPER_THETA,
        seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 18: v(theta) vs degree, both algorithms."""
    result = ExperimentResult(
        experiment_id="fig18",
        title=(f"Skew overhead v({theta:g}) vs degree, IdealJoin "
               f"(|A|={card_a}, |B'|={card_b}, {threads} threads, LPT)"),
        x_label="degree",
        x_values=tuple(float(d) for d in degrees),
    )
    raw_times: dict[str, dict[float, list[float]]] = {}
    for algorithm, label in ((JOIN_NESTED_LOOP, "nested loop"),
                             (JOIN_TEMP_INDEX, "temp index")):
        times = _sweep(card_a, card_b, degrees, threads, theta, algorithm,
                       seed)
        raw_times[label] = times
        overheads = [skewed / base - 1.0
                     for skewed, base in zip(times[theta], times[0.0])]
        result.add_series(f"v ({label})", overheads)

    vworst = []
    for degree in degrees:
        database = make_join_database(card_a, card_b, degree, theta)
        profile_costs = database.entry_a.statistics.cardinalities
        mean = sum(profile_costs) / len(profile_costs)
        vworst.append(skew_overhead_bound(
            activations=degree, mean_cost=mean,
            max_cost=max(profile_costs), threads=threads))
    result.add_series("vworst", vworst)
    result.notes["raw_times"] = raw_times
    return result


def run_saved_time(card_a: int = PAPER_CARD_A, card_b: int = PAPER_CARD_B,
                   degrees: tuple[int, ...] = PAPER_DEGREES,
                   threads: int = PAPER_THREADS, theta: float = PAPER_THETA,
                   seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 19: time saved by raising the degree."""
    times = _sweep(card_a, card_b, degrees, threads, theta, JOIN_TEMP_INDEX,
                   seed)
    skewed = times[theta]
    saved = [skewed[0] - t for t in skewed]
    result = ExperimentResult(
        experiment_id="fig19",
        title=(f"Saved time vs degree, IdealJoin temp index "
               f"(|A|={card_a}, |B'|={card_b}, {threads} threads, "
               f"Zipf {theta:g})"),
        x_label="degree",
        x_values=tuple(float(d) for d in degrees),
    )
    result.add_series("saved time", saved)
    result.add_series("T(0.6)", skewed)
    result.add_series("T(0)", times[0.0])
    result.notes["t0_at_min_degree"] = times[0.0][0]
    return result


def run_assoc_flatness(card_a: int = PAPER_CARD_A, card_b: int = PAPER_CARD_B,
                       degrees: tuple[int, ...] = (40, 250, 750, 1500),
                       threads: int = PAPER_THREADS,
                       theta: float = PAPER_THETA,
                       seed: int = 0) -> ExperimentResult:
    """Section 5.6.2's check: AssocJoin's v(0.6) < 0.03 at any degree."""
    overheads = []
    for degree in degrees:
        base = run_assoc_join(make_join_database(card_a, card_b, degree, 0.0),
                              threads, seed=seed).response_time
        skewed = run_assoc_join(
            make_join_database(card_a, card_b, degree, theta),
            threads, seed=seed).response_time
        overheads.append(skewed / base - 1.0)
    result = ExperimentResult(
        experiment_id="fig18_assoc",
        title=f"AssocJoin skew overhead v({theta:g}) vs degree",
        x_label="degree",
        x_values=tuple(float(d) for d in degrees),
    )
    result.add_series("v", overheads)
    result.notes["paper_limit"] = PAPER_ASSOC_V_LIMIT
    return result
