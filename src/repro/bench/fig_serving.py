"""Serving under overload: the arrival-rate sweep.

The original evaluation stops at closed batches; a serving system
faces an **open-loop** arrival stream whose rate does not care whether
the machine keeps up.  This experiment drives the engine through
saturation and past it, contrasting three disciplines over the same
seeded arrival sequence and template mix:

* **FIFO baseline** — unbounded queue, no deadlines: the pure
  queueing system.  Past saturation its wait queue grows without
  bound and *every* class's p99 diverges together.
* **EDF + bounded queue** — deadline-aware admission with load
  shedding: doomed or overflow queries are dropped pre-admission, so
  the machine spends itself only on work that can still meet its SLO.
  Goodput (done-within-SLO per virtual second) holds near the
  saturation throughput even at several times the saturating rate.
* **Priority + bounded queue** — strict priority classes: under the
  same overload the highest class keeps its p99 near the unloaded
  value while the FIFO baseline's diverges.

Shapes the overload-protection layer must produce (acceptance-tested
at reduced scale):

* EDF goodput at 2x saturation >= 80 % of the saturation throughput;
* the priority policy's top-class p99 stays within its SLO at 2x
  while the FIFO baseline's exceeds it;
* the whole run — arrivals, admissions, sheds — is byte-identical
  across twin runs of the same seed (:func:`repro.serve.harness
  .decision_digest`).

The machine is deliberately small (8 processors, MPL 2): overload
must be *reachable* at rates the simulation sweeps in seconds.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.bench.runners import default_machine
from repro.engine.executor import ExecutionOptions
from repro.machine.machine import Machine
from repro.obs.metrics import percentile
from repro.serve.harness import (
    build_submissions,
    default_templates,
    run_serving,
    serving_stats,
)
from repro.serve.policies import ServingPolicy
from repro.workload.engine import WorkloadExecutor
from repro.workload.options import WorkloadOptions

#: Arrival-rate multipliers over the measured saturation throughput.
MULTIPLIERS = (0.5, 1.0, 1.5, 2.0, 3.0)

#: Queries per sweep point.  The serving layer is built for thousands
#: of queries per run; the acceptance tests shrink this for CI.
COUNT = 1000

#: The constrained serving machine (see module docstring).
PROCESSORS = 8
MAX_CONCURRENT = 2

#: Bounded wait-queue depth of the protected configurations.
QUEUE_LIMIT = 6


def serving_machine(processors: int = PROCESSORS) -> Machine:
    return Machine.uniform(processors=processors)


def measure_saturation(templates, machine=None, count: int = 200,
                       seed: int = 0,
                       max_concurrent: int = MAX_CONCURRENT) -> float:
    """Saturation throughput of the mix: a closed batch, all at t=0.

    With every query already waiting, the machine is never idle, so
    ``count / makespan`` is the maximum completion rate this mix can
    sustain — the y-axis ceiling every open-loop sweep point is
    measured against.
    """
    machine = machine or serving_machine()
    submissions = build_submissions(default_templates() if templates is None
                                    else templates,
                                    [0.0] * count, machine=machine,
                                    seed=seed, timeouts=False)
    workload = WorkloadOptions(max_concurrent=max_concurrent,
                               serving=ServingPolicy())
    result = WorkloadExecutor(machine, ExecutionOptions(seed=seed),
                              workload).execute(submissions)
    return count / result.makespan


def _class_p99(result, prefix: str) -> float:
    """p99 latency of completed queries whose tag starts with *prefix*."""
    values = [execution.response_time
              for tag, execution in result.executions.items()
              if tag.startswith(prefix) and execution.status == "done"]
    return percentile(values, 99) if values else float("nan")


def run(count: int = COUNT, seed: int = 0,
        multipliers: tuple[float, ...] = MULTIPLIERS,
        arrival: str = "poisson",
        queue_limit: int = QUEUE_LIMIT) -> ExperimentResult:
    """Regenerate the serving-overload figure."""
    machine = serving_machine()
    templates = default_templates()
    saturation = measure_saturation(templates, machine=machine,
                                    count=min(count, 200), seed=seed)
    result = ExperimentResult(
        experiment_id="fig_serving",
        title=(f"Serving under overload ({arrival} arrivals, "
               f"{count} queries/point, {machine.processors} processors, "
               f"MPL {MAX_CONCURRENT}, queue limit {queue_limit}; "
               f"saturation {saturation:.1f} q/s)"),
        x_label="arrival rate (x saturation)",
        x_values=tuple(float(m) for m in multipliers),
    )
    top_slo = max(t.slo for t in templates if t.slo is not None
                  and t.priority == max(x.priority for x in templates))

    fifo_p99, fifo_top_p99 = [], []
    edf_goodput, edf_shed, edf_done = [], [], []
    prio_top_p99, prio_shed = [], []
    for multiplier in multipliers:
        rate = saturation * multiplier
        baseline = run_serving(
            templates=templates, arrival=arrival, rate=rate, count=count,
            seed=seed, machine=machine, timeouts=False,
            workload=WorkloadOptions(max_concurrent=MAX_CONCURRENT,
                                     serving=ServingPolicy()))
        done = [e.response_time for e in baseline.executions.values()
                if e.status == "done"]
        fifo_p99.append(percentile(done, 99) if done else float("nan"))
        fifo_top_p99.append(_class_p99(baseline, "interactive"))

        edf = run_serving(
            templates=templates, arrival=arrival, rate=rate, count=count,
            seed=seed, machine=machine,
            workload=WorkloadOptions(
                max_concurrent=MAX_CONCURRENT,
                serving=ServingPolicy(policy="edf",
                                      queue_limit=queue_limit)))
        stats = serving_stats(edf)
        edf_goodput.append(stats["goodput"])
        edf_shed.append(stats["statuses"].get("shed", 0))
        edf_done.append(stats["statuses"].get("done", 0))

        priority = run_serving(
            templates=templates, arrival=arrival, rate=rate, count=count,
            seed=seed, machine=machine,
            workload=WorkloadOptions(
                max_concurrent=MAX_CONCURRENT,
                serving=ServingPolicy(policy="priority",
                                      queue_limit=queue_limit)))
        prio_top_p99.append(_class_p99(priority, "interactive"))
        prio_shed.append(
            serving_stats(priority)["statuses"].get("shed", 0))

    result.add_series("fifo_p99_s", fifo_p99)
    result.add_series("fifo_top_class_p99_s", fifo_top_p99)
    result.add_series("edf_goodput_qps", edf_goodput)
    result.add_series("edf_shed", edf_shed)
    result.add_series("edf_done", edf_done)
    result.add_series("priority_top_class_p99_s", prio_top_p99)
    result.add_series("priority_shed", prio_shed)
    result.notes["saturation_qps"] = saturation
    result.notes["top_class_slo_s"] = top_slo
    result.notes["queue_limit"] = queue_limit
    result.notes["count"] = count
    return result


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=COUNT,
                        help="queries per sweep point")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--arrival", choices=("poisson", "mmpp", "diurnal"),
                        default="poisson")
    args = parser.parse_args(argv)
    print(run(count=args.count, seed=args.seed,
              arrival=args.arrival).render())
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
