"""Chaos harness: seeded fault sweeps with invariant checking.

The robustness counterpart of the perf harness: instead of asking *how
fast*, it asks *does anything break*.  :func:`run_chaos` builds a
small multi-query workload, derives a :class:`~repro.faults.FaultPlan`
from one seed (so every chaos run is reproducible bit-for-bit),
injects it into the shared simulation — with one query cancelled
mid-run for good measure — and then audits the wreckage against the
engine's conservation invariants:

* **activation conservation** — per operation,
  ``enqueued == processed + retries + aborts + discarded``; a fault
  may delay or destroy work, but never invent or leak it;
* **monotone virtual time** — every span is well-formed and inside
  the run, the workload event stream never goes backwards;
* **no orphaned threads** — every pool thread of every query emits
  its ``thread.finish``, including cancelled and aborted queries;
* **fault-free-subset parity** — an *empty* fault plan is
  bit-identical to no fault plan at all (the injection hooks are
  free when nothing is injected).

:func:`degradation_curve` is the graceful-degradation experiment: the
same join is executed under a widening processor slowdown, once with
the paper's pooled dynamic consumption (threads steal from the slowed
threads' queues) and once with the static one-thread-per-instance
binding.  Pooled execution must degrade strictly less.

CLI: ``python -m repro chaos --seed 0 --seeds 3`` (exit 1 on any
violation) — also reachable as ``make chaos-demo``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.database import DBS3
from repro.engine.executor import (
    ExecutionOptions,
    Executor,
    ObservabilityOptions,
    OperationSchedule,
    QuerySchedule,
)
from repro.engine.metrics import STATUS_DONE, QueryExecution
from repro.engine.strategies import LPT
from repro.faults import FaultPlan, SlowdownWindow
from repro.obs.bus import THREAD_FINISH
from repro.obs.metrics import (
    FAULT_ABORTS,
    FAULT_MEMORY_EVENTS,
    FAULT_RETRIES,
    FAULTS_INJECTED,
)
from repro.storage.wisconsin import generate_wisconsin
from repro.workload.options import WorkloadOptions

#: The chaos workload: three joins sharing one simulation.
CHAOS_QUERIES = (
    "SELECT * FROM A JOIN B ON A.unique1 = B.unique1",
    "SELECT * FROM C JOIN D ON C.unique1 = D.unique1",
    "SELECT * FROM A JOIN D ON A.unique1 = D.unique1",
)

#: Virtual instant at which the third query is cancelled (roughly
#: mid-flight for the workload sizes below).
CANCEL_AT = 0.08

#: Tolerance for span/endpoint containment checks (floating point).
_EPS = 1e-9


def _chaos_db(observe: bool = True) -> DBS3:
    """The small four-relation database every chaos run executes on."""
    options = ExecutionOptions(observability=ObservabilityOptions(
        trace=observe, observe=observe))
    db = DBS3(processors=48, options=options)
    db.create_table(generate_wisconsin("A", 2_000, seed=1), "unique1",
                    degree=20)
    db.create_table(generate_wisconsin("B", 200, seed=2), "unique1",
                    degree=20)
    db.create_table(generate_wisconsin("C", 1_500, seed=3), "unique1",
                    degree=20)
    db.create_table(generate_wisconsin("D", 150, seed=4), "unique1",
                    degree=20)
    return db


@dataclass
class ChaosReport:
    """Outcome of one seeded chaos run."""

    seed: int
    plan: str
    statuses: dict[str, str]
    makespan: float
    fault_counters: dict[str, float] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [f"chaos seed {self.seed}: "
                 f"{'PASS' if self.passed else 'FAIL'} "
                 f"(makespan {self.makespan:.3f}s virtual)"]
        lines.append(f"  plan     : {self.plan}")
        lines.append("  statuses : " + ", ".join(
            f"{tag}={status}" for tag, status in self.statuses.items()))
        if self.fault_counters:
            lines.append("  faults   : " + ", ".join(
                f"{key}={value:g}"
                for key, value in self.fault_counters.items()))
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


# -- invariants ---------------------------------------------------------------

def fault_counter_totals(result) -> dict[str, float]:
    """Workload-wide fault counters, read off the metrics registry.

    The chaos harness used to re-derive these by walking every
    execution; now the telemetry layer is the source of truth and
    :func:`check_fault_accounting` holds the per-operation counters
    to it.  Empty when the run carried no registry.
    """
    metrics = result.metrics
    if metrics is None:
        return {}
    return {
        "injected": metrics.total(FAULTS_INJECTED),
        "retries": metrics.total(FAULT_RETRIES),
        "aborts": metrics.total(FAULT_ABORTS),
        "memory_events": metrics.total(FAULT_MEMORY_EVENTS),
    }


def check_fault_accounting(result) -> list[str]:
    """Registry fault counters agree with the per-operation metrics.

    The injector increments the registry the moment each fault lands;
    every operation's runtime tallies the same events on its own
    :class:`~repro.engine.metrics.OperationMetrics`.  Two independent
    counts of one fault stream must agree exactly — cancelled queries
    included, since their executions snapshot whatever landed before
    the cut.
    """
    counters = fault_counter_totals(result)
    if not counters:
        return ["chaos run carried no metrics registry — fault "
                "counters cannot be audited"]
    summed = {"injected": 0, "retries": 0, "aborts": 0}
    for tag in result.order:
        for op in result.execution(tag).operations.values():
            summed["injected"] += op.faults_injected
            summed["retries"] += op.fault_retries
            summed["aborts"] += op.fault_aborts
    problems = []
    for key, expected in summed.items():
        if counters[key] != expected:
            problems.append(
                f"fault accounting diverged: registry counts "
                f"{counters[key]:g} {key} but the per-operation "
                f"metrics sum to {expected}")
    return problems


def check_conservation(tag: str, execution: QueryExecution) -> list[str]:
    """``enqueued == processed + retries + aborts + discarded``."""
    problems = []
    for name, op in execution.operations.items():
        enqueued = sum(op.queue_activations)
        accounted = (op.activations + op.fault_retries + op.fault_aborts
                     + op.discarded)
        if enqueued != accounted:
            problems.append(
                f"{tag}/{name}: conservation broken — {enqueued} enqueued "
                f"!= {op.activations} processed + {op.fault_retries} "
                f"retries + {op.fault_aborts} aborts + {op.discarded} "
                f"discarded")
    return problems


def check_monotone_time(tag: str, execution: QueryExecution,
                        makespan: float) -> list[str]:
    """Spans well-formed and inside the run; op windows ordered."""
    problems = []
    for name, op in execution.operations.items():
        if op.finished_at + _EPS < op.started_at:
            problems.append(
                f"{tag}/{name}: finished_at {op.finished_at} before "
                f"started_at {op.started_at}")
        if op.finished_at > makespan + _EPS:
            problems.append(
                f"{tag}/{name}: finished_at {op.finished_at} past the "
                f"makespan {makespan}")
    if execution.trace is not None:
        for span in execution.trace.events:
            if span.end + _EPS < span.start:
                problems.append(
                    f"{tag}: span {span.operation}/{span.kind} runs "
                    f"backwards ({span.start} -> {span.end})")
                break
    return problems


def check_no_orphans(tag: str, execution: QueryExecution) -> list[str]:
    """Every pool thread terminated (cancelled queries included)."""
    if execution.obs is None:
        return []
    problems = []
    finishes: dict[str, int] = {}
    for event in execution.obs.events:
        if event.kind == THREAD_FINISH and event.operation is not None:
            finishes[event.operation] = finishes.get(event.operation, 0) + 1
    for name, op in execution.operations.items():
        finished = finishes.get(name, 0)
        if finished != op.threads:
            problems.append(
                f"{tag}/{name}: {op.threads} threads but {finished} "
                f"thread.finish events — orphaned threads")
    return problems


def check_workload_stream(bus) -> list[str]:
    """The workload event stream never moves backwards in time."""
    last = 0.0
    for event in bus.events:
        if event.t + _EPS < last:
            return [f"workload bus went backwards: {event.kind} at "
                    f"{event.t} after t={last}"]
        last = max(last, event.t)
    return []


def check_empty_plan_parity() -> list[str]:
    """An empty fault plan must be bit-identical to no plan at all."""
    def signature(faults):
        db = _chaos_db(observe=False)
        session = db.session(options=WorkloadOptions(faults=faults))
        for sql in CHAOS_QUERIES:
            session.submit(sql)
        result = session.run()
        return [
            (tag,
             execution.response_time,
             {name: (op.busy_time, op.idle_time, op.polls, op.enqueues,
                     op.dequeue_batches, op.secondary_accesses,
                     op.finished_at)
              for name, op in execution.operations.items()})
            for tag, execution in result.executions.items()
        ], result.makespan

    plain = signature(None)
    empty = signature(FaultPlan(seed=0))
    if plain != empty:
        return ["empty FaultPlan diverged from faults=None — the "
                "injection hooks are not free"]
    return []


# -- the seeded sweep ---------------------------------------------------------

def run_chaos(seed: int, parity: bool = True) -> ChaosReport:
    """One seeded chaos run: inject, cancel, audit.

    The fault plan is drawn deterministically from *seed* (same seed,
    same faults, same virtual trajectory — chaos runs are replayable).
    The third query is cancelled mid-run on top of whatever the plan
    injects, so the cancellation path is exercised under fire.
    """
    db = _chaos_db()
    operations = sorted({node.name
                         for sql in CHAOS_QUERIES
                         for node in db.compile(sql).plan.nodes})
    plan = FaultPlan.generate(seed, operations, horizon=0.4)
    session = db.session(options=WorkloadOptions(faults=plan))
    handles = [session.submit(sql, at=0.01 * i, tag=f"q{i}")
               for i, sql in enumerate(CHAOS_QUERIES)]
    handles[-1].cancel(at=CANCEL_AT)
    result = session.run()

    violations: list[str] = []
    for tag in result.order:
        execution = result.execution(tag)
        violations += check_conservation(tag, execution)
        violations += check_monotone_time(tag, execution, result.makespan)
        violations += check_no_orphans(tag, execution)
    violations += check_workload_stream(result.bus)
    violations += check_fault_accounting(result)
    if result.status_of("q2") not in ("cancelled", "failed"):
        violations.append(
            f"q2 was cancelled at t={CANCEL_AT} but ended "
            f"{result.status_of('q2')!r}")
    for tag in ("q0", "q1"):
        if result.status_of(tag) not in (STATUS_DONE, "failed"):
            violations.append(
                f"{tag} ended {result.status_of(tag)!r}; only the "
                f"injected faults may stop it (done or failed)")
    if parity:
        violations += check_empty_plan_parity()

    return ChaosReport(
        seed=seed,
        plan=plan.describe(),
        statuses={tag: result.status_of(tag) for tag in result.order},
        makespan=result.makespan,
        fault_counters=fault_counter_totals(result),
        violations=violations,
    )


# -- shared-work audit --------------------------------------------------------

#: The shared-work chaos workload: three copies of one join (they fold
#: onto a single physical execution) plus one disjoint join (it must
#: stay private), with the *middle subscriber* cancelled mid-run.
SHARED_CHAOS_DUPLICATES = 3
SHARED_CHAOS_QUERY = CHAOS_QUERIES[0]
SHARED_CHAOS_PRIVATE = CHAOS_QUERIES[1]


def check_shared_orphans(result) -> list[str]:
    """No orphaned threads, fold-aware.

    A folded operation's pool belongs to its host, so its
    ``thread.finish`` events appear on the host's bus only — and a
    subscriber's appearance can even carry ``cost_share == 1.0`` (the
    host finished before anyone else folded in), so share alone does
    not tell private from folded.  The uniform statement: group every
    appearance that did work by its *physical identity* (name, window,
    activation profile); each physical operation must have exactly one
    carrier — one appearance whose bus accounts for all its threads —
    and every other appearance carries none of them.  Appearances that
    never ran (e.g. the query was cancelled while still queued) have
    no threads to orphan and are skipped.
    """
    problems = []
    carriers: dict[tuple, int] = {}
    appearances: dict[tuple, int] = {}
    for tag in result.order:
        execution = result.execution(tag)
        if execution.obs is None:
            continue
        finishes: dict[str, int] = {}
        for event in execution.obs.events:
            if event.kind == THREAD_FINISH and event.operation is not None:
                finishes[event.operation] = (
                    finishes.get(event.operation, 0) + 1)
        for name, op in execution.operations.items():
            finished = finishes.get(name, 0)
            if (finished == 0 and not op.activations and not op.busy_time
                    and not sum(op.queue_activations)):
                continue
            key = (name, op.started_at, op.finished_at, op.activations,
                   round(sum(op.activation_costs), 9))
            appearances[key] = appearances.get(key, 0) + 1
            if finished == op.threads:
                carriers[key] = carriers.get(key, 0) + 1
            elif finished != 0:
                problems.append(
                    f"{tag}/{name}: operation shows {finished} of "
                    f"{op.threads} thread.finish events (must be all of "
                    f"them on the carrier or none on a subscriber)")
    for key, count in appearances.items():
        if carriers.get(key, 0) != 1:
            problems.append(
                f"operation {key[0]!r} with {count} appearances has "
                f"{carriers.get(key, 0)} thread-finish carriers "
                f"(expected exactly one)")
    return problems


def check_shared_attribution(result) -> list[str]:
    """Shared work is counted exactly once across subscribers.

    Folded operations appear in every subscriber's execution with the
    same raw counters but a fractional ``cost_share``; grouping the
    appearances by their physical identity (start, finish, activation
    profile — one folded runtime executes once, so every appearance
    carries identical raw numbers), the shares of one group must never
    sum past 1.0.  A subscriber cancelled before the operation
    finished simply drops its appearance, so the sum may fall short —
    attribution is conservative, never double-counted.
    """
    problems = []
    groups: dict[tuple, list] = {}
    folded_seen = False
    for tag in result.order:
        execution = result.execution(tag)
        for name, op in execution.operations.items():
            if op.cost_share >= 1.0:
                continue
            folded_seen = True
            key = (op.started_at, op.finished_at, op.activations,
                   round(sum(op.activation_costs), 9))
            groups.setdefault(key, []).append((tag, name, op))
    if not folded_seen:
        problems.append(
            "shared chaos run folded nothing — the duplicate queries "
            "should share one physical execution")
    for key, members in groups.items():
        total = sum(op.cost_share for _, _, op in members)
        if total > 1.0 + _EPS:
            who = ", ".join(f"{tag}/{name}" for tag, name, _ in members)
            problems.append(
                f"shared work double-counted: {who} attribute "
                f"{total:.4f} of one operation (> 1.0)")
    return problems


def run_shared_chaos(cancel_at: float = CANCEL_AT) -> ChaosReport:
    """The shared-work conservation audit: fold, cancel, verify.

    Three identical joins fold onto one physical execution while a
    fourth, disjoint join stays private; one *subscriber* (not the
    host) is cancelled mid-run.  The audit then checks the standard
    conservation invariants per query, that shared work is attributed
    at most once across subscribers, and that the surviving
    subscribers' results are exactly what a fault-free private run
    produces — a cancelled co-subscriber must not disturb them.
    """
    db = _chaos_db()
    session = db.session(options=WorkloadOptions(shared=True))
    queries = ([SHARED_CHAOS_QUERY] * SHARED_CHAOS_DUPLICATES
               + [SHARED_CHAOS_PRIVATE])
    handles = [session.submit(sql, tag=f"q{i}")
               for i, sql in enumerate(queries)]
    handles[1].cancel(at=cancel_at)  # a subscriber, not the host (q0)
    result = session.run()

    violations: list[str] = []
    for tag in result.order:
        execution = result.execution(tag)
        violations += check_conservation(tag, execution)
        violations += check_monotone_time(tag, execution, result.makespan)
    violations += check_shared_orphans(result)
    violations += check_workload_stream(result.bus)
    violations += check_shared_attribution(result)

    if result.status_of("q1") != "cancelled":
        violations.append(
            f"q1 was cancelled at t={cancel_at} but ended "
            f"{result.status_of('q1')!r}")
    reference = _chaos_db(observe=False)
    expected = {
        SHARED_CHAOS_QUERY: sorted(reference.query(SHARED_CHAOS_QUERY).rows),
        SHARED_CHAOS_PRIVATE: sorted(
            reference.query(SHARED_CHAOS_PRIVATE).rows),
    }
    for index, sql in enumerate(queries):
        tag = f"q{index}"
        if tag == "q1":
            continue
        if result.status_of(tag) != STATUS_DONE:
            violations.append(
                f"{tag} should survive its co-subscriber's cancellation "
                f"but ended {result.status_of(tag)!r}")
            continue
        rows = sorted(result.execution(tag).result_rows)
        if rows != expected[sql]:
            violations.append(
                f"{tag}: results diverged from the private reference "
                f"run ({len(rows)} vs {len(expected[sql])} rows)")

    return ChaosReport(
        seed=-1,
        plan=(f"shared fold x{SHARED_CHAOS_DUPLICATES} + private join, "
              f"subscriber q1 cancelled at t={cancel_at}"),
        statuses={tag: result.status_of(tag) for tag in result.order},
        makespan=result.makespan,
        violations=violations,
    )


# -- graceful degradation ----------------------------------------------------

@dataclass(frozen=True)
class DegradationPoint:
    """Makespan under one slowdown factor, pooled vs static."""

    factor: float
    pooled: float
    static: float

    @property
    def pooled_ratio(self) -> float:
        return self.pooled / self.static


def degradation_curve(factors: tuple[float, ...] = (1.0, 3.0, 6.0, 12.0),
                      threads: int = 10) -> list[DegradationPoint]:
    """Response time of one join as two of its threads slow down.

    The same compiled join runs under a permanent
    :class:`~repro.faults.SlowdownWindow` on threads 0 and 1 of the
    join pool, once with pooled dynamic consumption (the paper's
    engine: fast threads drain the slowed threads' queues through
    secondary access) and once with the static one-thread-per-instance
    binding (Gamma-style; the slowed threads' work is stranded).  The
    pooled makespan must degrade strictly less at every factor > 1 —
    that is what "graceful" means here.
    """
    db = _chaos_db(observe=False)
    compiled = db.compile(CHAOS_QUERIES[0])
    names = [node.name for node in compiled.plan.nodes]
    join_name = names[-1]
    points = []
    for factor in factors:
        faults = None if factor == 1.0 else FaultPlan(
            seed=0,
            slowdowns=(SlowdownWindow(0.0, float("inf"), factor,
                                      operation=join_name,
                                      thread_ids=(0, 1)),))
        timings = {}
        for label, allow_secondary in (("pooled", True), ("static", False)):
            schedule = QuerySchedule({
                name: OperationSchedule(threads, strategy=LPT,
                                        allow_secondary=allow_secondary)
                for name in names})
            executor = Executor(db.machine, ExecutionOptions(faults=faults))
            execution = executor.execute(compiled.plan, schedule)
            timings[label] = execution.response_time
        points.append(DegradationPoint(factor, timings["pooled"],
                                       timings["static"]))
    return points


def render_degradation(points: list[DegradationPoint]) -> str:
    lines = ["degradation curve (virtual response time, join with 2 "
             "slowed threads):",
             "  factor   pooled      static      pooled/static"]
    for point in points:
        lines.append(f"  {point.factor:6.1f}  {point.pooled:9.4f}s  "
                     f"{point.static:9.4f}s  {point.pooled_ratio:8.3f}")
    return "\n".join(lines)


# -- monitored alert sweep ---------------------------------------------------

#: Headroom of the sweep's calibrated latency SLO over the uniform
#: cell's makespan: the fault-free cell sits comfortably under it,
#: the slowed cells (2 of N threads, statically bound) blow past it.
ALERT_SLO_HEADROOM = 1.2


@dataclass
class AlertCell:
    """One slowdown factor's monitored run in the alert sweep."""

    factor: float
    makespan: float
    alerts: object  # the run's AlertBus
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations


def alert_sweep(factors: tuple[float, ...] = (1.0, 3.0, 6.0, 12.0),
                threads: int = 10) -> list[AlertCell]:
    """Run the slowdown grid with the monitor rules armed.

    The same join as :func:`degradation_curve` (static binding, so the
    slowed threads visibly strand their work) executes once per
    factor through a monitored workload session.  The latency SLO is
    calibrated off the uniform cell — its makespan times
    :data:`ALERT_SLO_HEADROOM` — so the sweep asserts the ISSUE's
    acceptance directly: every faulted cell fires straggler and/or
    SLO alerts, the uniform cell fires none, and the alert log is
    deterministic (each faulted cell is run twice and diffed).
    """
    from repro.engine.executor import ObservabilityOptions
    from repro.obs.monitor import default_monitors

    db = _chaos_db(observe=False)
    compiled = db.compile(CHAOS_QUERIES[0])
    names = [node.name for node in compiled.plan.nodes]
    join_name = names[-1]

    def run_cell(factor: float, rules: tuple):
        faults = None if factor == 1.0 else FaultPlan(
            seed=0,
            slowdowns=(SlowdownWindow(0.0, float("inf"), factor,
                                      operation=join_name,
                                      thread_ids=(0, 1)),))
        schedule = QuerySchedule({
            name: OperationSchedule(threads, strategy=LPT,
                                    allow_secondary=False)
            for name in names})
        session = db.session(options=WorkloadOptions(
            faults=faults,
            observability=ObservabilityOptions(monitors=rules)))
        session.submit(CHAOS_QUERIES[0], schedule=schedule, tag="q0")
        return session.run()

    # Calibrate the SLO on an unmonitored uniform run, then sweep.
    baseline = run_cell(1.0, ())
    rules = default_monitors(slo=baseline.makespan * ALERT_SLO_HEADROOM)

    def alert_signature(bus) -> list[tuple]:
        return [(a.rule, a.key, a.severity, a.fired_at, a.value)
                for a in bus]

    cells = []
    for factor in factors:
        result = run_cell(factor, rules)
        bus = result.alerts
        violations: list[str] = []
        fired = {alert.rule for alert in bus}
        if factor == 1.0:
            if len(bus) != 0:
                violations.append(
                    f"uniform cell fired {len(bus)} alerts: "
                    f"{sorted(fired)} (expected none)")
        else:
            if not fired & {"straggler", "latency_slo"}:
                violations.append(
                    f"slowdown x{factor:g} fired no straggler/SLO alert "
                    f"(rules fired: {sorted(fired) or 'none'})")
            twin = run_cell(factor, rules)
            if alert_signature(twin.alerts) != alert_signature(bus):
                violations.append(
                    f"slowdown x{factor:g} alert log is not "
                    f"deterministic across identical runs")
        cells.append(AlertCell(factor, result.makespan, bus, violations))
    return cells


def render_alert_sweep(cells: list[AlertCell]) -> str:
    lines = ["monitored alert sweep (static join, 2 slowed threads, "
             "SLO calibrated off the uniform cell):",
             "  factor   makespan    alerts"]
    for cell in cells:
        lines.append(f"  {cell.factor:6.1f}  {cell.makespan:9.4f}s  "
                     f"{cell.alerts.summary()}")
        for alert in cell.alerts:
            lines.append(f"           - {alert.rule}/{alert.key}: "
                         f"{alert.message}")
        for violation in cell.violations:
            lines.append(f"  VIOLATION: {violation}")
    return "\n".join(lines)


# -- adaptive-policy sweep ----------------------------------------------------

#: Slowdown grid of the adaptive gate.  The uniform cell (1.0) pins
#: bit-identical static/adaptive parity; every slowed cell must see
#: the adaptive policy strictly beat the static one.
ADAPTIVE_FACTORS = (1.0, 3.0, 6.0, 12.0)

#: Chunked-trigger grain of the scenario's joins: fine-grained
#: activations, so extra producer threads translate into wall-clock
#: progress instead of vanishing into round-count quantization.
ADAPTIVE_GRAIN = 4

#: The query's demanded thread count (its four-step schedule total).
ADAPTIVE_THREADS = 10


def build_adaptive_scenario():
    """A fresh database plus the three-wave chained-join plan.

    The plan is ``join1 -> store1  ||  join2 -> store2  ||  join3`` —
    every wave but the last pairs a triggered producer with a
    pipelined store consumer, which is exactly the shape the adaptive
    controller's queue-wait attribution reads: when the joins run slow
    (the sweep's injected fault), the store pools starve in wave 0 and
    the controller moves their idle threads to ``join2`` at the wave-1
    boundary.  Returns ``(db, plan, output_schema)``; build a fresh
    scenario per run — plans hold runtime fragment state.
    """
    from repro.lera.graph import MATERIALIZED, PIPELINE, LeraGraph
    from repro.lera.operators import JoinSpec, StoreSpec
    from repro.storage.fragment import Fragment

    db = _chaos_db(observe=False)
    entry_a = db.catalog.entry("A")
    entry_b = db.catalog.entry("B")
    entry_c = db.catalog.entry("C")
    entry_d = db.catalog.entry("D")
    graph = LeraGraph()
    graph.add_node("join1", JoinSpec(
        outer_fragments=entry_a.fragments,
        inner_fragments=entry_b.fragments,
        outer_key="unique1", inner_key="unique1",
        grain=ADAPTIVE_GRAIN))
    schema1 = entry_a.relation.schema.concat(entry_b.relation.schema)
    expected1 = min(entry_a.cardinality, entry_b.cardinality)
    target1 = [Fragment("T1", i, schema1) for i in range(entry_c.degree)]
    graph.add_node("store1", StoreSpec(
        target_fragments=target1, stream_schema=schema1,
        key="unique1", expected_cardinality=expected1))
    graph.add_edge("join1", "store1", PIPELINE)
    graph.add_node("join2", JoinSpec(
        outer_fragments=target1, inner_fragments=entry_c.fragments,
        outer_key="unique1", inner_key="unique1",
        grain=ADAPTIVE_GRAIN, outer_expected_total=expected1))
    graph.add_edge("store1", "join2", MATERIALIZED)
    schema2 = schema1.concat(entry_c.relation.schema)
    expected2 = min(expected1, entry_d.cardinality)
    target2 = [Fragment("T2", i, schema2) for i in range(entry_d.degree)]
    graph.add_node("store2", StoreSpec(
        target_fragments=target2, stream_schema=schema2,
        key="unique1", expected_cardinality=expected2))
    graph.add_edge("join2", "store2", PIPELINE)
    graph.add_node("join3", JoinSpec(
        outer_fragments=target2, inner_fragments=entry_d.fragments,
        outer_key="unique1", inner_key="unique1",
        grain=ADAPTIVE_GRAIN, outer_expected_total=expected2))
    graph.add_edge("store2", "join3", MATERIALIZED)
    graph.validate()
    return db, graph, schema2.concat(entry_d.relation.schema)


def run_adaptive_workload(factor: float, policy: str):
    """One cell of the adaptive grid: the chained-join scenario under
    a join slowdown of *factor*, scheduled by *policy*.

    The slowdown hits both producer joins — the same mis-estimation
    persisting across the blocking boundary, which is what makes the
    wave-0 evidence transfer to wave 1.  Returns the
    :class:`~repro.workload.engine.WorkloadResult`.
    """
    from repro.adapt.policy import SchedulingPolicy

    db, plan, schema = build_adaptive_scenario()
    faults = None if factor == 1.0 else FaultPlan(seed=0, slowdowns=(
        SlowdownWindow(0.0, float("inf"), factor, operation="join1"),
        SlowdownWindow(0.0, float("inf"), factor, operation="join2"),
    ))
    session = db.session(options=WorkloadOptions(
        scheduling=SchedulingPolicy(policy=policy), faults=faults))
    session.submit_plan(plan, schema, threads=ADAPTIVE_THREADS, tag="q0")
    return session.run()


@dataclass
class AdaptiveCell:
    """Static vs adaptive makespans under one slowdown factor."""

    factor: float
    static: float
    adaptive: float
    decisions: list = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def win(self) -> float:
        """Fraction of the static makespan the adaptive policy saved."""
        return (self.static - self.adaptive) / self.static


def adaptive_sweep(factors: tuple[float, ...] = ADAPTIVE_FACTORS
                   ) -> list[AdaptiveCell]:
    """The closed-loop gate: adaptive beats static wherever it acts.

    Each factor runs the scenario twice — ``policy="static"`` and
    ``policy="adaptive"`` — and asserts the ISSUE's acceptance
    directly: on every slowed cell the adaptive virtual makespan is
    *strictly* smaller (with at least one recorded resplit decision
    explaining why), on the uniform cell no signal fires and the two
    runs are bit-identical.  Both policies must agree on result rows
    everywhere — adaptivity moves threads, never answers.
    """
    cells = []
    for factor in factors:
        static = run_adaptive_workload(factor, "static")
        adaptive = run_adaptive_workload(factor, "adaptive")
        decisions = (adaptive.decisions.to_json()
                     if adaptive.decisions is not None else [])
        violations: list[str] = []
        static_rows = sorted(static.execution("q0").result_rows)
        adaptive_rows = sorted(adaptive.execution("q0").result_rows)
        if static_rows != adaptive_rows:
            violations.append(
                f"x{factor:g}: adaptive changed the result rows "
                f"({len(static_rows)} vs {len(adaptive_rows)})")
        if factor == 1.0:
            if adaptive.makespan != static.makespan:
                violations.append(
                    f"uniform cell diverged: static {static.makespan!r} "
                    f"vs adaptive {adaptive.makespan!r} (must be "
                    f"bit-identical when no signal fires)")
            if decisions:
                violations.append(
                    f"uniform cell recorded {len(decisions)} adaptive "
                    f"decisions (expected none)")
        else:
            if not adaptive.makespan < static.makespan:
                violations.append(
                    f"x{factor:g}: adaptive did not beat static "
                    f"({adaptive.makespan:.4f} vs {static.makespan:.4f})")
            if not decisions:
                violations.append(
                    f"x{factor:g}: no adaptive decision recorded — the "
                    f"makespan difference is unexplained")
            twin = run_adaptive_workload(factor, "adaptive")
            twin_decisions = (twin.decisions.to_json()
                              if twin.decisions is not None else [])
            if (twin.makespan != adaptive.makespan
                    or twin_decisions != decisions):
                violations.append(
                    f"x{factor:g}: adaptive run is not deterministic "
                    f"across identical runs")
        cells.append(AdaptiveCell(factor, static.makespan,
                                  adaptive.makespan, decisions,
                                  violations))
    return cells


def render_adaptive_sweep(cells: list[AdaptiveCell]) -> str:
    lines = ["adaptive-policy sweep (chained joins, producer slowdown, "
             "static vs adaptive makespan):",
             "  factor   static      adaptive    saved    decisions"]
    for cell in cells:
        lines.append(
            f"  {cell.factor:6.1f}  {cell.static:9.4f}s  "
            f"{cell.adaptive:9.4f}s  {cell.win:6.1%}  {len(cell.decisions)}")
        for decision in cell.decisions:
            lines.append(f"           - {decision['step']} "
                         f"{decision['target']}: {decision['chosen']}")
        for violation in cell.violations:
            lines.append(f"  VIOLATION: {violation}")
    return "\n".join(lines)


# -- serving under fire -------------------------------------------------------

#: Arrival-rate multiplier of the serving chaos cell over the measured
#: saturation throughput of its mix — solidly past the knee.
SERVING_CHAOS_OVERLOAD = 2.0

#: Queries per serving chaos run (the cell runs twice — the second run
#: is the twin of the determinism audit).
SERVING_CHAOS_COUNT = 80

#: Bounded wait-queue depth of the serving chaos cell.
SERVING_CHAOS_QUEUE_LIMIT = 6

#: How many mid-run queries get a cancellation fired on top of the
#: overload + faults (spread across the run).
SERVING_CHAOS_CANCELS = 3


def check_query_conservation(result, submitted: int) -> list[str]:
    """Every submitted query ends in exactly one terminal status.

    The serving-layer conservation law: overload may *re-route* a
    query (shed it, reject it, time it out, let a fault fail it), but
    the terminal statuses must account for every submission — nothing
    vanishes, nothing is double-counted.
    """
    from repro.workload.engine import TERMINAL_STATES

    problems = []
    statuses: dict[str, int] = {}
    for tag, execution in result.executions.items():
        status = execution.status
        statuses[status] = statuses.get(status, 0) + 1
        if status not in TERMINAL_STATES:
            problems.append(
                f"{tag} ended in non-terminal status {status!r}")
    total = sum(statuses.values())
    if total != submitted:
        problems.append(
            f"query conservation broken: {submitted} submitted but "
            f"{total} terminal executions ({statuses})")
    return problems


def check_shed_pre_materialization(result) -> list[str]:
    """Shed and rejected queries never started any work.

    Load shedding happens strictly pre-admission — before a query
    materializes operator state or joins a shared-fold cohort.  A shed
    execution carrying operations would mean the engine tore a query
    out mid-cohort, orphaning the fold's subscribers.
    """
    problems = []
    for tag, execution in result.executions.items():
        if (execution.status in ("shed", "rejected")
                and execution.operations):
            problems.append(
                f"{tag} was {execution.status} yet carries "
                f"{len(execution.operations)} operations — shedding "
                f"must happen before any work materializes")
    return problems


def run_serving_chaos(seed: int = 0,
                      count: int = SERVING_CHAOS_COUNT,
                      overload: float = SERVING_CHAOS_OVERLOAD
                      ) -> ChaosReport:
    """Overload, faults, shared folding and cancellation — audited.

    The serving mix arrives open-loop at ``overload`` times its
    measured saturation throughput on a deliberately small machine,
    under a priority policy with a bounded queue, with shared-work
    folding on, a seeded fault plan injected *and* several mid-run
    cancellations fired — every robustness subsystem under fire at
    once.  The audit then asserts the serving conservation laws:
    every submission reaches exactly one terminal status, shedding
    never orphans a shared-fold cohort (shed queries hold no
    operations; folded cohorts keep exactly one thread-finish
    carrier), the workload event stream stays monotone, and a twin
    run of the same seed reproduces the decision log byte for byte.
    """
    from dataclasses import replace

    from repro.bench.fig_serving import (
        MAX_CONCURRENT,
        measure_saturation,
        serving_machine,
    )
    from repro.faults import FaultPlan
    from repro.obs.metrics import FOLD_HITS
    from repro.serve.arrivals import make_arrival_process
    from repro.serve.harness import (
        build_submissions,
        decision_digest,
        default_templates,
    )
    from repro.serve.policies import ServingPolicy
    from repro.workload.engine import WorkloadExecutor

    machine = serving_machine()
    templates = default_templates()
    saturation = measure_saturation(templates, machine=machine,
                                    count=60, seed=seed)
    rate = saturation * overload
    times = make_arrival_process("poisson", rate).times(count, seed=seed)

    def build(fault_seed: int):
        submissions = build_submissions(templates, times, machine=machine,
                                        seed=seed)
        # Cancellation under fire: a few queries spread across the run
        # get cancelled shortly after arriving — under overload they
        # are still queued, so the cancel races admission and shedding.
        step = max(1, count // (SERVING_CHAOS_CANCELS + 1))
        cancelled = []
        for slot in range(1, SERVING_CHAOS_CANCELS + 1):
            index = slot * step
            submissions[index] = replace(
                submissions[index],
                cancel_at=submissions[index].arrival + 0.02)
            cancelled.append(submissions[index].tag)
        operations = sorted({node.name for submission in submissions
                             for node in submission.compiled.plan.nodes})
        plan = FaultPlan.generate(fault_seed, tuple(operations),
                                  horizon=times[-1] * 1.2)
        return submissions, cancelled, plan

    def run_once():
        submissions, cancelled, plan = build(seed)
        workload = WorkloadOptions(
            max_concurrent=MAX_CONCURRENT, shared=True, faults=plan,
            serving=ServingPolicy(policy="priority",
                                  queue_limit=SERVING_CHAOS_QUEUE_LIMIT))
        options = ExecutionOptions(
            seed=seed,
            observability=ObservabilityOptions(trace=True, observe=True))
        result = WorkloadExecutor(machine, options, workload).execute(
            submissions)
        return result, cancelled, plan

    result, cancelled, plan = run_once()

    violations: list[str] = []
    violations += check_query_conservation(result, count)
    violations += check_shed_pre_materialization(result)
    for tag in result.order:
        execution = result.execution(tag)
        violations += check_conservation(tag, execution)
        violations += check_monotone_time(tag, execution, result.makespan)
    violations += check_shared_orphans(result)
    violations += check_workload_stream(result.bus)
    violations += check_fault_accounting(result)

    statuses = {tag: result.status_of(tag) for tag in result.order}
    tally: dict[str, int] = {}
    for status in statuses.values():
        tally[status] = tally.get(status, 0) + 1
    if not tally.get("shed"):
        violations.append(
            f"overload x{overload:g} shed nothing — the bounded queue "
            f"(limit {SERVING_CHAOS_QUEUE_LIMIT}) never overflowed")
    if result.metrics is None or not result.metrics.total(FOLD_HITS):
        violations.append(
            "serving chaos run folded nothing — the duplicate-template "
            "queries should share physical executions under overload")
    for tag in cancelled:
        if statuses.get(tag) not in ("cancelled", "shed"):
            violations.append(
                f"{tag} was cancelled mid-queue but ended "
                f"{statuses.get(tag)!r} (expected cancelled, or shed "
                f"if the overflow got there first)")
    if not any(statuses.get(tag) == "cancelled" for tag in cancelled):
        violations.append(
            "no mid-run cancellation landed as 'cancelled' — the "
            "cancellation path went unexercised")

    twin, _, _ = run_once()
    if decision_digest(twin) != decision_digest(result):
        violations.append(
            "serving decision log is not deterministic: twin run of "
            "the same seed produced a different digest")

    return ChaosReport(
        seed=seed,
        plan=(f"serving x{overload:g} overload ({rate:.1f} q/s), "
              f"priority + queue limit {SERVING_CHAOS_QUEUE_LIMIT}, "
              f"shared folds, {len(cancelled)} cancels, "
              + plan.describe().replace("\n", "; ")),
        statuses={status: str(tally[status]) for status in sorted(tally)},
        makespan=result.makespan,
        fault_counters=fault_counter_totals(result),
        violations=violations,
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro chaos``: seeded sweep + degradation curve."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="seeded fault-injection sweep with invariant "
                    "checks, plus the graceful-degradation curve")
    parser.add_argument("--seed", type=int, default=0,
                        help="first chaos seed (default 0)")
    parser.add_argument("--seeds", type=int, default=1,
                        help="how many consecutive seeds to sweep")
    parser.add_argument("--no-degradation", action="store_true",
                        help="skip the pooled-vs-static slowdown curve")
    parser.add_argument("--no-alerts", action="store_true",
                        help="skip the monitored alert sweep")
    parser.add_argument("--no-adaptive", action="store_true",
                        help="skip the adaptive-policy sweep")
    parser.add_argument("--no-serving", action="store_true",
                        help="skip the serving-under-fire cell")
    args = parser.parse_args(argv)

    failed = False
    for seed in range(args.seed, args.seed + args.seeds):
        report = run_chaos(seed)
        print(report.render())
        failed = failed or not report.passed
    shared_report = run_shared_chaos()
    print(shared_report.render())
    failed = failed or not shared_report.passed
    if not args.no_degradation:
        points = degradation_curve()
        print()
        print(render_degradation(points))
        for point in points:
            if point.factor > 1.0 and not point.pooled < point.static:
                print(f"  VIOLATION: pooled did not beat static at "
                      f"factor {point.factor}")
                failed = True
    if not args.no_alerts:
        cells = alert_sweep()
        print()
        print(render_alert_sweep(cells))
        failed = failed or any(not cell.passed for cell in cells)
    if not args.no_adaptive:
        adaptive_cells = adaptive_sweep()
        print()
        print(render_adaptive_sweep(adaptive_cells))
        failed = failed or any(not cell.passed for cell in adaptive_cells)
    if not args.no_serving:
        serving_report = run_serving_chaos(seed=args.seed)
        print()
        print(serving_report.render())
        failed = failed or not serving_report.passed
    return 1 if failed else 0
