"""Chaos harness: seeded fault sweeps with invariant checking.

The robustness counterpart of the perf harness: instead of asking *how
fast*, it asks *does anything break*.  :func:`run_chaos` builds a
small multi-query workload, derives a :class:`~repro.faults.FaultPlan`
from one seed (so every chaos run is reproducible bit-for-bit),
injects it into the shared simulation — with one query cancelled
mid-run for good measure — and then audits the wreckage against the
engine's conservation invariants:

* **activation conservation** — per operation,
  ``enqueued == processed + retries + aborts + discarded``; a fault
  may delay or destroy work, but never invent or leak it;
* **monotone virtual time** — every span is well-formed and inside
  the run, the workload event stream never goes backwards;
* **no orphaned threads** — every pool thread of every query emits
  its ``thread.finish``, including cancelled and aborted queries;
* **fault-free-subset parity** — an *empty* fault plan is
  bit-identical to no fault plan at all (the injection hooks are
  free when nothing is injected).

:func:`degradation_curve` is the graceful-degradation experiment: the
same join is executed under a widening processor slowdown, once with
the paper's pooled dynamic consumption (threads steal from the slowed
threads' queues) and once with the static one-thread-per-instance
binding.  Pooled execution must degrade strictly less.

CLI: ``python -m repro chaos --seed 0 --seeds 3`` (exit 1 on any
violation) — also reachable as ``make chaos-demo``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.database import DBS3
from repro.engine.executor import (
    ExecutionOptions,
    Executor,
    ObservabilityOptions,
    OperationSchedule,
    QuerySchedule,
)
from repro.engine.metrics import STATUS_DONE, QueryExecution
from repro.engine.strategies import LPT
from repro.faults import FaultPlan, SlowdownWindow
from repro.obs.bus import THREAD_FINISH
from repro.storage.wisconsin import generate_wisconsin
from repro.workload.options import WorkloadOptions

#: The chaos workload: three joins sharing one simulation.
CHAOS_QUERIES = (
    "SELECT * FROM A JOIN B ON A.unique1 = B.unique1",
    "SELECT * FROM C JOIN D ON C.unique1 = D.unique1",
    "SELECT * FROM A JOIN D ON A.unique1 = D.unique1",
)

#: Virtual instant at which the third query is cancelled (roughly
#: mid-flight for the workload sizes below).
CANCEL_AT = 0.08

#: Tolerance for span/endpoint containment checks (floating point).
_EPS = 1e-9


def _chaos_db(observe: bool = True) -> DBS3:
    """The small four-relation database every chaos run executes on."""
    options = ExecutionOptions(observability=ObservabilityOptions(
        trace=observe, observe=observe))
    db = DBS3(processors=48, options=options)
    db.create_table(generate_wisconsin("A", 2_000, seed=1), "unique1",
                    degree=20)
    db.create_table(generate_wisconsin("B", 200, seed=2), "unique1",
                    degree=20)
    db.create_table(generate_wisconsin("C", 1_500, seed=3), "unique1",
                    degree=20)
    db.create_table(generate_wisconsin("D", 150, seed=4), "unique1",
                    degree=20)
    return db


@dataclass
class ChaosReport:
    """Outcome of one seeded chaos run."""

    seed: int
    plan: str
    statuses: dict[str, str]
    makespan: float
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [f"chaos seed {self.seed}: "
                 f"{'PASS' if self.passed else 'FAIL'} "
                 f"(makespan {self.makespan:.3f}s virtual)"]
        lines.append(f"  plan     : {self.plan}")
        lines.append("  statuses : " + ", ".join(
            f"{tag}={status}" for tag, status in self.statuses.items()))
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


# -- invariants ---------------------------------------------------------------

def check_conservation(tag: str, execution: QueryExecution) -> list[str]:
    """``enqueued == processed + retries + aborts + discarded``."""
    problems = []
    for name, op in execution.operations.items():
        enqueued = sum(op.queue_activations)
        accounted = (op.activations + op.fault_retries + op.fault_aborts
                     + op.discarded)
        if enqueued != accounted:
            problems.append(
                f"{tag}/{name}: conservation broken — {enqueued} enqueued "
                f"!= {op.activations} processed + {op.fault_retries} "
                f"retries + {op.fault_aborts} aborts + {op.discarded} "
                f"discarded")
    return problems


def check_monotone_time(tag: str, execution: QueryExecution,
                        makespan: float) -> list[str]:
    """Spans well-formed and inside the run; op windows ordered."""
    problems = []
    for name, op in execution.operations.items():
        if op.finished_at + _EPS < op.started_at:
            problems.append(
                f"{tag}/{name}: finished_at {op.finished_at} before "
                f"started_at {op.started_at}")
        if op.finished_at > makespan + _EPS:
            problems.append(
                f"{tag}/{name}: finished_at {op.finished_at} past the "
                f"makespan {makespan}")
    if execution.trace is not None:
        for span in execution.trace.events:
            if span.end + _EPS < span.start:
                problems.append(
                    f"{tag}: span {span.operation}/{span.kind} runs "
                    f"backwards ({span.start} -> {span.end})")
                break
    return problems


def check_no_orphans(tag: str, execution: QueryExecution) -> list[str]:
    """Every pool thread terminated (cancelled queries included)."""
    if execution.obs is None:
        return []
    problems = []
    finishes: dict[str, int] = {}
    for event in execution.obs.events:
        if event.kind == THREAD_FINISH and event.operation is not None:
            finishes[event.operation] = finishes.get(event.operation, 0) + 1
    for name, op in execution.operations.items():
        finished = finishes.get(name, 0)
        if finished != op.threads:
            problems.append(
                f"{tag}/{name}: {op.threads} threads but {finished} "
                f"thread.finish events — orphaned threads")
    return problems


def check_workload_stream(bus) -> list[str]:
    """The workload event stream never moves backwards in time."""
    last = 0.0
    for event in bus.events:
        if event.t + _EPS < last:
            return [f"workload bus went backwards: {event.kind} at "
                    f"{event.t} after t={last}"]
        last = max(last, event.t)
    return []


def check_empty_plan_parity() -> list[str]:
    """An empty fault plan must be bit-identical to no plan at all."""
    def signature(faults):
        db = _chaos_db(observe=False)
        session = db.session(options=WorkloadOptions(faults=faults))
        for sql in CHAOS_QUERIES:
            session.submit(sql)
        result = session.run()
        return [
            (tag,
             execution.response_time,
             {name: (op.busy_time, op.idle_time, op.polls, op.enqueues,
                     op.dequeue_batches, op.secondary_accesses,
                     op.finished_at)
              for name, op in execution.operations.items()})
            for tag, execution in result.executions.items()
        ], result.makespan

    plain = signature(None)
    empty = signature(FaultPlan(seed=0))
    if plain != empty:
        return ["empty FaultPlan diverged from faults=None — the "
                "injection hooks are not free"]
    return []


# -- the seeded sweep ---------------------------------------------------------

def run_chaos(seed: int, parity: bool = True) -> ChaosReport:
    """One seeded chaos run: inject, cancel, audit.

    The fault plan is drawn deterministically from *seed* (same seed,
    same faults, same virtual trajectory — chaos runs are replayable).
    The third query is cancelled mid-run on top of whatever the plan
    injects, so the cancellation path is exercised under fire.
    """
    db = _chaos_db()
    operations = sorted({node.name
                         for sql in CHAOS_QUERIES
                         for node in db.compile(sql).plan.nodes})
    plan = FaultPlan.generate(seed, operations, horizon=0.4)
    session = db.session(options=WorkloadOptions(faults=plan))
    handles = [session.submit(sql, at=0.01 * i, tag=f"q{i}")
               for i, sql in enumerate(CHAOS_QUERIES)]
    handles[-1].cancel(at=CANCEL_AT)
    result = session.run()

    violations: list[str] = []
    for tag in result.order:
        execution = result.execution(tag)
        violations += check_conservation(tag, execution)
        violations += check_monotone_time(tag, execution, result.makespan)
        violations += check_no_orphans(tag, execution)
    violations += check_workload_stream(result.bus)
    if result.status_of("q2") not in ("cancelled", "failed"):
        violations.append(
            f"q2 was cancelled at t={CANCEL_AT} but ended "
            f"{result.status_of('q2')!r}")
    for tag in ("q0", "q1"):
        if result.status_of(tag) not in (STATUS_DONE, "failed"):
            violations.append(
                f"{tag} ended {result.status_of(tag)!r}; only the "
                f"injected faults may stop it (done or failed)")
    if parity:
        violations += check_empty_plan_parity()

    return ChaosReport(
        seed=seed,
        plan=plan.describe(),
        statuses={tag: result.status_of(tag) for tag in result.order},
        makespan=result.makespan,
        violations=violations,
    )


# -- graceful degradation ----------------------------------------------------

@dataclass(frozen=True)
class DegradationPoint:
    """Makespan under one slowdown factor, pooled vs static."""

    factor: float
    pooled: float
    static: float

    @property
    def pooled_ratio(self) -> float:
        return self.pooled / self.static


def degradation_curve(factors: tuple[float, ...] = (1.0, 3.0, 6.0, 12.0),
                      threads: int = 10) -> list[DegradationPoint]:
    """Response time of one join as two of its threads slow down.

    The same compiled join runs under a permanent
    :class:`~repro.faults.SlowdownWindow` on threads 0 and 1 of the
    join pool, once with pooled dynamic consumption (the paper's
    engine: fast threads drain the slowed threads' queues through
    secondary access) and once with the static one-thread-per-instance
    binding (Gamma-style; the slowed threads' work is stranded).  The
    pooled makespan must degrade strictly less at every factor > 1 —
    that is what "graceful" means here.
    """
    db = _chaos_db(observe=False)
    compiled = db.compile(CHAOS_QUERIES[0])
    names = [node.name for node in compiled.plan.nodes]
    join_name = names[-1]
    points = []
    for factor in factors:
        faults = None if factor == 1.0 else FaultPlan(
            seed=0,
            slowdowns=(SlowdownWindow(0.0, float("inf"), factor,
                                      operation=join_name,
                                      thread_ids=(0, 1)),))
        timings = {}
        for label, allow_secondary in (("pooled", True), ("static", False)):
            schedule = QuerySchedule({
                name: OperationSchedule(threads, strategy=LPT,
                                        allow_secondary=allow_secondary)
                for name in names})
            executor = Executor(db.machine, ExecutionOptions(faults=faults))
            execution = executor.execute(compiled.plan, schedule)
            timings[label] = execution.response_time
        points.append(DegradationPoint(factor, timings["pooled"],
                                       timings["static"]))
    return points


def render_degradation(points: list[DegradationPoint]) -> str:
    lines = ["degradation curve (virtual response time, join with 2 "
             "slowed threads):",
             "  factor   pooled      static      pooled/static"]
    for point in points:
        lines.append(f"  {point.factor:6.1f}  {point.pooled:9.4f}s  "
                     f"{point.static:9.4f}s  {point.pooled_ratio:8.3f}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro chaos``: seeded sweep + degradation curve."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="seeded fault-injection sweep with invariant "
                    "checks, plus the graceful-degradation curve")
    parser.add_argument("--seed", type=int, default=0,
                        help="first chaos seed (default 0)")
    parser.add_argument("--seeds", type=int, default=1,
                        help="how many consecutive seeds to sweep")
    parser.add_argument("--no-degradation", action="store_true",
                        help="skip the pooled-vs-static slowdown curve")
    args = parser.parse_args(argv)

    failed = False
    for seed in range(args.seed, args.seed + args.seeds):
        report = run_chaos(seed)
        print(report.render())
        failed = failed or not report.passed
    if not args.no_degradation:
        points = degradation_curve()
        print()
        print(render_degradation(points))
        for point in points:
            if point.factor > 1.0 and not point.pooled < point.static:
                print(f"  VIOLATION: pooled did not beat static at "
                      f"factor {point.factor}")
                failed = True
    return 1 if failed else 0
