"""Figure 17: execution time vs degree of partitioning, temp index.

Unskewed relations of 500K and 50K tuples, 20 threads, joins using a
temporary sorted index built on the fly.  With an index the
algorithmic gain from smaller fragments is only the shrinking
``log(|fragment|)`` factor, so the linear queue overhead eventually
wins.

Paper shapes to reproduce:

* both curves fall first (cheaper index build/probe on smaller
  fragments) and rise once the partitioning overhead dominates —
  past ~1000 for AssocJoin and ~1400 for IdealJoin in the paper;
* AssocJoin sits above IdealJoin throughout (transmit cost) and its
  rise starts earlier (its per-degree overhead is steeper).
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.bench.runners import run_assoc_join, run_ideal_join
from repro.bench.workloads import make_join_database
from repro.lera.operators import JOIN_TEMP_INDEX

PAPER_DEGREES = (40, 250, 500, 750, 1000, 1250, 1500)
PAPER_CARD_A = 500_000
PAPER_CARD_B = 50_000
PAPER_THREADS = 20
#: Degrees past which "the overhead dominates the gain" in the paper.
PAPER_RISE_ASSOC = 1000
PAPER_RISE_IDEAL = 1400


def run(card_a: int = PAPER_CARD_A, card_b: int = PAPER_CARD_B,
        degrees: tuple[int, ...] = PAPER_DEGREES,
        threads: int = PAPER_THREADS, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 17: execution times with a temp index."""
    ideal_times = []
    assoc_times = []
    for degree in degrees:
        database = make_join_database(card_a, card_b, degree, theta=0.0)
        ideal_times.append(run_ideal_join(
            database, threads, algorithm=JOIN_TEMP_INDEX,
            seed=seed).response_time)
        assoc_times.append(run_assoc_join(
            database, threads, algorithm=JOIN_TEMP_INDEX,
            seed=seed).response_time)

    result = ExperimentResult(
        experiment_id="fig17",
        title=(f"Execution time vs degree, temp index (|A|={card_a}, "
               f"|B'|={card_b}, {threads} threads)"),
        x_label="degree",
        x_values=tuple(float(d) for d in degrees),
    )
    ideal = result.add_series("IdealJoin", ideal_times)
    assoc = result.add_series("AssocJoin", assoc_times)
    result.notes["ideal_min_degree"] = degrees[ideal.argmin()]
    result.notes["assoc_min_degree"] = degrees[assoc.argmin()]
    result.notes["paper_rise_ideal"] = PAPER_RISE_IDEAL
    result.notes["paper_rise_assoc"] = PAPER_RISE_ASSOC
    return result
