"""Figure 16: overhead of a high degree of partitioning (no index).

Unskewed relations of 100K and 10K tuples, 20 threads, nested loop;
the degree of partitioning sweeps 20..1500.  Following the paper's
method, the *overhead* at degree ``d`` is the measured time minus the
theoretical time ``Td = T20 * (20 / d)`` (the nested-loop work scales
as 1/d, so any surplus is queue-machinery cost).

Paper shapes to reproduce:

* both overheads grow roughly linearly with the degree;
* IdealJoin's slope (~0.45 ms/degree: one triggered queue + one
  activation per fragment) is roughly an order of magnitude below
  AssocJoin's (~4 ms/degree: a triggered transmit queue *and* a
  pipelined join queue per fragment, plus 10K tuple activations).
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.bench.runners import run_assoc_join, run_ideal_join
from repro.bench.workloads import make_join_database

PAPER_DEGREES = (20, 250, 500, 750, 1000, 1250, 1500)
PAPER_CARD_A = 100_000
PAPER_CARD_B = 10_000
PAPER_THREADS = 20
#: Slopes read off Figure 16, in seconds per degree.
PAPER_SLOPE_IDEAL = 0.45e-3
PAPER_SLOPE_ASSOC = 4e-3


def run(card_a: int = PAPER_CARD_A, card_b: int = PAPER_CARD_B,
        degrees: tuple[int, ...] = PAPER_DEGREES,
        threads: int = PAPER_THREADS, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 16: measured overhead per query vs degree."""
    ideal_times = []
    assoc_times = []
    for degree in degrees:
        database = make_join_database(card_a, card_b, degree, theta=0.0)
        ideal_times.append(
            run_ideal_join(database, threads, seed=seed).response_time)
        assoc_times.append(
            run_assoc_join(database, threads, seed=seed).response_time)

    base_degree = degrees[0]
    ideal_overhead = [t - ideal_times[0] * base_degree / d
                      for t, d in zip(ideal_times, degrees)]
    assoc_overhead = [t - assoc_times[0] * base_degree / d
                      for t, d in zip(assoc_times, degrees)]

    result = ExperimentResult(
        experiment_id="fig16",
        title=(f"Partitioning overhead, no index (|A|={card_a}, "
               f"|B'|={card_b}, {threads} threads, nested loop)"),
        x_label="degree",
        x_values=tuple(float(d) for d in degrees),
    )
    result.add_series("overhead IdealJoin", ideal_overhead)
    result.add_series("overhead AssocJoin", assoc_overhead)
    result.add_series("time IdealJoin", ideal_times)
    result.add_series("time AssocJoin", assoc_times)
    span = degrees[-1] - degrees[0]
    result.notes["slope_ideal_ms_per_degree"] = (
        (ideal_overhead[-1] - ideal_overhead[0]) / span * 1000)
    result.notes["slope_assoc_ms_per_degree"] = (
        (assoc_overhead[-1] - assoc_overhead[0]) / span * 1000)
    result.notes["paper_slope_ideal_ms"] = PAPER_SLOPE_IDEAL * 1000
    result.notes["paper_slope_assoc_ms"] = PAPER_SLOPE_ASSOC * 1000
    return result
