"""Workloads for Walton's skew taxonomy (Figure 6 of the paper).

The paper classifies the skews hitting the filter-join example:

* **AVS/TPS** — attribute-value / tuple-placement skew: uneven
  fragment cardinalities of the stored relations (what the Zipf
  databases of the main experiments model);
* **SS** — selectivity skew: the filter's selectivity varies per
  fragment, so instances emit very different tuple counts;
* **RS** — redistribution skew: the repartitioning hash concentrates
  the transmitted tuples on few consumer instances;
* **JPS** — join-product skew: the per-tuple match count varies, so
  some activations produce far more output.

Each builder returns a workload exhibiting exactly one of them, so the
taxonomy becomes an executable experiment: run the same filter-join
pipeline over each and compare per-instance activation statistics
(see ``benchmarks/test_skew_taxonomy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.workloads import skewed_fragments
from repro.lera.graph import LeraGraph
from repro.lera.plans import filter_join_plan
from repro.lera.predicates import Predicate
from repro.storage.catalog import Catalog, TableEntry
from repro.storage.fragment import Fragment
from repro.storage.partitioning import PartitioningSpec
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.skew import zipf_cardinalities

#: Streamed relations carry (key, band): `band` marks which fragment
#: of R the tuple came from, letting SS predicates discriminate.
R_SCHEMA = Schema.of_ints("key", "band")


@dataclass(frozen=True)
class TaxonomyWorkload:
    """One skew-taxonomy scenario: a filter-join plan plus its label."""

    kind: str
    plan: LeraGraph
    entry_r: TableEntry
    entry_s: TableEntry


def _uniform_r(catalog: Catalog, cardinality: int, degree: int,
               keys_mod: int) -> TableEntry:
    """R with uniform fragments; key ranges over [0, keys_mod)."""
    fragments = []
    rows_all = []
    per_fragment = cardinality // degree
    for i in range(degree):
        rows = [((i + degree * j) % keys_mod, i)
                for j in range(per_fragment)]
        fragments.append(Fragment("R", i, R_SCHEMA, rows))
        rows_all.extend(rows)
    relation = Relation("R", R_SCHEMA, rows_all)
    # R is partitioned on `band` here (placement by construction).
    return catalog.register_fragments(
        relation, PartitioningSpec.on("band", degree), fragments)


def _stored_s(catalog: Catalog, cardinality: int, degree: int,
              theta: float = 0.0) -> TableEntry:
    """S partitioned on key, with Zipf-*theta* fragment cardinalities."""
    relation, fragments = skewed_fragments("S", cardinality, degree, theta)
    spec = PartitioningSpec.on("key", degree)
    return catalog.register_fragments(relation, spec, fragments)


def make_avs_workload(card_r: int = 4000, card_s: int = 4000,
                      degree: int = 16) -> TaxonomyWorkload:
    """AVS/TPS: the *stored* operand S has Zipf-skewed fragments, so
    probing instance 0 costs far more than the rest."""
    catalog = Catalog()
    entry_s = _stored_s(catalog, card_s, degree, theta=1.0)
    entry_r = _uniform_r(catalog, card_r, degree, keys_mod=card_s)
    predicate = Predicate("true", lambda row: True, 1.0)
    plan = filter_join_plan(entry_r, entry_s, predicate, "key", "key")
    return TaxonomyWorkload("AVS/TPS", plan, entry_r, entry_s)


def make_ss_workload(card_r: int = 4000, card_s: int = 4000,
                     degree: int = 16) -> TaxonomyWorkload:
    """SS: the filter keeps everything from low bands and nothing from
    high ones — per-instance selectivity varies from 1.0 to 0.0."""
    catalog = Catalog()
    entry_s = _stored_s(catalog, card_s, degree, theta=0.0)
    entry_r = _uniform_r(catalog, card_r, degree, keys_mod=card_s)
    threshold = degree // 2
    predicate = Predicate(f"band < {threshold}",
                          lambda row, _t=threshold: row[1] < _t,
                          selectivity=0.5)
    plan = filter_join_plan(entry_r, entry_s, predicate, "key", "key")
    return TaxonomyWorkload("SS", plan, entry_r, entry_s)


def make_rs_workload(card_r: int = 4000, card_s: int = 4000,
                     degree: int = 16, theta: float = 1.0
                     ) -> TaxonomyWorkload:
    """RS: R's join keys are Zipf-distributed over the hash buckets, so
    redistribution floods few join instances with most activations."""
    catalog = Catalog()
    entry_s = _stored_s(catalog, card_s, degree, theta=0.0)
    # Build R whose keys concentrate on low buckets: bucket of key k is
    # k mod degree, so draw keys with Zipf-weighted bucket residues.
    shares = zipf_cardinalities(card_r, degree, theta)
    fragments = []
    rows_all = []
    per_fragment = card_r // degree
    flat_keys = []
    for bucket, count in enumerate(shares):
        flat_keys.extend(bucket + degree * j for j in range(count))
    for i in range(degree):
        rows = [(flat_keys[(i * per_fragment + j) % len(flat_keys)], i)
                for j in range(per_fragment)]
        fragments.append(Fragment("R", i, R_SCHEMA, rows))
        rows_all.extend(rows)
    entry_r = catalog.register_fragments(
        Relation("R", R_SCHEMA, rows_all),
        PartitioningSpec.on("band", degree), fragments)
    predicate = Predicate("true", lambda row: True, 1.0)
    plan = filter_join_plan(entry_r, entry_s, predicate, "key", "key")
    return TaxonomyWorkload("RS", plan, entry_r, entry_s)


def make_jps_workload(card_r: int = 4000, card_s: int = 4000,
                      degree: int = 16, hot_matches: int = 400
                      ) -> TaxonomyWorkload:
    """JPS: one hot S key matches *hot_matches* tuples, so the probes
    hitting it emit disproportionate output."""
    catalog = Catalog()
    relation_s, fragments_s = skewed_fragments("S", card_s, degree, 0.0)
    hot_key = fragments_s[0].rows[0][0]
    for _ in range(hot_matches):
        fragments_s[0].append((hot_key, -1))
    relation_s = Relation("S", relation_s.schema,
                          [row for f in fragments_s for row in f.rows])
    entry_s = catalog.register_fragments(
        relation_s, PartitioningSpec.on("key", degree), fragments_s)
    entry_r = _uniform_r(catalog, card_r, degree, keys_mod=card_s)
    predicate = Predicate("true", lambda row: True, 1.0)
    plan = filter_join_plan(entry_r, entry_s, predicate, "key", "key")
    return TaxonomyWorkload("JPS", plan, entry_r, entry_s)


def all_workloads(**kwargs) -> list[TaxonomyWorkload]:
    """One workload per taxonomy entry, with shared size parameters."""
    return [make_avs_workload(**kwargs), make_ss_workload(**kwargs),
            make_rs_workload(**kwargs), make_jps_workload(**kwargs)]
