"""Wall-clock perf-regression harness for the engine hot paths.

Unlike the figure benches (deterministic virtual-time experiments) and
the microbenches (pytest-benchmark timings of individual substrate
calls), this module measures *the simulator itself*: real elapsed
seconds to execute a fixed workload matrix — degree of partitioning
in {20, 200, 1500} crossed with the two queue disciplines (triggered
IdealJoin, pipelined AssocJoin).  The matrix is exactly the regime the
paper's Figures 16-19 sweep, where per-step queue scans once made the
event loop quadratic in the degree.

Results are written to ``BENCH_engine.json``; :func:`compare_matrices`
flags cells whose wall-clock regressed more than 20 % against the
committed baseline.  Each cell also records the run's *virtual*
response time and result cardinality, so a perf run doubles as a
cheap semantic regression check.

Usage::

    python -m repro.bench.perf_baseline            # full matrix, print
    python -m repro.bench.perf_baseline --quick    # reduced cardinalities
    python -m repro.bench.perf_baseline --check BENCH_engine.json
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.bench.runners import (
    default_machine,
    run_assoc_join,
    run_concurrent_workload,
    run_ideal_join,
    run_overlap_workload,
)
from repro.bench.workloads import make_join_database

#: The workload matrix: paper's Figure 16/17 degree sweep endpoints
#: plus the mid-range, crossed with both queue disciplines.
DEGREES = (20, 200, 1500)
MODES = ("triggered", "pipelined")

#: Full-matrix workload (the Figure 16 cardinalities).
FULL_CARD_A = 100_000
FULL_CARD_B = 10_000
FULL_REPEATS = 3

#: Quick-mode workload for CI smoke runs.
QUICK_CARD_A = 20_000
QUICK_CARD_B = 2_000
QUICK_REPEATS = 2

THREADS = 20

#: A cell regresses when its best-of-N wall-clock exceeds the baseline
#: best-of-N by more than this fraction.
REGRESSION_THRESHOLD = 0.20

#: Absolute slack added on top of the relative threshold: the fastest
#: cells finish in a few milliseconds, where scheduler jitter alone
#: exceeds 20 %.
ABSOLUTE_SLACK_S = 0.005

#: Observability must be free when off: the disabled mode may not be
#: more than this fraction slower than the committed disabled-mode
#: baseline (the guard instructions are one attribute check per site).
OBS_REGRESSION_THRESHOLD = 0.05

#: The obs-overhead probe workload: the pipelined discipline at the
#: mid-range degree, where queue traffic (the instrumented hot path)
#: dominates.
OBS_DEGREE = 200

#: The workload layer must be free for one query: routing a single
#: query through the multi-query session machinery may cost at most
#: this fraction of wall clock over the dedicated executor path.
SESSION_OVERHEAD_THRESHOLD = 0.05

#: The fault-injection hooks must be free when nothing is injected:
#: attaching an *empty* FaultPlan may cost at most this fraction of
#: wall clock over running with no plan at all (every hook is one
#: ``injector is not None`` check on the hot path).
FAULTS_OVERHEAD_THRESHOLD = 0.05

#: The workload cells are an order of magnitude faster than a matrix
#: cell, so they can afford more repeats — the best-of-N is what the
#: 5 %/20 % gates compare, and two samples of a ~50 ms region are too
#: noisy to gate on.
WORKLOAD_REPEATS = 5

#: Multiprogramming level of the concurrent perf cell.
CONCURRENT_MPL = 4

#: Multiprogramming level of the shared-work cell — the ISSUE gate
#: ("at MPL >= 8 with full overlap, >= 2x") is checked at exactly 8.
SHARED_MPL = 8

#: MPL-8 workloads are ~2x a concurrent cell; three repeats suffice
#: because the gates below are virtual-time shapes, not wall clock.
SHARED_REPEATS = 3

#: Virtual-makespan bar of the fully-overlapping shared workload over
#: its private twin at ``SHARED_MPL``.
SHARED_SPEEDUP_MIN = 2.0

#: Within-run bar on the sharing machinery itself: a zero-overlap
#: workload with ``shared=True`` (registry built, every fold attempt
#: missing) may cost at most this fraction of wall clock over its
#: ``shared=False`` twin timed seconds earlier in the same process.
#: Sub-100ms cells on a shared box need the matrix-sized tolerance;
#: the *strict* zero-overhead statements are machine-independent and
#: gated elsewhere (exact virtual parity here and in the committed
#: sections, event-stream equality in tests/workload/test_sharing.py).
SHARED_OVERHEAD_THRESHOLD = REGRESSION_THRESHOLD


def cell_key(mode: str, degree: int) -> str:
    """Stable JSON key of one matrix cell."""
    return f"{mode}@{degree}"


def run_cell(mode: str, degree: int, card_a: int, card_b: int,
             threads: int = THREADS, repeats: int = FULL_REPEATS,
             seed: int = 0) -> dict:
    """Time one workload cell; returns a JSON-ready record.

    The database is built once outside the timed region; each repeat
    re-executes plan construction, scheduling and the full simulation,
    which is what a query actually costs.
    """
    database = make_join_database(card_a, card_b, degree, theta=0.0)
    runner = run_ideal_join if mode == "triggered" else run_assoc_join
    times = []
    execution = None
    for _ in range(repeats):
        started = time.perf_counter()
        execution = runner(database, threads, seed=seed)
        times.append(time.perf_counter() - started)
    return {
        "mode": mode,
        "degree": degree,
        "mean_s": round(statistics.fmean(times), 6),
        "std_s": round(statistics.pstdev(times), 6) if len(times) > 1 else 0.0,
        "min_s": round(min(times), 6),
        "runs": [round(t, 6) for t in times],
        "result_rows": execution.result_cardinality,
        "virtual_response_s": execution.response_time,
    }


def run_matrix(quick: bool = False, seed: int = 0) -> dict:
    """Run the full degree x discipline matrix; returns the cell map."""
    card_a = QUICK_CARD_A if quick else FULL_CARD_A
    card_b = QUICK_CARD_B if quick else FULL_CARD_B
    repeats = QUICK_REPEATS if quick else FULL_REPEATS
    cells = {}
    for mode in MODES:
        for degree in DEGREES:
            cells[cell_key(mode, degree)] = run_cell(
                mode, degree, card_a, card_b, repeats=repeats, seed=seed)
    return {
        "workload": {"card_a": card_a, "card_b": card_b,
                     "threads": THREADS, "repeats": repeats, "seed": seed},
        "cells": cells,
    }


def run_obs_overhead(quick: bool = False, seed: int = 0) -> dict:
    """Time the obs-disabled vs obs-enabled pipelined workload.

    Returns a JSON-ready record with one timing block per mode plus
    the enabled/disabled best-of-N ratio.  The disabled mode is the
    regression gate (:func:`compare_obs`); the enabled mode documents
    what full instrumentation costs but is not gated — it does real
    extra work by design.
    """
    card_a = QUICK_CARD_A if quick else FULL_CARD_A
    card_b = QUICK_CARD_B if quick else FULL_CARD_B
    repeats = QUICK_REPEATS if quick else FULL_REPEATS
    database = make_join_database(card_a, card_b, OBS_DEGREE, theta=0.0)
    modes = {}
    for label, observe in (("disabled", False), ("enabled", True)):
        times = []
        execution = None
        for _ in range(repeats):
            started = time.perf_counter()
            execution = run_assoc_join(database, THREADS, seed=seed,
                                       observe=observe)
            times.append(time.perf_counter() - started)
        modes[label] = {
            "mean_s": round(statistics.fmean(times), 6),
            "min_s": round(min(times), 6),
            "runs": [round(t, 6) for t in times],
            "result_rows": execution.result_cardinality,
            "virtual_response_s": execution.response_time,
        }
    return {
        "workload": {"card_a": card_a, "card_b": card_b,
                     "degree": OBS_DEGREE, "mode": "pipelined",
                     "threads": THREADS, "repeats": repeats, "seed": seed},
        "modes": modes,
        "enabled_over_disabled": round(
            modes["enabled"]["min_s"] / modes["disabled"]["min_s"], 4),
    }


def compare_obs(baseline: dict, current: dict,
                threshold: float = OBS_REGRESSION_THRESHOLD,
                abs_slack_s: float = ABSOLUTE_SLACK_S) -> list[str]:
    """Flag obs-overhead problems of *current* against *baseline*.

    Two gates: the disabled mode may not be more than *threshold*
    (plus *abs_slack_s*) slower than the committed disabled baseline —
    instrumentation guards must stay free when off — and turning
    observability on may not move virtual time or results at all.
    """
    problems = []
    base = baseline["modes"]["disabled"]
    disabled = current["modes"]["disabled"]
    enabled = current["modes"]["enabled"]
    limit = base["min_s"] * (1.0 + threshold) + abs_slack_s
    if disabled["min_s"] > limit:
        problems.append(
            f"obs-disabled wall-clock regressed {base['min_s']:.4f}s -> "
            f"{disabled['min_s']:.4f}s (> {threshold:.0%} over baseline)")
    if enabled["virtual_response_s"] != disabled["virtual_response_s"]:
        problems.append(
            "observability moved virtual time: "
            f"{disabled['virtual_response_s']!r} -> "
            f"{enabled['virtual_response_s']!r}")
    if enabled["result_rows"] != disabled["result_rows"]:
        problems.append(
            f"observability changed results: {disabled['result_rows']} -> "
            f"{enabled['result_rows']}")
    return problems


def render_obs(record: dict) -> str:
    """Human-readable line for one obs-overhead run."""
    disabled = record["modes"]["disabled"]
    enabled = record["modes"]["enabled"]
    return (f"obs overhead (pipelined@{record['workload']['degree']}): "
            f"disabled {disabled['min_s']:.4f}s, "
            f"enabled {enabled['min_s']:.4f}s "
            f"({record['enabled_over_disabled']:.2f}x)")


def run_obs_workload(quick: bool = False, seed: int = 0) -> dict:
    """Time the MPL-4 workload with workload telemetry off vs on.

    The concurrency twin of :func:`run_obs_overhead`: ``disabled``
    runs the MPL-4 concurrent workload with default options (no
    metrics registry, no span assembly — the hot path pays one
    ``is not None`` check per site); ``enabled`` turns on
    ``WorkloadOptions(observability=ObservabilityOptions(
    observe=True))``, so the same run also populates the
    :class:`~repro.obs.metrics.MetricsRegistry` and assembles
    per-query spans.  The disabled mode pins the virtual makespan and
    results exactly against the committed baseline; the wall-clock
    gate is the within-run twin — enabled over disabled in the same
    process (:func:`compare_obs_workload`) — because cross-epoch wall
    comparisons at this scale flap with machine load.
    """
    from repro.engine.executor import ObservabilityOptions
    from repro.workload.options import WorkloadOptions

    card_a = QUICK_CARD_A if quick else FULL_CARD_A
    card_b = QUICK_CARD_B if quick else FULL_CARD_B
    repeats = WORKLOAD_REPEATS
    database = make_join_database(card_a, card_b, OBS_DEGREE, theta=0.0)
    machine = default_machine()
    # The two modes are interleaved A/B within each repeat (not run as
    # two blocks) so a transient load burst hits both sides equally —
    # the within-run ratio is the gate, so its bias matters more than
    # either absolute number.
    pairs = [(label, WorkloadOptions(
                  observability=ObservabilityOptions(observe=observe)))
             for label, observe in (("disabled", False), ("enabled", True))]
    times = {label: [] for label, _ in pairs}
    results = {}
    for _ in range(repeats):
        for label, workload in pairs:
            started = time.perf_counter()
            results[label] = run_concurrent_workload(
                database, CONCURRENT_MPL, threads=THREADS,
                machine=machine, workload=workload, seed=seed)
            times[label].append(time.perf_counter() - started)
    modes = {}
    for label, _ in pairs:
        result = results[label]
        modes[label] = {
            "mean_s": round(statistics.fmean(times[label]), 6),
            "min_s": round(min(times[label]), 6),
            "runs": [round(t, 6) for t in times[label]],
            "makespan_virtual_s": result.makespan,
            "result_rows": sum(e.result_cardinality
                               for e in result.executions.values()),
        }
    return {
        "workload": {"card_a": card_a, "card_b": card_b,
                     "degree": OBS_DEGREE, "mpl": CONCURRENT_MPL,
                     "threads": THREADS, "repeats": repeats, "seed": seed},
        "modes": modes,
        "enabled_over_disabled": round(
            modes["enabled"]["min_s"] / modes["disabled"]["min_s"], 4),
    }


def compare_obs_workload(baseline: dict, current: dict,
                         threshold: float = OBS_REGRESSION_THRESHOLD,
                         abs_slack_s: float = ABSOLUTE_SLACK_S) -> list[str]:
    """Flag workload-telemetry overhead problems against *baseline*.

    The MPL-4 twin of :func:`compare_obs`, but gated the way new perf
    sections must be on a noisy box: the disabled mode's virtual
    makespan and results are pinned *exactly* against the committed
    record (virtual time is deterministic, so any drift is a real
    engine change), while the wall clock is judged within-run only:
    the repeats are interleaved disabled/enabled pairs, and in at
    least one pair the enabled run must land within *threshold* (plus
    *abs_slack_s*) of its paired disabled run — a load burst slows
    both halves of a pair together, so a telemetry path that is
    genuinely free always produces one clean pair.  Enabling
    telemetry may also move neither the virtual makespan nor the
    results.
    """
    problems = []
    base = baseline["modes"]["disabled"]
    disabled = current["modes"]["disabled"]
    enabled = current["modes"]["enabled"]
    if disabled["makespan_virtual_s"] != base["makespan_virtual_s"]:
        problems.append(
            f"obs-workload virtual makespan changed "
            f"{base['makespan_virtual_s']!r} -> "
            f"{disabled['makespan_virtual_s']!r}")
    if disabled["result_rows"] != base["result_rows"]:
        problems.append(
            f"obs-workload results changed {base['result_rows']} -> "
            f"{disabled['result_rows']}")
    pairs = list(zip(disabled["runs"], enabled["runs"]))
    if not any(on <= off * (1.0 + threshold) + abs_slack_s
               for off, on in pairs):
        closest = min(pairs, key=lambda pair: pair[1] / pair[0])
        problems.append(
            f"workload telemetry wall-clock overhead: no interleaved "
            f"repeat put enabled within {threshold:.0%} + "
            f"{abs_slack_s * 1000:.0f}ms of disabled (closest pair "
            f"{closest[0]:.4f}s off vs {closest[1]:.4f}s on)")
    if enabled["makespan_virtual_s"] != disabled["makespan_virtual_s"]:
        problems.append(
            "workload telemetry moved the virtual makespan: "
            f"{disabled['makespan_virtual_s']!r} -> "
            f"{enabled['makespan_virtual_s']!r}")
    if enabled["result_rows"] != disabled["result_rows"]:
        problems.append(
            f"workload telemetry changed results: "
            f"{disabled['result_rows']} -> {enabled['result_rows']}")
    return problems


def render_obs_workload(record: dict) -> str:
    """Human-readable line for one obs-workload run."""
    disabled = record["modes"]["disabled"]
    enabled = record["modes"]["enabled"]
    return (f"obs workload (mpl={record['workload']['mpl']}"
            f"@{record['workload']['degree']}): "
            f"disabled {disabled['min_s']:.4f}s, "
            f"enabled {enabled['min_s']:.4f}s "
            f"({record['enabled_over_disabled']:.2f}x)")


#: Floor on the self-profiler's wall-clock attribution at MPL 4: the
#: ISSUE's acceptance bar (>= 90 % of the engine wall accounted to a
#: named subsystem).
PROFILE_COVERAGE_MIN = 0.90


def run_monitor_overhead(quick: bool = False, seed: int = 0) -> dict:
    """Time the MPL-4 workload bare vs monitored vs self-profiled.

    The online-observability twin of :func:`run_obs_workload`:
    ``disabled`` runs with default options, ``monitored`` installs the
    full :func:`~repro.obs.monitor.default_monitors` rule pack (which
    implies the metrics registry), ``profiled`` runs the engine
    self-profiler.  The three modes are interleaved within each repeat
    so the within-run wall gates compare inside one machine epoch.
    The monitored mode also records its deterministic alert count —
    alerts are a pure function of (plan, seed, options), so the count
    is pinned exactly against the committed baseline — and the
    profiled mode records the profiler's attribution coverage, gated
    at :data:`PROFILE_COVERAGE_MIN`.
    """
    from repro.engine.executor import ObservabilityOptions
    from repro.obs.monitor import default_monitors
    from repro.workload.options import WorkloadOptions

    card_a = QUICK_CARD_A if quick else FULL_CARD_A
    card_b = QUICK_CARD_B if quick else FULL_CARD_B
    repeats = WORKLOAD_REPEATS
    database = make_join_database(card_a, card_b, OBS_DEGREE, theta=0.0)
    machine = default_machine()
    triples = [
        ("disabled", WorkloadOptions()),
        ("monitored", WorkloadOptions(observability=ObservabilityOptions(
            monitors=default_monitors()))),
        ("profiled", WorkloadOptions(observability=ObservabilityOptions(
            profile=True))),
    ]
    times = {label: [] for label, _ in triples}
    results = {}
    for _ in range(repeats):
        for label, workload in triples:
            started = time.perf_counter()
            results[label] = run_concurrent_workload(
                database, CONCURRENT_MPL, threads=THREADS,
                machine=machine, workload=workload, seed=seed)
            times[label].append(time.perf_counter() - started)
    modes = {}
    for label, _ in triples:
        result = results[label]
        modes[label] = {
            "mean_s": round(statistics.fmean(times[label]), 6),
            "min_s": round(min(times[label]), 6),
            "runs": [round(t, 6) for t in times[label]],
            "makespan_virtual_s": result.makespan,
            "result_rows": sum(e.result_cardinality
                               for e in result.executions.values()),
        }
    modes["monitored"]["alerts"] = len(results["monitored"].alerts)
    modes["profiled"]["coverage"] = round(
        results["profiled"].profile.coverage(), 4)
    return {
        "workload": {"card_a": card_a, "card_b": card_b,
                     "degree": OBS_DEGREE, "mpl": CONCURRENT_MPL,
                     "threads": THREADS, "repeats": repeats, "seed": seed},
        "modes": modes,
        "monitored_over_disabled": round(
            modes["monitored"]["min_s"] / modes["disabled"]["min_s"], 4),
    }


def compare_monitor(baseline: dict, current: dict,
                    threshold: float = OBS_REGRESSION_THRESHOLD,
                    abs_slack_s: float = ABSOLUTE_SLACK_S) -> list[str]:
    """Flag online-observability problems against *baseline*.

    Gated the same way as :func:`compare_obs_workload`: the disabled
    mode's virtual makespan and results are pinned exactly against the
    committed record, the monitored wall clock is judged within-run
    only (at least one interleaved pair within *threshold* plus
    *abs_slack_s* of its disabled twin), and neither monitors nor the
    profiler may move virtual time or results.  On top of that, the
    monitored alert count must reproduce the committed count exactly
    (the alert log is deterministic per seed) and the profiler must
    attribute at least :data:`PROFILE_COVERAGE_MIN` of the engine
    wall.
    """
    problems = []
    base = baseline["modes"]["disabled"]
    disabled = current["modes"]["disabled"]
    monitored = current["modes"]["monitored"]
    profiled = current["modes"]["profiled"]
    if disabled["makespan_virtual_s"] != base["makespan_virtual_s"]:
        problems.append(
            f"monitor: disabled virtual makespan changed "
            f"{base['makespan_virtual_s']!r} -> "
            f"{disabled['makespan_virtual_s']!r}")
    if disabled["result_rows"] != base["result_rows"]:
        problems.append(
            f"monitor: disabled results changed {base['result_rows']} -> "
            f"{disabled['result_rows']}")
    pairs = list(zip(disabled["runs"], monitored["runs"]))
    if not any(on <= off * (1.0 + threshold) + abs_slack_s
               for off, on in pairs):
        closest = min(pairs, key=lambda pair: pair[1] / pair[0])
        problems.append(
            f"monitor rules wall-clock overhead: no interleaved repeat "
            f"put monitored within {threshold:.0%} + "
            f"{abs_slack_s * 1000:.0f}ms of disabled (closest pair "
            f"{closest[0]:.4f}s off vs {closest[1]:.4f}s on)")
    for label, mode in (("monitored", monitored), ("profiled", profiled)):
        if mode["makespan_virtual_s"] != disabled["makespan_virtual_s"]:
            problems.append(
                f"monitor: {label} mode moved the virtual makespan "
                f"{disabled['makespan_virtual_s']!r} -> "
                f"{mode['makespan_virtual_s']!r}")
        if mode["result_rows"] != disabled["result_rows"]:
            problems.append(
                f"monitor: {label} mode changed results "
                f"{disabled['result_rows']} -> {mode['result_rows']}")
    if monitored["alerts"] != baseline["modes"]["monitored"]["alerts"]:
        problems.append(
            f"monitor: alert count changed "
            f"{baseline['modes']['monitored']['alerts']} -> "
            f"{monitored['alerts']} — the alert log is no longer "
            f"deterministic against the committed seed")
    if profiled["coverage"] < PROFILE_COVERAGE_MIN:
        problems.append(
            f"monitor: profiler attributed only {profiled['coverage']:.1%} "
            f"of the engine wall (< {PROFILE_COVERAGE_MIN:.0%})")
    return problems


def render_monitor(record: dict) -> str:
    """Human-readable line for one monitor-overhead run."""
    modes = record["modes"]
    return (f"monitor (mpl={record['workload']['mpl']}"
            f"@{record['workload']['degree']}): "
            f"disabled {modes['disabled']['min_s']:.4f}s, "
            f"monitored {modes['monitored']['min_s']:.4f}s "
            f"({record['monitored_over_disabled']:.2f}x, "
            f"{modes['monitored']['alerts']} alerts), profiler coverage "
            f"{modes['profiled']['coverage']:.1%}")


#: Slowdown factor of the committed adaptive gate cell (one slowed
#: cell of :data:`repro.bench.chaos.ADAPTIVE_FACTORS`).
ADAPTIVE_GATE_FACTOR = 6.0


def run_adaptive_cell(quick: bool = False, seed: int = 0) -> dict:
    """Time the adaptive-policy scenario static vs adaptive.

    One slowed cell of the chaos :func:`~repro.bench.chaos
    .adaptive_sweep` (factor :data:`ADAPTIVE_GATE_FACTOR`), run under
    ``policy="static"`` and ``policy="adaptive"`` interleaved within
    each repeat, so the controller's wall-clock cost is judged
    within-run against its static twin.  Both modes pin their virtual
    makespans and result rows; the adaptive mode additionally records
    its decision count, and a single uniform (factor 1.0) pair pins
    the bit-identical escape hatch.  The scenario is fixed-size and
    fixed-seed — *quick* and *seed* are recorded for provenance but do
    not change the cell.
    """
    from repro.bench.chaos import (
        ADAPTIVE_GRAIN,
        ADAPTIVE_THREADS,
        run_adaptive_workload,
    )

    repeats = WORKLOAD_REPEATS
    times = {"static": [], "adaptive": []}
    results = {}
    for _ in range(repeats):
        for label in ("static", "adaptive"):
            started = time.perf_counter()
            results[label] = run_adaptive_workload(
                ADAPTIVE_GATE_FACTOR, label)
            times[label].append(time.perf_counter() - started)
    modes = {}
    for label in ("static", "adaptive"):
        result = results[label]
        modes[label] = {
            "mean_s": round(statistics.fmean(times[label]), 6),
            "min_s": round(min(times[label]), 6),
            "runs": [round(t, 6) for t in times[label]],
            "makespan_virtual_s": result.makespan,
            "result_rows": sum(e.result_cardinality
                               for e in result.executions.values()),
        }
    modes["adaptive"]["decisions"] = len(results["adaptive"].decisions)
    uniform = {label: run_adaptive_workload(1.0, label).makespan
               for label in ("static", "adaptive")}
    return {
        "workload": {"factor": ADAPTIVE_GATE_FACTOR,
                     "grain": ADAPTIVE_GRAIN,
                     "threads": ADAPTIVE_THREADS,
                     "repeats": repeats, "quick": quick, "seed": seed},
        "modes": modes,
        "uniform_makespan_virtual_s": uniform,
        "adaptive_over_static": round(
            modes["adaptive"]["min_s"] / modes["static"]["min_s"], 4),
    }


def compare_adaptive(baseline: dict, current: dict,
                     threshold: float = OBS_REGRESSION_THRESHOLD,
                     abs_slack_s: float = ABSOLUTE_SLACK_S) -> list[str]:
    """Flag adaptive-scheduling problems against *baseline*.

    Both policies' virtual makespans and result rows are pinned
    exactly against the committed record (decisions are pure functions
    of virtual-time state, so the adaptive trajectory is as
    reproducible as the static one), the adaptive makespan must
    strictly beat the static one on the slowed gate cell, the uniform
    pair must be bit-identical, the decision count must reproduce
    exactly, and the controller's wall-clock cost is judged within-run
    (at least one interleaved repeat within *threshold* plus
    *abs_slack_s* of its static twin).
    """
    problems = []
    static = current["modes"]["static"]
    adaptive = current["modes"]["adaptive"]
    for label, mode in (("static", static), ("adaptive", adaptive)):
        base = baseline["modes"][label]
        if mode["makespan_virtual_s"] != base["makespan_virtual_s"]:
            problems.append(
                f"adaptive: {label} virtual makespan changed "
                f"{base['makespan_virtual_s']!r} -> "
                f"{mode['makespan_virtual_s']!r}")
        if mode["result_rows"] != base["result_rows"]:
            problems.append(
                f"adaptive: {label} results changed "
                f"{base['result_rows']} -> {mode['result_rows']}")
    if not adaptive["makespan_virtual_s"] < static["makespan_virtual_s"]:
        problems.append(
            f"adaptive: policy did not beat static on the slowed cell "
            f"({adaptive['makespan_virtual_s']:.4f} vs "
            f"{static['makespan_virtual_s']:.4f} virtual)")
    if adaptive["decisions"] != baseline["modes"]["adaptive"]["decisions"]:
        problems.append(
            f"adaptive: decision count changed "
            f"{baseline['modes']['adaptive']['decisions']} -> "
            f"{adaptive['decisions']} — the decision log is no longer "
            f"deterministic against the committed scenario")
    uniform = current["uniform_makespan_virtual_s"]
    if uniform["adaptive"] != uniform["static"]:
        problems.append(
            f"adaptive: uniform cell diverged ({uniform['static']!r} "
            f"static vs {uniform['adaptive']!r} adaptive) — the "
            f"no-signal path is no longer bit-identical")
    pairs = list(zip(static["runs"], adaptive["runs"]))
    if not any(on <= off * (1.0 + threshold) + abs_slack_s
               for off, on in pairs):
        closest = min(pairs, key=lambda pair: pair[1] / pair[0])
        problems.append(
            f"adaptive controller wall-clock overhead: no interleaved "
            f"repeat put adaptive within {threshold:.0%} + "
            f"{abs_slack_s * 1000:.0f}ms of static (closest pair "
            f"{closest[0]:.4f}s static vs {closest[1]:.4f}s adaptive)")
    return problems


def render_adaptive(record: dict) -> str:
    """Human-readable line for one adaptive-cell run."""
    modes = record["modes"]
    saved = (1.0 - modes["adaptive"]["makespan_virtual_s"]
             / modes["static"]["makespan_virtual_s"])
    return (f"adaptive (x{record['workload']['factor']:g} slowdown): "
            f"static {modes['static']['makespan_virtual_s']:.4f}s -> "
            f"adaptive {modes['adaptive']['makespan_virtual_s']:.4f}s "
            f"virtual ({saved:.1%} saved, "
            f"{modes['adaptive']['decisions']} decisions), wall "
            f"{record['adaptive_over_static']:.2f}x static")


def run_session_overhead(quick: bool = False, seed: int = 0) -> dict:
    """Time the single-query path direct vs through the workload layer.

    Both modes execute the identical pipelined workload: ``direct``
    through :class:`~repro.engine.executor.Executor`, ``session``
    through a one-query :class:`~repro.workload.engine
    .WorkloadExecutor` (the machinery behind ``db.session()`` /
    ``db.query()``).  The one-query path is bit-identical in virtual
    time by design; this records what the extra layer costs in *wall*
    clock, gated at 5 % (:func:`compare_session`).
    """
    from repro.compiler.parallelizer import CompiledQuery
    from repro.engine.executor import ExecutionOptions, Executor
    from repro.lera.plans import assoc_join_plan
    from repro.scheduler.adaptive import AdaptiveScheduler
    from repro.workload.engine import QuerySubmission, WorkloadExecutor

    card_a = QUICK_CARD_A if quick else FULL_CARD_A
    card_b = QUICK_CARD_B if quick else FULL_CARD_B
    repeats = WORKLOAD_REPEATS
    database = make_join_database(card_a, card_b, OBS_DEGREE, theta=0.0)
    machine = default_machine()
    options = ExecutionOptions(seed=seed)

    def direct():
        plan = assoc_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        schedule = AdaptiveScheduler(machine).schedule(plan, THREADS)
        return Executor(machine, options).execute(plan, schedule)

    def session():
        plan = assoc_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        schedule = AdaptiveScheduler(machine).schedule(plan, THREADS)
        submission = QuerySubmission(
            "q0", CompiledQuery(plan, None, None, "perf"), schedule)
        result = WorkloadExecutor(machine, options).execute([submission])
        return result.execution("q0")

    modes = {}
    for label, runner in (("direct", direct), ("session", session)):
        times = []
        execution = None
        for _ in range(repeats):
            started = time.perf_counter()
            execution = runner()
            times.append(time.perf_counter() - started)
        modes[label] = {
            "mean_s": round(statistics.fmean(times), 6),
            "min_s": round(min(times), 6),
            "runs": [round(t, 6) for t in times],
            "result_rows": execution.result_cardinality,
            "virtual_response_s": execution.response_time,
        }
    return {
        "workload": {"card_a": card_a, "card_b": card_b,
                     "degree": OBS_DEGREE, "mode": "pipelined",
                     "threads": THREADS, "repeats": repeats, "seed": seed},
        "modes": modes,
        "session_over_direct": round(
            modes["session"]["min_s"] / modes["direct"]["min_s"], 4),
    }


def compare_session(current: dict,
                    threshold: float = SESSION_OVERHEAD_THRESHOLD,
                    abs_slack_s: float = ABSOLUTE_SLACK_S) -> list[str]:
    """Flag session-overhead problems (within one run, no baseline).

    The gate is the within-run ratio — session wall clock may exceed
    the direct path by at most *threshold* plus *abs_slack_s* — and
    the one-query parity contract: identical virtual response time
    and result cardinality through both paths.
    """
    problems = []
    direct = current["modes"]["direct"]
    session = current["modes"]["session"]
    limit = direct["min_s"] * (1.0 + threshold) + abs_slack_s
    if session["min_s"] > limit:
        problems.append(
            f"session path wall-clock overhead: direct "
            f"{direct['min_s']:.4f}s vs session {session['min_s']:.4f}s "
            f"(> {threshold:.0%} + {abs_slack_s * 1000:.0f}ms slack)")
    if session["virtual_response_s"] != direct["virtual_response_s"]:
        problems.append(
            "session path moved virtual time: "
            f"{direct['virtual_response_s']!r} -> "
            f"{session['virtual_response_s']!r}")
    if session["result_rows"] != direct["result_rows"]:
        problems.append(
            f"session path changed results: {direct['result_rows']} -> "
            f"{session['result_rows']}")
    return problems


def render_session(record: dict) -> str:
    """Human-readable line for one session-overhead run."""
    direct = record["modes"]["direct"]
    session = record["modes"]["session"]
    return (f"session overhead (pipelined@{record['workload']['degree']}): "
            f"direct {direct['min_s']:.4f}s, "
            f"session {session['min_s']:.4f}s "
            f"({record['session_over_direct']:.2f}x)")


def run_faults_overhead(quick: bool = False, seed: int = 0) -> dict:
    """Time the pipelined workload with no fault plan vs an empty one.

    ``plain`` runs with ``faults=None`` (no injector, the pre-faults
    hot path); ``hooked`` attaches an empty :class:`FaultPlan`, so
    every injector hook is live but injects nothing.  The two must be
    bit-identical in virtual time and results, and ``hooked`` may cost
    at most 5 % wall clock (:func:`compare_faults`) — robustness
    instrumentation must be free when nothing breaks.
    """
    from repro.engine.executor import ExecutionOptions, Executor
    from repro.faults import FaultPlan
    from repro.lera.plans import assoc_join_plan
    from repro.scheduler.adaptive import AdaptiveScheduler

    card_a = QUICK_CARD_A if quick else FULL_CARD_A
    card_b = QUICK_CARD_B if quick else FULL_CARD_B
    repeats = WORKLOAD_REPEATS
    database = make_join_database(card_a, card_b, OBS_DEGREE, theta=0.0)
    machine = default_machine()

    def run_with(faults):
        plan = assoc_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        schedule = AdaptiveScheduler(machine).schedule(plan, THREADS)
        options = ExecutionOptions(seed=seed, faults=faults)
        return Executor(machine, options).execute(plan, schedule)

    modes = {}
    for label, faults in (("plain", None), ("hooked", FaultPlan())):
        times = []
        execution = None
        for _ in range(repeats):
            started = time.perf_counter()
            execution = run_with(faults)
            times.append(time.perf_counter() - started)
        modes[label] = {
            "mean_s": round(statistics.fmean(times), 6),
            "min_s": round(min(times), 6),
            "runs": [round(t, 6) for t in times],
            "result_rows": execution.result_cardinality,
            "virtual_response_s": execution.response_time,
        }
    return {
        "workload": {"card_a": card_a, "card_b": card_b,
                     "degree": OBS_DEGREE, "mode": "pipelined",
                     "threads": THREADS, "repeats": repeats, "seed": seed},
        "modes": modes,
        "hooked_over_plain": round(
            modes["hooked"]["min_s"] / modes["plain"]["min_s"], 4),
    }


def compare_faults(current: dict,
                   threshold: float = FAULTS_OVERHEAD_THRESHOLD,
                   abs_slack_s: float = ABSOLUTE_SLACK_S) -> list[str]:
    """Flag faults-overhead problems (within one run, no baseline).

    Two gates: the empty-plan run may cost at most *threshold* plus
    *abs_slack_s* wall clock over the no-plan run, and the fault-free
    parity contract — identical virtual response time and result
    cardinality with the hooks live.
    """
    problems = []
    plain = current["modes"]["plain"]
    hooked = current["modes"]["hooked"]
    limit = plain["min_s"] * (1.0 + threshold) + abs_slack_s
    if hooked["min_s"] > limit:
        problems.append(
            f"empty-fault-plan wall-clock overhead: plain "
            f"{plain['min_s']:.4f}s vs hooked {hooked['min_s']:.4f}s "
            f"(> {threshold:.0%} + {abs_slack_s * 1000:.0f}ms slack)")
    if hooked["virtual_response_s"] != plain["virtual_response_s"]:
        problems.append(
            "empty fault plan moved virtual time: "
            f"{plain['virtual_response_s']!r} -> "
            f"{hooked['virtual_response_s']!r}")
    if hooked["result_rows"] != plain["result_rows"]:
        problems.append(
            f"empty fault plan changed results: {plain['result_rows']} -> "
            f"{hooked['result_rows']}")
    return problems


def render_faults(record: dict) -> str:
    """Human-readable line for one faults-overhead run."""
    plain = record["modes"]["plain"]
    hooked = record["modes"]["hooked"]
    return (f"faults overhead (pipelined@{record['workload']['degree']}): "
            f"plain {plain['min_s']:.4f}s, "
            f"empty plan {hooked['min_s']:.4f}s "
            f"({record['hooked_over_plain']:.2f}x)")


def run_concurrent_cell(quick: bool = False, seed: int = 0) -> dict:
    """Time the MPL-4 concurrent workload (wall clock + virtual shape).

    Records the shared-simulation wall clock next to the workload's
    virtual makespan and its speed-up over running the same queries
    back-to-back; the virtual numbers double as a semantic regression
    check (:func:`compare_concurrent`).
    """
    card_a = QUICK_CARD_A if quick else FULL_CARD_A
    card_b = QUICK_CARD_B if quick else FULL_CARD_B
    repeats = WORKLOAD_REPEATS
    database = make_join_database(card_a, card_b, OBS_DEGREE, theta=0.0)
    machine = default_machine()
    serial_virtual = (
        run_ideal_join(database, THREADS, machine=machine,
                       seed=seed).response_time * (CONCURRENT_MPL // 2)
        + run_assoc_join(database, THREADS, machine=machine,
                         seed=seed).response_time * (CONCURRENT_MPL // 2))
    times = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run_concurrent_workload(database, CONCURRENT_MPL,
                                         threads=THREADS, machine=machine,
                                         seed=seed)
        times.append(time.perf_counter() - started)
    return {
        "workload": {"card_a": card_a, "card_b": card_b,
                     "degree": OBS_DEGREE, "mpl": CONCURRENT_MPL,
                     "threads": THREADS, "repeats": repeats, "seed": seed},
        "mean_s": round(statistics.fmean(times), 6),
        "min_s": round(min(times), 6),
        "runs": [round(t, 6) for t in times],
        "makespan_virtual_s": result.makespan,
        "serial_virtual_s": serial_virtual,
        "speedup_virtual": round(serial_virtual / result.makespan, 4),
        "result_rows": sum(e.result_cardinality
                           for e in result.executions.values()),
    }


def compare_concurrent(baseline: dict, current: dict,
                       threshold: float = REGRESSION_THRESHOLD,
                       abs_slack_s: float = ABSOLUTE_SLACK_S) -> list[str]:
    """Flag concurrent-cell regressions against a committed baseline.

    The virtual makespan and total cardinality must match exactly;
    the wall clock is gated like the matrix cells; the virtual
    speed-up over back-to-back must stay a real win.
    """
    problems = []
    if current["makespan_virtual_s"] != baseline["makespan_virtual_s"]:
        problems.append(
            f"concurrent@mpl{baseline['workload']['mpl']}: virtual makespan "
            f"changed {baseline['makespan_virtual_s']!r} -> "
            f"{current['makespan_virtual_s']!r}")
    if current["result_rows"] != baseline["result_rows"]:
        problems.append(
            f"concurrent: total result cardinality changed "
            f"{baseline['result_rows']} -> {current['result_rows']}")
    limit = baseline["min_s"] * (1.0 + threshold) + abs_slack_s
    if current["min_s"] > limit:
        problems.append(
            f"concurrent: wall-clock regressed {baseline['min_s']:.4f}s -> "
            f"{current['min_s']:.4f}s (> {threshold:.0%} over baseline)")
    if current["speedup_virtual"] <= 1.0:
        problems.append(
            f"concurrent: workload no longer beats back-to-back "
            f"(speedup {current['speedup_virtual']:.2f}x)")
    return problems


def render_concurrent(record: dict) -> str:
    """Human-readable line for one concurrent-cell run."""
    return (f"concurrent (mpl={record['workload']['mpl']}"
            f"@{record['workload']['degree']}): wall {record['min_s']:.4f}s, "
            f"virtual makespan {record['makespan_virtual_s']:.4f}s, "
            f"{record['speedup_virtual']:.2f}x over back-to-back")


def run_shared_cell(quick: bool = False, seed: int = 0) -> dict:
    """Time the MPL-8 shared-work workload, folded vs private.

    Four modes over the same eight submissions: 0 % scan overlap
    (eight disjoint databases — the fold pass must find nothing and
    cost nothing) and 100 % overlap (eight copies of one query — the
    whole workload folds to one physical execution), each run with
    ``shared=False`` and ``shared=True``.  A fifth mode re-times the
    MPL-4 ``concurrent`` workload with the default (``shared=False``)
    options, which :func:`compare_shared` gates at 5 % against the
    committed pre-sharing ``concurrent`` baseline — the escape hatch
    must stay free.
    """
    card_a = QUICK_CARD_A if quick else FULL_CARD_A
    card_b = QUICK_CARD_B if quick else FULL_CARD_B
    machine = default_machine()
    databases = [make_join_database(card_a, card_b, OBS_DEGREE, theta=0.0)
                 for _ in range(SHARED_MPL)]
    modes = {}
    for label, overlap, shared in (("disjoint_private", 0.0, False),
                                   ("disjoint_shared", 0.0, True),
                                   ("overlap_private", 1.0, False),
                                   ("overlap_shared", 1.0, True)):
        times = []
        result = None
        for _ in range(SHARED_REPEATS):
            started = time.perf_counter()
            result = run_overlap_workload(databases, overlap, shared,
                                          threads=THREADS, machine=machine,
                                          seed=seed)
            times.append(time.perf_counter() - started)
        modes[label] = {
            "mean_s": round(statistics.fmean(times), 6),
            "min_s": round(min(times), 6),
            "runs": [round(t, 6) for t in times],
            "makespan_virtual_s": result.makespan,
            "result_rows": sum(e.result_cardinality
                               for e in result.executions.values()),
        }
    times = []
    result = None
    for _ in range(WORKLOAD_REPEATS):
        started = time.perf_counter()
        result = run_concurrent_workload(databases[0], CONCURRENT_MPL,
                                         threads=THREADS, machine=machine,
                                         seed=seed)
        times.append(time.perf_counter() - started)
    modes["concurrent_default"] = {
        "mean_s": round(statistics.fmean(times), 6),
        "min_s": round(min(times), 6),
        "runs": [round(t, 6) for t in times],
        "makespan_virtual_s": result.makespan,
        "result_rows": sum(e.result_cardinality
                           for e in result.executions.values()),
    }
    return {
        "workload": {"card_a": card_a, "card_b": card_b,
                     "degree": OBS_DEGREE, "mpl": SHARED_MPL,
                     "threads": THREADS, "repeats": SHARED_REPEATS,
                     "seed": seed},
        "modes": modes,
        "overlap_gain_virtual": round(
            modes["overlap_private"]["makespan_virtual_s"]
            / modes["overlap_shared"]["makespan_virtual_s"], 4),
        "disjoint_ratio_virtual": round(
            modes["disjoint_shared"]["makespan_virtual_s"]
            / modes["disjoint_private"]["makespan_virtual_s"], 6),
    }


def compare_shared(baseline: dict | None, current: dict,
                   concurrent_baseline: dict | None = None,
                   threshold: float = REGRESSION_THRESHOLD,
                   abs_slack_s: float = ABSOLUTE_SLACK_S) -> list[str]:
    """Flag shared-work problems of *current*.

    Within-run gates (always applied): the fully-overlapping workload
    must fold to at least ``SHARED_SPEEDUP_MIN`` virtual speed-up over
    its private twin; the zero-overlap workload must never be worse
    shared than private (exact, in virtual time) and its shared wall
    clock must stay within ``SHARED_OVERHEAD_THRESHOLD`` of its
    private twin timed in the same process; sharing must not change
    result cardinalities, and a folding win must be a wall win too
    (``overlap_shared`` no slower than ``overlap_private``, within the
    matrix threshold).  Against the committed *baseline* section:
    virtual makespans pinned exactly — wall clock is **not** gated
    against the record, because the sub-100ms fold cells flap far
    beyond any honest threshold across machine epochs on a shared
    box; every wall gate here is within-run, where both twins see the
    same epoch by construction.  Against the committed (pre-sharing)
    *concurrent_baseline*: the default-options MPL-4 probe must be
    bit-identical in virtual time — the machine-independent statement
    that the ``shared=False`` escape hatch is the pre-sharing engine
    (its wall cost is cross-epoch noise; the event-stream equality
    test in ``tests/workload/test_sharing.py`` pins the rest).
    """
    problems = []
    modes = current["modes"]
    gain = current["overlap_gain_virtual"]
    if gain < SHARED_SPEEDUP_MIN:
        problems.append(
            f"shared@mpl{current['workload']['mpl']}: full-overlap fold "
            f"gains only {gain:.2f}x virtual (< {SHARED_SPEEDUP_MIN}x)")
    if (modes["disjoint_shared"]["makespan_virtual_s"]
            > modes["disjoint_private"]["makespan_virtual_s"] * (1 + 1e-9)):
        problems.append(
            f"shared: zero-overlap workload got WORSE with sharing on "
            f"({modes['disjoint_private']['makespan_virtual_s']!r} -> "
            f"{modes['disjoint_shared']['makespan_virtual_s']!r})")
    for pair in ("disjoint", "overlap"):
        if (modes[f"{pair}_shared"]["result_rows"]
                != modes[f"{pair}_private"]["result_rows"]):
            problems.append(
                f"shared: {pair} result cardinality changed "
                f"{modes[f'{pair}_private']['result_rows']} -> "
                f"{modes[f'{pair}_shared']['result_rows']}")
    # Within-run overhead of the machinery itself: both twins ran
    # seconds apart in this process, so the comparison is inside one
    # machine epoch by construction.
    overhead_limit = (modes["disjoint_private"]["min_s"]
                      * (1.0 + SHARED_OVERHEAD_THRESHOLD) + abs_slack_s)
    if modes["disjoint_shared"]["min_s"] > overhead_limit:
        problems.append(
            f"shared: zero-overlap wall overhead of shared=True is "
            f"{modes['disjoint_private']['min_s']:.4f}s -> "
            f"{modes['disjoint_shared']['min_s']:.4f}s "
            f"(> {SHARED_OVERHEAD_THRESHOLD:.0%} within-run)")
    fold_limit = (modes["overlap_private"]["min_s"]
                  * (1.0 + threshold) + abs_slack_s)
    if modes["overlap_shared"]["min_s"] > fold_limit:
        problems.append(
            f"shared: full-overlap folding costs wall clock within-run "
            f"({modes['overlap_private']['min_s']:.4f}s private -> "
            f"{modes['overlap_shared']['min_s']:.4f}s shared)")
    if baseline is not None:
        for label, base in baseline["modes"].items():
            mode = modes.get(label)
            if mode is None:
                problems.append(f"shared/{label}: missing from current run")
                continue
            if mode["makespan_virtual_s"] != base["makespan_virtual_s"]:
                problems.append(
                    f"shared/{label}: virtual makespan changed "
                    f"{base['makespan_virtual_s']!r} -> "
                    f"{mode['makespan_virtual_s']!r}")
    if concurrent_baseline is not None:
        # Machine-independent parity with the committed *pre-sharing*
        # concurrent cell: default options must reproduce its virtual
        # makespan bit for bit (wall clock is compared only within one
        # machine epoch, via the shared section's own baseline above).
        probe = modes["concurrent_default"]
        if (probe["makespan_virtual_s"]
                != concurrent_baseline["makespan_virtual_s"]):
            problems.append(
                "shared: default options moved the concurrent cell's "
                f"virtual makespan "
                f"{concurrent_baseline['makespan_virtual_s']!r} -> "
                f"{probe['makespan_virtual_s']!r} — shared=False is no "
                f"longer bit-identical")
    return problems


def render_shared(record: dict) -> str:
    """Human-readable line for one shared-work cell run."""
    modes = record["modes"]
    return (f"shared (mpl={record['workload']['mpl']}"
            f"@{record['workload']['degree']}): full-overlap "
            f"{modes['overlap_private']['makespan_virtual_s']:.4f}s -> "
            f"{modes['overlap_shared']['makespan_virtual_s']:.4f}s virtual "
            f"({record['overlap_gain_virtual']:.2f}x), zero-overlap ratio "
            f"{record['disjoint_ratio_virtual']:.4f}, wall "
            f"{modes['overlap_shared']['min_s']:.4f}s")


#: The serving cell's open-loop workload: arrivals on the small
#: serving machine (8 processors, MPL 2) where overload is reachable.
SERVING_COUNT = 80
SERVING_SATURATION_COUNT = 60
SERVING_OVERLOAD = 2.0
SERVING_QUEUE_LIMIT = 6


def run_serving_cell(quick: bool = False, seed: int = 0) -> dict:
    """Time the open-loop serving workload off vs on vs protected.

    Three modes over the same seeded arrival sequence and template
    mix: ``serving_off`` runs with ``serving=None`` (the pre-serving
    engine — its virtual makespan is pinned against the committed
    record, so the serving layer provably does not move the legacy
    path), ``serving_on`` attaches a default :class:`ServingPolicy`
    (FIFO, unbounded — every admission decision routes through the
    policy object but none differ), and ``protected`` runs EDF with a
    bounded queue at :data:`SERVING_OVERLOAD` times the measured
    saturation throughput, pinning the shed/done counts of the
    overload response.  ``serving_off`` and ``serving_on`` are
    interleaved within each repeat: the within-run pair is the wall
    gate (:func:`compare_serving`) — the policy-object indirection
    must be free.  The scenario is fixed-size; *quick* and *seed* are
    recorded for provenance but only *seed* changes the cell.
    """
    from repro.bench.fig_serving import (
        MAX_CONCURRENT,
        measure_saturation,
        serving_machine,
    )
    from repro.serve.harness import default_templates, run_serving
    from repro.serve.policies import ServingPolicy
    from repro.workload.options import WorkloadOptions

    repeats = WORKLOAD_REPEATS
    machine = serving_machine()
    templates = default_templates()
    saturation = measure_saturation(templates, machine=machine,
                                    count=SERVING_SATURATION_COUNT,
                                    seed=seed)
    triples = [
        ("serving_off", saturation,
         WorkloadOptions(max_concurrent=MAX_CONCURRENT, serving=None)),
        ("serving_on", saturation,
         WorkloadOptions(max_concurrent=MAX_CONCURRENT,
                         serving=ServingPolicy())),
        ("protected", saturation * SERVING_OVERLOAD,
         WorkloadOptions(max_concurrent=MAX_CONCURRENT,
                         serving=ServingPolicy(
                             policy="edf",
                             queue_limit=SERVING_QUEUE_LIMIT))),
    ]
    times = {label: [] for label, _, _ in triples}
    results = {}
    for _ in range(repeats):
        for label, rate, workload in triples:
            started = time.perf_counter()
            results[label] = run_serving(
                templates=templates, rate=rate, count=SERVING_COUNT,
                seed=seed, machine=machine, workload=workload,
                observe=False)
            times[label].append(time.perf_counter() - started)
    modes = {}
    for label, rate, _ in triples:
        result = results[label]
        statuses: dict[str, int] = {}
        for execution in result.executions.values():
            statuses[execution.status] = (
                statuses.get(execution.status, 0) + 1)
        modes[label] = {
            "mean_s": round(statistics.fmean(times[label]), 6),
            "min_s": round(min(times[label]), 6),
            "runs": [round(t, 6) for t in times[label]],
            "rate_qps": round(rate, 6),
            "makespan_virtual_s": result.makespan,
            "statuses": dict(sorted(statuses.items())),
        }
    return {
        "workload": {"count": SERVING_COUNT, "mpl": MAX_CONCURRENT,
                     "processors": machine.processors,
                     "queue_limit": SERVING_QUEUE_LIMIT,
                     "overload": SERVING_OVERLOAD,
                     "saturation_qps": round(saturation, 6),
                     "repeats": repeats, "quick": quick, "seed": seed},
        "modes": modes,
        "on_over_off": round(
            modes["serving_on"]["min_s"] / modes["serving_off"]["min_s"], 4),
    }


def compare_serving(baseline: dict, current: dict,
                    threshold: float = OBS_REGRESSION_THRESHOLD,
                    abs_slack_s: float = ABSOLUTE_SLACK_S) -> list[str]:
    """Flag serving-layer problems against *baseline*.

    Three statements: ``serving_off``'s virtual makespan is pinned
    exactly against the committed record (the serving layer must not
    move the pre-serving engine), ``serving_on`` must reproduce
    ``serving_off``'s virtual makespan and statuses *within-run* (a
    default FIFO policy differs in zero decisions — the escape hatch
    and the policy object are the same engine), and the overload
    response is pinned — the ``protected`` mode's virtual makespan and
    its shed/done counts must match the committed record exactly.  The
    wall gate is the within-run twin: in at least one interleaved
    repeat ``serving_on`` must land within *threshold* plus
    *abs_slack_s* of its paired ``serving_off`` run.
    """
    problems = []
    base_off = baseline["modes"]["serving_off"]
    off = current["modes"]["serving_off"]
    on = current["modes"]["serving_on"]
    protected = current["modes"]["protected"]
    if off["makespan_virtual_s"] != base_off["makespan_virtual_s"]:
        problems.append(
            f"serving: legacy (serving=None) virtual makespan changed "
            f"{base_off['makespan_virtual_s']!r} -> "
            f"{off['makespan_virtual_s']!r}")
    if on["makespan_virtual_s"] != off["makespan_virtual_s"]:
        problems.append(
            f"serving: default ServingPolicy moved the virtual makespan "
            f"{off['makespan_virtual_s']!r} -> "
            f"{on['makespan_virtual_s']!r} — the FIFO policy object is "
            f"no longer the legacy admission order")
    if on["statuses"] != off["statuses"]:
        problems.append(
            f"serving: default ServingPolicy changed statuses "
            f"{off['statuses']} -> {on['statuses']}")
    base_protected = baseline["modes"]["protected"]
    if (protected["makespan_virtual_s"]
            != base_protected["makespan_virtual_s"]):
        problems.append(
            f"serving: protected virtual makespan changed "
            f"{base_protected['makespan_virtual_s']!r} -> "
            f"{protected['makespan_virtual_s']!r}")
    if protected["statuses"] != base_protected["statuses"]:
        problems.append(
            f"serving: overload response changed — protected statuses "
            f"{base_protected['statuses']} -> {protected['statuses']}")
    pairs = list(zip(off["runs"], on["runs"]))
    if not any(on_s <= off_s * (1.0 + threshold) + abs_slack_s
               for off_s, on_s in pairs):
        closest = min(pairs, key=lambda pair: pair[1] / pair[0])
        problems.append(
            f"serving wall-clock overhead: no interleaved repeat put "
            f"serving_on within {threshold:.0%} + "
            f"{abs_slack_s * 1000:.0f}ms of serving_off (closest pair "
            f"{closest[0]:.4f}s off vs {closest[1]:.4f}s on)")
    return problems


def render_serving(record: dict) -> str:
    """Human-readable line for one serving-cell run."""
    modes = record["modes"]
    shed = modes["protected"]["statuses"].get("shed", 0)
    done = modes["protected"]["statuses"].get("done", 0)
    return (f"serving ({record['workload']['count']} arrivals"
            f"@{record['workload']['saturation_qps']:.1f} q/s): "
            f"off {modes['serving_off']['min_s']:.4f}s, "
            f"on {modes['serving_on']['min_s']:.4f}s "
            f"({record['on_over_off']:.2f}x); protected at "
            f"x{record['workload']['overload']:g} sheds {shed}, "
            f"completes {done}")


def compare_matrices(baseline: dict, current: dict,
                     threshold: float = REGRESSION_THRESHOLD,
                     abs_slack_s: float = ABSOLUTE_SLACK_S) -> list[str]:
    """Flag regressions of *current* against *baseline*.

    Wall-clock cells are compared on best-of-N (more robust to noise
    than the mean on shared hardware); any cell slower by more than
    *threshold* plus *abs_slack_s* is reported — the absolute slack
    keeps millisecond-scale cells from tripping on timer jitter.
    Virtual response times and result cardinalities must match
    exactly — a mismatch means the engine's semantics drifted, which
    is worse than a slowdown and is always reported.
    """
    problems = []
    for key, base in baseline["cells"].items():
        cell = current["cells"].get(key)
        if cell is None:
            problems.append(f"{key}: missing from current run")
            continue
        if cell["result_rows"] != base["result_rows"]:
            problems.append(
                f"{key}: result cardinality changed "
                f"{base['result_rows']} -> {cell['result_rows']}")
        if cell["virtual_response_s"] != base["virtual_response_s"]:
            problems.append(
                f"{key}: virtual response time changed "
                f"{base['virtual_response_s']!r} -> "
                f"{cell['virtual_response_s']!r}")
        limit = base["min_s"] * (1.0 + threshold) + abs_slack_s
        if cell["min_s"] > limit:
            problems.append(
                f"{key}: wall-clock regressed {base['min_s']:.4f}s -> "
                f"{cell['min_s']:.4f}s (> {threshold:.0%} over baseline)")
    return problems


def render(matrix: dict) -> str:
    """Human-readable table of one matrix run."""
    lines = [f"{'cell':>18} {'mean_s':>10} {'std_s':>10} {'min_s':>10} "
             f"{'rows':>8}"]
    for key, cell in matrix["cells"].items():
        lines.append(f"{key:>18} {cell['mean_s']:>10.4f} "
                     f"{cell['std_s']:>10.4f} {cell['min_s']:>10.4f} "
                     f"{cell['result_rows']:>8}")
    return "\n".join(lines)


def load_baseline(path: str | Path) -> dict:
    """Read a committed ``BENCH_engine.json``."""
    return json.loads(Path(path).read_text())


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced cardinalities and repeats")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a committed BENCH_engine.json "
                             "(uses its 'quick' or 'full' section to match "
                             "the selected mode)")
    parser.add_argument("--out", metavar="PATH",
                        help="write this run's matrix as JSON")
    parser.add_argument("--obs", action="store_true",
                        help="also time obs-disabled vs obs-enabled and "
                             "gate the disabled mode at 5%%")
    parser.add_argument("--workload", action="store_true",
                        help="also time the session-overhead pair (gated "
                             "at 5%%) and the MPL-4 concurrent cell")
    parser.add_argument("--faults", action="store_true",
                        help="also time the no-plan vs empty-fault-plan "
                             "pair (gated at 5%%)")
    args = parser.parse_args(argv)

    baseline = None
    if args.check:  # fail on a bad path before the slow matrix run
        try:
            baseline = load_baseline(args.check)
        except (OSError, json.JSONDecodeError) as exc:
            parser.error(f"cannot read baseline {args.check}: {exc}")

    matrix = run_matrix(quick=args.quick)
    print(render(matrix))
    obs_record = obs_workload_record = monitor_record = None
    if args.obs:
        obs_record = run_obs_overhead(quick=args.quick)
        matrix["observability"] = obs_record
        print(render_obs(obs_record))
        obs_workload_record = run_obs_workload(quick=args.quick)
        matrix["obs_workload"] = obs_workload_record
        print(render_obs_workload(obs_workload_record))
        monitor_record = run_monitor_overhead(quick=args.quick)
        matrix["monitor"] = monitor_record
        print(render_monitor(monitor_record))
    session_record = concurrent_record = shared_record = None
    adaptive_record = serving_record = None
    if args.workload:
        session_record = run_session_overhead(quick=args.quick)
        matrix["session"] = session_record
        print(render_session(session_record))
        concurrent_record = run_concurrent_cell(quick=args.quick)
        matrix["concurrent"] = concurrent_record
        print(render_concurrent(concurrent_record))
        shared_record = run_shared_cell(quick=args.quick)
        matrix["shared"] = shared_record
        print(render_shared(shared_record))
        adaptive_record = run_adaptive_cell(quick=args.quick)
        matrix["adaptive"] = adaptive_record
        print(render_adaptive(adaptive_record))
        serving_record = run_serving_cell(quick=args.quick)
        matrix["serving"] = serving_record
        print(render_serving(serving_record))
    faults_record = None
    if args.faults:
        faults_record = run_faults_overhead(quick=args.quick)
        matrix["faults"] = faults_record
        print(render_faults(faults_record))
    if args.out:
        Path(args.out).write_text(json.dumps(matrix, indent=2) + "\n")
    if baseline is not None:
        scale = "quick" if args.quick else "full"
        problems = compare_matrices(baseline[scale]["after"], matrix)
        if obs_record is not None:
            obs_baseline = baseline.get("observability", {}).get(scale)
            if obs_baseline is None:
                problems.append(
                    f"baseline has no observability[{scale}] section")
            else:
                problems.extend(compare_obs(obs_baseline, obs_record))
        if obs_workload_record is not None:
            obs_workload_baseline = baseline.get(
                "obs_workload", {}).get(scale)
            if obs_workload_baseline is None:
                problems.append(
                    f"baseline has no obs_workload[{scale}] section")
            else:
                problems.extend(compare_obs_workload(
                    obs_workload_baseline, obs_workload_record))
        if monitor_record is not None:
            monitor_baseline = baseline.get("monitor", {}).get(scale)
            if monitor_baseline is None:
                problems.append(
                    f"baseline has no monitor[{scale}] section")
            else:
                problems.extend(compare_monitor(monitor_baseline,
                                                monitor_record))
        if session_record is not None:
            problems.extend(compare_session(session_record))
        if concurrent_record is not None:
            concurrent_baseline = baseline.get("concurrent", {}).get(scale)
            if concurrent_baseline is None:
                problems.append(
                    f"baseline has no concurrent[{scale}] section")
            else:
                problems.extend(compare_concurrent(concurrent_baseline,
                                                   concurrent_record))
        if shared_record is not None:
            problems.extend(compare_shared(
                baseline.get("shared", {}).get(scale), shared_record,
                baseline.get("concurrent", {}).get(scale)))
        if adaptive_record is not None:
            adaptive_baseline = baseline.get("adaptive", {}).get(scale)
            if adaptive_baseline is None:
                problems.append(
                    f"baseline has no adaptive[{scale}] section")
            else:
                problems.extend(compare_adaptive(adaptive_baseline,
                                                 adaptive_record))
        if serving_record is not None:
            serving_baseline = baseline.get("serving", {}).get(scale)
            if serving_baseline is None:
                problems.append(
                    f"baseline has no serving[{scale}] section")
            else:
                problems.extend(compare_serving(serving_baseline,
                                                serving_record))
        if faults_record is not None:
            problems.extend(compare_faults(faults_record))
        if problems:
            print("\nREGRESSIONS:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("\nno regressions against baseline")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
