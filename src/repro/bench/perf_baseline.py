"""Wall-clock perf-regression harness for the engine hot paths.

Unlike the figure benches (deterministic virtual-time experiments) and
the microbenches (pytest-benchmark timings of individual substrate
calls), this module measures *the simulator itself*: real elapsed
seconds to execute a fixed workload matrix — degree of partitioning
in {20, 200, 1500} crossed with the two queue disciplines (triggered
IdealJoin, pipelined AssocJoin).  The matrix is exactly the regime the
paper's Figures 16-19 sweep, where per-step queue scans once made the
event loop quadratic in the degree.

Results are written to ``BENCH_engine.json``; :func:`compare_matrices`
flags cells whose wall-clock regressed more than 20 % against the
committed baseline.  Each cell also records the run's *virtual*
response time and result cardinality, so a perf run doubles as a
cheap semantic regression check.

Usage::

    python -m repro.bench.perf_baseline            # full matrix, print
    python -m repro.bench.perf_baseline --quick    # reduced cardinalities
    python -m repro.bench.perf_baseline --check BENCH_engine.json
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.bench.runners import run_assoc_join, run_ideal_join
from repro.bench.workloads import make_join_database

#: The workload matrix: paper's Figure 16/17 degree sweep endpoints
#: plus the mid-range, crossed with both queue disciplines.
DEGREES = (20, 200, 1500)
MODES = ("triggered", "pipelined")

#: Full-matrix workload (the Figure 16 cardinalities).
FULL_CARD_A = 100_000
FULL_CARD_B = 10_000
FULL_REPEATS = 3

#: Quick-mode workload for CI smoke runs.
QUICK_CARD_A = 20_000
QUICK_CARD_B = 2_000
QUICK_REPEATS = 2

THREADS = 20

#: A cell regresses when its best-of-N wall-clock exceeds the baseline
#: best-of-N by more than this fraction.
REGRESSION_THRESHOLD = 0.20

#: Absolute slack added on top of the relative threshold: the fastest
#: cells finish in a few milliseconds, where scheduler jitter alone
#: exceeds 20 %.
ABSOLUTE_SLACK_S = 0.005

#: Observability must be free when off: the disabled mode may not be
#: more than this fraction slower than the committed disabled-mode
#: baseline (the guard instructions are one attribute check per site).
OBS_REGRESSION_THRESHOLD = 0.05

#: The obs-overhead probe workload: the pipelined discipline at the
#: mid-range degree, where queue traffic (the instrumented hot path)
#: dominates.
OBS_DEGREE = 200


def cell_key(mode: str, degree: int) -> str:
    """Stable JSON key of one matrix cell."""
    return f"{mode}@{degree}"


def run_cell(mode: str, degree: int, card_a: int, card_b: int,
             threads: int = THREADS, repeats: int = FULL_REPEATS,
             seed: int = 0) -> dict:
    """Time one workload cell; returns a JSON-ready record.

    The database is built once outside the timed region; each repeat
    re-executes plan construction, scheduling and the full simulation,
    which is what a query actually costs.
    """
    database = make_join_database(card_a, card_b, degree, theta=0.0)
    runner = run_ideal_join if mode == "triggered" else run_assoc_join
    times = []
    execution = None
    for _ in range(repeats):
        started = time.perf_counter()
        execution = runner(database, threads, seed=seed)
        times.append(time.perf_counter() - started)
    return {
        "mode": mode,
        "degree": degree,
        "mean_s": round(statistics.fmean(times), 6),
        "std_s": round(statistics.pstdev(times), 6) if len(times) > 1 else 0.0,
        "min_s": round(min(times), 6),
        "runs": [round(t, 6) for t in times],
        "result_rows": execution.result_cardinality,
        "virtual_response_s": execution.response_time,
    }


def run_matrix(quick: bool = False, seed: int = 0) -> dict:
    """Run the full degree x discipline matrix; returns the cell map."""
    card_a = QUICK_CARD_A if quick else FULL_CARD_A
    card_b = QUICK_CARD_B if quick else FULL_CARD_B
    repeats = QUICK_REPEATS if quick else FULL_REPEATS
    cells = {}
    for mode in MODES:
        for degree in DEGREES:
            cells[cell_key(mode, degree)] = run_cell(
                mode, degree, card_a, card_b, repeats=repeats, seed=seed)
    return {
        "workload": {"card_a": card_a, "card_b": card_b,
                     "threads": THREADS, "repeats": repeats, "seed": seed},
        "cells": cells,
    }


def run_obs_overhead(quick: bool = False, seed: int = 0) -> dict:
    """Time the obs-disabled vs obs-enabled pipelined workload.

    Returns a JSON-ready record with one timing block per mode plus
    the enabled/disabled best-of-N ratio.  The disabled mode is the
    regression gate (:func:`compare_obs`); the enabled mode documents
    what full instrumentation costs but is not gated — it does real
    extra work by design.
    """
    card_a = QUICK_CARD_A if quick else FULL_CARD_A
    card_b = QUICK_CARD_B if quick else FULL_CARD_B
    repeats = QUICK_REPEATS if quick else FULL_REPEATS
    database = make_join_database(card_a, card_b, OBS_DEGREE, theta=0.0)
    modes = {}
    for label, observe in (("disabled", False), ("enabled", True)):
        times = []
        execution = None
        for _ in range(repeats):
            started = time.perf_counter()
            execution = run_assoc_join(database, THREADS, seed=seed,
                                       observe=observe)
            times.append(time.perf_counter() - started)
        modes[label] = {
            "mean_s": round(statistics.fmean(times), 6),
            "min_s": round(min(times), 6),
            "runs": [round(t, 6) for t in times],
            "result_rows": execution.result_cardinality,
            "virtual_response_s": execution.response_time,
        }
    return {
        "workload": {"card_a": card_a, "card_b": card_b,
                     "degree": OBS_DEGREE, "mode": "pipelined",
                     "threads": THREADS, "repeats": repeats, "seed": seed},
        "modes": modes,
        "enabled_over_disabled": round(
            modes["enabled"]["min_s"] / modes["disabled"]["min_s"], 4),
    }


def compare_obs(baseline: dict, current: dict,
                threshold: float = OBS_REGRESSION_THRESHOLD,
                abs_slack_s: float = ABSOLUTE_SLACK_S) -> list[str]:
    """Flag obs-overhead problems of *current* against *baseline*.

    Two gates: the disabled mode may not be more than *threshold*
    (plus *abs_slack_s*) slower than the committed disabled baseline —
    instrumentation guards must stay free when off — and turning
    observability on may not move virtual time or results at all.
    """
    problems = []
    base = baseline["modes"]["disabled"]
    disabled = current["modes"]["disabled"]
    enabled = current["modes"]["enabled"]
    limit = base["min_s"] * (1.0 + threshold) + abs_slack_s
    if disabled["min_s"] > limit:
        problems.append(
            f"obs-disabled wall-clock regressed {base['min_s']:.4f}s -> "
            f"{disabled['min_s']:.4f}s (> {threshold:.0%} over baseline)")
    if enabled["virtual_response_s"] != disabled["virtual_response_s"]:
        problems.append(
            "observability moved virtual time: "
            f"{disabled['virtual_response_s']!r} -> "
            f"{enabled['virtual_response_s']!r}")
    if enabled["result_rows"] != disabled["result_rows"]:
        problems.append(
            f"observability changed results: {disabled['result_rows']} -> "
            f"{enabled['result_rows']}")
    return problems


def render_obs(record: dict) -> str:
    """Human-readable line for one obs-overhead run."""
    disabled = record["modes"]["disabled"]
    enabled = record["modes"]["enabled"]
    return (f"obs overhead (pipelined@{record['workload']['degree']}): "
            f"disabled {disabled['min_s']:.4f}s, "
            f"enabled {enabled['min_s']:.4f}s "
            f"({record['enabled_over_disabled']:.2f}x)")


def compare_matrices(baseline: dict, current: dict,
                     threshold: float = REGRESSION_THRESHOLD,
                     abs_slack_s: float = ABSOLUTE_SLACK_S) -> list[str]:
    """Flag regressions of *current* against *baseline*.

    Wall-clock cells are compared on best-of-N (more robust to noise
    than the mean on shared hardware); any cell slower by more than
    *threshold* plus *abs_slack_s* is reported — the absolute slack
    keeps millisecond-scale cells from tripping on timer jitter.
    Virtual response times and result cardinalities must match
    exactly — a mismatch means the engine's semantics drifted, which
    is worse than a slowdown and is always reported.
    """
    problems = []
    for key, base in baseline["cells"].items():
        cell = current["cells"].get(key)
        if cell is None:
            problems.append(f"{key}: missing from current run")
            continue
        if cell["result_rows"] != base["result_rows"]:
            problems.append(
                f"{key}: result cardinality changed "
                f"{base['result_rows']} -> {cell['result_rows']}")
        if cell["virtual_response_s"] != base["virtual_response_s"]:
            problems.append(
                f"{key}: virtual response time changed "
                f"{base['virtual_response_s']!r} -> "
                f"{cell['virtual_response_s']!r}")
        limit = base["min_s"] * (1.0 + threshold) + abs_slack_s
        if cell["min_s"] > limit:
            problems.append(
                f"{key}: wall-clock regressed {base['min_s']:.4f}s -> "
                f"{cell['min_s']:.4f}s (> {threshold:.0%} over baseline)")
    return problems


def render(matrix: dict) -> str:
    """Human-readable table of one matrix run."""
    lines = [f"{'cell':>18} {'mean_s':>10} {'std_s':>10} {'min_s':>10} "
             f"{'rows':>8}"]
    for key, cell in matrix["cells"].items():
        lines.append(f"{key:>18} {cell['mean_s']:>10.4f} "
                     f"{cell['std_s']:>10.4f} {cell['min_s']:>10.4f} "
                     f"{cell['result_rows']:>8}")
    return "\n".join(lines)


def load_baseline(path: str | Path) -> dict:
    """Read a committed ``BENCH_engine.json``."""
    return json.loads(Path(path).read_text())


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced cardinalities and repeats")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a committed BENCH_engine.json "
                             "(uses its 'quick' or 'full' section to match "
                             "the selected mode)")
    parser.add_argument("--out", metavar="PATH",
                        help="write this run's matrix as JSON")
    parser.add_argument("--obs", action="store_true",
                        help="also time obs-disabled vs obs-enabled and "
                             "gate the disabled mode at 5%%")
    args = parser.parse_args(argv)

    baseline = None
    if args.check:  # fail on a bad path before the slow matrix run
        try:
            baseline = load_baseline(args.check)
        except (OSError, json.JSONDecodeError) as exc:
            parser.error(f"cannot read baseline {args.check}: {exc}")

    matrix = run_matrix(quick=args.quick)
    print(render(matrix))
    obs_record = None
    if args.obs:
        obs_record = run_obs_overhead(quick=args.quick)
        matrix["observability"] = obs_record
        print(render_obs(obs_record))
    if args.out:
        Path(args.out).write_text(json.dumps(matrix, indent=2) + "\n")
    if baseline is not None:
        scale = "quick" if args.quick else "full"
        problems = compare_matrices(baseline[scale]["after"], matrix)
        if obs_record is not None:
            obs_baseline = baseline.get("observability", {}).get(scale)
            if obs_baseline is None:
                problems.append(
                    f"baseline has no observability[{scale}] section")
            else:
                problems.extend(compare_obs(obs_baseline, obs_record))
        if problems:
            print("\nREGRESSIONS:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("\nno regressions against baseline")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
