"""Figure 12: AssocJoin execution time versus data skew.

A = 100K tuples (skewed by a Zipf factor 0..1), B' = 10K tuples
(uniform), both partitioned into 200 fragments; AssocJoin with 10
threads, Random consumption.

Paper shapes to reproduce:

* the measured execution time is **constant whatever the skew** (the
  10K tuple activations absorb the imbalance);
* the measured time stays within a few percent of the analytic Tworst
  (the paper reports a maximum deviation of about 3%).
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.bench.runners import chain_ideal_time, chain_worst_time, run_assoc_join
from repro.bench.workloads import make_join_database

PAPER_THETAS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
PAPER_CARD_A = 100_000
PAPER_CARD_B = 10_000
PAPER_DEGREE = 200
PAPER_THREADS = 10
#: The paper: "the maximum deviation is small (3%)".
PAPER_MAX_DEVIATION = 0.03


def run(card_a: int = PAPER_CARD_A, card_b: int = PAPER_CARD_B,
        degree: int = PAPER_DEGREE, threads: int = PAPER_THREADS,
        thetas: tuple[float, ...] = PAPER_THETAS,
        seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 12: measured (Random) vs analytic Tworst."""
    measured = []
    worst = []
    ideal = []
    matches = []
    for theta in thetas:
        database = make_join_database(card_a, card_b, degree, theta)
        execution = run_assoc_join(database, threads, strategy="random",
                                   seed=seed)
        measured.append(execution.response_time)
        worst.append(chain_worst_time(execution))
        ideal.append(chain_ideal_time(execution))
        matches.append(execution.result_cardinality)

    result = ExperimentResult(
        experiment_id="fig12",
        title=(f"AssocJoin execution time vs skew "
               f"(|A|={card_a}, |B'|={card_b}, degree={degree}, "
               f"{threads} threads, Random)"),
        x_label="zipf",
        x_values=thetas,
    )
    result.add_series("measured (Random)", measured)
    result.add_series("Tworst", worst)
    result.add_series("Tideal", ideal)
    flat = result.get("measured (Random)")
    result.notes["measured_spread"] = flat.spread()
    result.notes["paper_max_deviation"] = PAPER_MAX_DEVIATION
    result.notes["result_cardinalities"] = tuple(matches)
    return result
