"""Figure 19: time saved by raising the degree of partitioning.

Thin alias module: Figure 19 is computed from the same sweep as
Figure 18 (see :mod:`repro.bench.fig18_skew_overhead_degree`); this
module gives it its own entry point so every figure has one.
"""

from __future__ import annotations

from repro.bench.fig18_skew_overhead_degree import (
    PAPER_CARD_A,
    PAPER_CARD_B,
    PAPER_DEGREES,
    PAPER_THETA,
    PAPER_THREADS,
    run_saved_time,
)

#: The paper's reference: unskewed execution time T0 = 7.34 s.
PAPER_T0 = 7.34

run = run_saved_time

__all__ = ["PAPER_CARD_A", "PAPER_CARD_B", "PAPER_DEGREES", "PAPER_T0",
           "PAPER_THETA", "PAPER_THREADS", "run"]
