"""Overload-robust serving: open-loop arrivals + overload protection.

Two halves:

* :mod:`repro.serve.arrivals` — seeded open-loop arrival processes
  (Poisson, bursty MMPP, diurnal), all in virtual time and
  byte-reproducible per seed.
* :mod:`repro.serve.policies` — the :class:`ServingPolicy`
  configuration block and the pluggable admission policies (FIFO,
  priority classes, weighted fair share, deadline-aware EDF) with
  their bounded, indexed wait queues.

:mod:`repro.serve.harness` glues them to the workload engine: query
templates, submission generation, the decision log and the serving
statistics the benchmark reports.

The layer is opt-in: ``WorkloadOptions(serving=None)`` (the default)
keeps the engine bit-identical to the pre-serving engine.
"""

from repro.serve.arrivals import (
    ARRIVAL_PROCESSES,
    ArrivalProcess,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    make_arrival_process,
)
from repro.serve.policies import (
    POLICIES,
    AdmissionPolicy,
    EdfPolicy,
    FairSharePolicy,
    FifoPolicy,
    PriorityPolicy,
    ServingPolicy,
    make_admission_policy,
    provably_infeasible,
)

#: Harness names resolve lazily: the harness imports the workload
#: engine, which imports :mod:`repro.serve.policies` — an eager import
#: here would close that cycle while this package is half-initialized.
_HARNESS_NAMES = (
    "QueryTemplate", "build_submissions", "decision_digest",
    "decision_log", "default_templates", "run_serving", "serving_stats",
)


def __getattr__(name):
    if name in _HARNESS_NAMES:
        from repro.serve import harness
        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ARRIVAL_PROCESSES",
    "AdmissionPolicy",
    "ArrivalProcess",
    "DiurnalArrivals",
    "EdfPolicy",
    "FairSharePolicy",
    "FifoPolicy",
    "MMPPArrivals",
    "POLICIES",
    "PoissonArrivals",
    "PriorityPolicy",
    "QueryTemplate",
    "ServingPolicy",
    "build_submissions",
    "decision_digest",
    "decision_log",
    "default_templates",
    "make_admission_policy",
    "make_arrival_process",
    "provably_infeasible",
    "run_serving",
    "serving_stats",
]
