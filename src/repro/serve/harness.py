"""The open-loop serving harness.

Turns an :class:`~repro.serve.arrivals.ArrivalProcess` plus a weighted
mix of :class:`QueryTemplate`\\ s into a workload-engine submission
list — the bridge between "requests per virtual second" and the
closed batch API the engine executes.  The serving benchmark
(:mod:`repro.bench.fig_serving`), the chaos suite and the ``serve``
CLI command all drive overload through here.

Everything is a pure function of ``(templates, process, count,
seed)``: template choice and arrival instants come from dedicated
``random.Random`` streams, so two runs with the same inputs produce
byte-identical submission lists — and, the engine being
deterministic, byte-identical decision logs
(:func:`decision_log` / :func:`decision_digest` pin this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.obs.bus import (
    QUERY_ADMIT,
    QUERY_CANCEL,
    QUERY_FINISH,
    QUERY_REJECT,
    QUERY_SUBMIT,
    SERVE_BACKPRESSURE,
    SERVE_BROWNOUT,
)
from repro.obs.metrics import percentile
from repro.serve.arrivals import ArrivalProcess, make_arrival_process
from repro.serve.policies import ServingPolicy
from repro.workload.engine import (
    QuerySubmission,
    WorkloadExecutor,
    WorkloadResult,
)
from repro.workload.options import WorkloadOptions


@dataclass(frozen=True)
class QueryTemplate:
    """One entry of the serving mix.

    A template names a query *shape* (join over a table pair of the
    given cardinalities) plus its serving attributes.  ``slo`` is the
    per-query deadline in virtual seconds — it rides the engine's
    existing timeout machinery, so an admitted query that overruns it
    ends ``timed_out`` (wasted machine time, the cost load shedding
    exists to avoid) and EDF can reason about it *before* admission.
    """

    name: str
    weight: float = 1.0
    priority: int = 0
    tenant: str = "default"
    slo: float | None = None
    card_a: int = 60
    card_b: int = 40
    assoc: bool = False

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError(
                f"template weight must be > 0, got {self.weight} "
                f"for {self.name!r}")
        if self.slo is not None and self.slo <= 0:
            raise WorkloadError(
                f"slo must be > 0, got {self.slo} for {self.name!r}")


def default_templates() -> tuple[QueryTemplate, ...]:
    """The benchmark's three-class, two-tenant serving mix.

    Interactive point-ish joins dominate arrivals and carry the tight
    SLO and the high priority; batch analytics queries are rare, big,
    deadline-free and low-priority — the classic mix where FIFO
    under overload lets the batch tail push the interactive p99 over
    its SLO.
    """
    return (
        QueryTemplate("interactive", weight=6.0, priority=2, tenant="web",
                      slo=1.0, card_a=24, card_b=16),
        QueryTemplate("standard", weight=3.0, priority=1, tenant="web",
                      slo=3.0, card_a=60, card_b=40),
        QueryTemplate("batch", weight=1.0, priority=0, tenant="analytics",
                      slo=None, card_a=140, card_b=90, assoc=True),
    )


def build_submissions(templates, times, machine=None, seed: int = 0,
                      timeouts: bool = True) -> list[QuerySubmission]:
    """Materialize one submission per arrival instant.

    The template of each arrival is drawn (weighted) from a dedicated
    ``random.Random(seed)`` stream — independent of the arrival-time
    stream, so changing the mix does not perturb the arrival times.
    Every submission gets a *fresh* plan (plans hold runtime state)
    scheduled by the adaptive scheduler over *machine*.  With
    ``timeouts=False`` the SLOs are dropped — the pure-queueing FIFO
    baseline the benchmark contrasts against.
    """
    from repro.bench.runners import default_machine
    from repro.bench.workloads import make_join_database
    from repro.compiler.parallelizer import CompiledQuery
    from repro.lera.plans import assoc_join_plan, ideal_join_plan
    from repro.scheduler.adaptive import AdaptiveScheduler

    if not templates:
        raise WorkloadError("empty template mix")
    machine = machine or default_machine()
    scheduler = AdaptiveScheduler(machine)
    rng = random.Random(seed)
    databases = {
        template.name: make_join_database(
            template.card_a, template.card_b, degree=2, theta=0.0,
            name_a=f"{template.name}_a", name_b=f"{template.name}_b")
        for template in templates
    }
    weights = [template.weight for template in templates]
    submissions: list[QuerySubmission] = []
    for index, at in enumerate(times):
        template = rng.choices(templates, weights)[0]
        database = databases[template.name]
        builder = assoc_join_plan if template.assoc else ideal_join_plan
        plan = builder(database.entry_a, database.entry_b, "key", "key")
        schedule = scheduler.schedule(plan, None)
        submissions.append(QuerySubmission(
            f"{template.name}-{index}",
            CompiledQuery(plan, None, None, f"serving {template.name}"),
            schedule, arrival=at,
            timeout=template.slo if timeouts else None,
            priority=template.priority, tenant=template.tenant))
    return submissions


def run_serving(templates=None, arrival: str | ArrivalProcess = "poisson",
                rate: float = 1.0, count: int = 100, seed: int = 0,
                serving: ServingPolicy | None = None,
                machine=None, workload: WorkloadOptions | None = None,
                observe: bool = True,
                timeouts: bool = True) -> WorkloadResult:
    """One open-loop serving run, end to end.

    Generates *count* arrivals from the named (or given) arrival
    process at long-run *rate*, draws the template mix, and executes
    under *serving* — or, when a full :class:`WorkloadOptions` is
    passed, under exactly those options (*serving* is then ignored in
    favour of ``workload.serving``).
    """
    from repro.bench.runners import default_machine
    from repro.engine.executor import ExecutionOptions, ObservabilityOptions

    templates = tuple(templates) if templates else default_templates()
    machine = machine or default_machine()
    process = (arrival if isinstance(arrival, ArrivalProcess)
               else make_arrival_process(arrival, rate))
    times = process.times(count, seed=seed)
    submissions = build_submissions(templates, times, machine=machine,
                                    seed=seed, timeouts=timeouts)
    if workload is None:
        workload = WorkloadOptions(serving=serving)
    options = ExecutionOptions(
        seed=seed, observability=ObservabilityOptions(observe=observe))
    return WorkloadExecutor(machine, options, workload).execute(submissions)


# -- analysis ----------------------------------------------------------------

#: Event kinds whose full payloads constitute the run's decision log.
DECISION_KINDS = (QUERY_SUBMIT, QUERY_ADMIT, QUERY_REJECT, QUERY_CANCEL,
                  QUERY_FINISH, SERVE_BACKPRESSURE, SERVE_BROWNOUT)


def decision_log(result: WorkloadResult) -> tuple:
    """The run's full arrival + admission decision sequence.

    Every submit/admit/reject/cancel/finish and every backpressure or
    brownout transition, in emission order, with full payloads.  Two
    runs of the same seed must produce *equal* logs — the per-seed
    determinism property the hypothesis suite and the chaos twin
    audit pin.
    """
    log = []
    for event in result.bus.events:
        if event.kind not in DECISION_KINDS:
            continue
        data = (tuple(sorted((key, repr(value))
                             for key, value in event.data.items()))
                if event.data else ())
        log.append((event.kind, event.t, event.operation, data))
    return tuple(log)


def decision_digest(result: WorkloadResult) -> str:
    """Stable hex digest of :func:`decision_log` (twin-run identity)."""
    import hashlib
    payload = repr(decision_log(result)).encode()
    return hashlib.sha256(payload).hexdigest()


def serving_stats(result: WorkloadResult,
                  slo_by_class: dict[int, float] | None = None) -> dict:
    """Distil one serving run into the benchmark's row.

    * ``statuses`` — terminal-status tally (conservation check:
      the values sum to the submission count).
    * ``goodput`` — queries that completed *within their SLO* per
      virtual second.  SLOs ride the timeout machinery, so ``done``
      already means "within SLO" when timeouts are armed.
    * ``classes`` — per-priority-class p50/p95/p99 latency over
      completed queries, plus that class's shed/rejected/timed-out
      counts (the per-class fate of the overload).
    """
    statuses: dict[str, int] = {}
    for execution in result.executions.values():
        statuses[execution.status] = statuses.get(execution.status, 0) + 1
    done = statuses.get("done", 0)
    goodput = done / result.makespan if result.makespan > 0 else 0.0

    per_class: dict[str, dict] = {}
    latencies: dict[str, list[float]] = {}
    submission_priority: dict[str, int] = {}
    for event in result.bus.events:
        if event.kind == QUERY_SUBMIT and event.data:
            priority = event.data.get("priority")
            if priority is not None:
                submission_priority[event.operation] = priority
    for tag, execution in result.executions.items():
        priority = submission_priority.get(tag, 0)
        klass = f"p{priority}"
        stats = per_class.setdefault(
            klass, {"submitted": 0, "done": 0, "shed": 0, "rejected": 0,
                    "timed_out": 0})
        stats["submitted"] += 1
        if execution.status in stats:
            stats[execution.status] = stats.get(execution.status, 0) + 1
        if execution.status == "done":
            latencies.setdefault(klass, []).append(execution.response_time)
    for klass, values in latencies.items():
        per_class[klass].update(
            p50=percentile(values, 50), p95=percentile(values, 95),
            p99=percentile(values, 99))
    return {
        "queries": len(result.executions),
        "statuses": statuses,
        "makespan": result.makespan,
        "goodput": goodput,
        "classes": dict(sorted(per_class.items())),
    }
