"""Pluggable admission policies and the indexed wait queue.

Grown out of :mod:`repro.workload.admission`: the
:class:`~repro.workload.admission.AdmissionController` keeps deciding
*whether* capacity exists (concurrency bound + memory gate); the
policy objects here decide *who* is offered that capacity next, and
*who* is shed when the bounded wait queue overflows.

Two layers:

* :class:`ServingPolicy` — the frozen configuration block nested in
  :class:`~repro.workload.options.WorkloadOptions` (``serving=``).
  ``None`` (the default) keeps the engine on its legacy FIFO path,
  bit-identical to the pre-serving engine — the escape hatch every
  subsystem keeps.
* :class:`AdmissionPolicy` subclasses — the per-run mutable queue
  structures.  Each owns an *indexed* wait queue (deque or
  lazy-deletion heap), so one admission step costs O(log waiting) at
  worst and O(1) amortized — not the O(waiting) list-shift the old
  FIFO gate paid per admitted query, which is what made thousands of
  queued arrivals quadratic.

Policies (names in :data:`POLICIES`):

* ``fifo`` — arrival order, head-or-nobody (the legacy discipline).
* ``priority`` — strict priority classes, FIFO within a class; the
  overflow victim is the lowest-priority, youngest waiter.
* ``fair_share`` — weighted fair share across tenants: the tenant
  with the least admitted work per unit weight goes next; the
  overflow victim comes from the most over-share tenant.
* ``edf`` — earliest deadline first, using the timeout machinery's
  per-query deadlines; provably deadline-infeasible waiters (the
  sequential start-up alone already overruns the deadline) are shed
  instead of admitted, and the overflow victim is the *least urgent*
  waiter — latest deadline, deadline-free first.

Every decision is a deterministic function of queue state, so the
full admission/shed log is byte-reproducible per seed — the
hypothesis suite holds the policies to that.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import WorkloadError

#: Policy names, in documentation order.
POLICY_FIFO = "fifo"
POLICY_PRIORITY = "priority"
POLICY_FAIR_SHARE = "fair_share"
POLICY_EDF = "edf"
POLICIES = (POLICY_FIFO, POLICY_PRIORITY, POLICY_FAIR_SHARE, POLICY_EDF)

#: Shed reasons stamped on ``query.reject`` events and the
#: ``queries_shed_total`` counter.
SHED_QUEUE_FULL = "queue_full"
SHED_DEADLINE_INFEASIBLE = "deadline_infeasible"

#: Reject reasons (a query that could *never* run, not overload).
REJECT_MEMORY = "memory_infeasible"
REJECT_IDLE = "idle_infeasible"


@dataclass(frozen=True)
class ServingPolicy:
    """The serving/overload-protection configuration block.

    Attached to :class:`~repro.workload.options.WorkloadOptions` as
    ``serving=``.  ``None`` there disables the whole layer; a
    ``ServingPolicy()`` with all defaults enables it in its mildest
    form — FIFO order, unbounded queue, no brownout — whose admission
    *decisions* are identical to the legacy engine (what the perf
    harness's serving overhead cell pins at under 5% wall and equal
    virtual makespan).
    """

    policy: str = POLICY_FIFO
    """Admission order: one of :data:`POLICIES`."""
    queue_limit: int | None = None
    """Bounded wait queue: when more than this many queries wait, the
    policy's overflow victim is shed (terminal status ``shed``) and a
    backpressure signal is emitted.  ``None`` leaves the queue
    unbounded (no shedding, no backpressure)."""
    tenant_weights: Mapping[str, float] | None = None
    """Fair-share weights by tenant name (``fair_share`` only);
    unlisted tenants weigh 1.0."""
    brownout: bool = False
    """Degrade before shedding: while a critical monitor signal is
    active (the SLO burn-rate or retry-storm alert), step-0 grants
    shrink by :attr:`brownout_factor` — trading per-query parallelism
    (and its dilation cost) for throughput — and, with shared-work
    execution on, a fully-foldable waiter may be admitted past the
    concurrency bound since it rides existing work for free.
    Requires monitor rules to be installed; without them there is no
    signal and brownout never trips."""
    brownout_factor: float = 0.5
    """Grant multiplier while browned out (clamped to >= 1 thread)."""

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise WorkloadError(
                f"unknown admission policy {self.policy!r} "
                f"(expected one of {POLICIES})")
        if self.queue_limit is not None and self.queue_limit < 1:
            raise WorkloadError(
                f"queue_limit must be >= 1, got {self.queue_limit} "
                f"(a zero-slot queue would shed every waiting query)")
        if not 0.0 < self.brownout_factor <= 1.0:
            raise WorkloadError(
                f"brownout_factor must be in (0, 1], got "
                f"{self.brownout_factor}")
        if self.tenant_weights is not None:
            frozen = tuple(sorted(self.tenant_weights.items()))
            for tenant, weight in frozen:
                if weight <= 0:
                    raise WorkloadError(
                        f"tenant weight must be > 0, got {weight} for "
                        f"tenant {tenant!r}")
            object.__setattr__(self, "tenant_weights", frozen)

    def weight_of(self, tenant: str) -> float:
        """Fair-share weight of *tenant* (1.0 when unlisted)."""
        if self.tenant_weights:
            for name, weight in self.tenant_weights:
                if name == tenant:
                    return weight
        return 1.0

    def replace(self, **changes) -> "ServingPolicy":
        """Copy with the given fields replaced."""
        import dataclasses
        merged = {f.name: getattr(self, f.name)
                  for f in dataclasses.fields(self)}
        merged.update(changes)
        if merged.get("tenant_weights") is not None:
            merged["tenant_weights"] = dict(merged["tenant_weights"])
        return ServingPolicy(**merged)


def _deadline_of(job) -> float:
    """A job's absolute deadline instant (+inf when it has none)."""
    deadline = job.deadline
    return deadline[0] if deadline is not None else float("inf")


class AdmissionPolicy:
    """One run's wait queue + admission/shed ordering (mutable).

    The engine talks to it through six operations — ``push`` (a query
    arrived), ``peek`` (who would be admitted next), ``pop`` (it was
    admitted or shed), ``remove`` (withdrawn by cancellation),
    ``victim`` (who to shed on queue overflow) and ``on_admit``
    (bookkeeping for fairness state).  ``jobs()`` lists the live
    waiters in arrival order for audits and reports.
    """

    name = "policy"
    #: EDF sheds provably deadline-infeasible waiters at admission.
    sheds_infeasible = False

    def push(self, job) -> None:
        raise NotImplementedError

    def peek(self):
        """The next candidate for admission, or ``None`` when empty."""
        raise NotImplementedError

    def pop(self, job) -> None:
        """Remove *job* (the last ``peek``/``victim`` result)."""
        raise NotImplementedError

    def remove(self, job) -> None:
        """Withdraw *job* wherever it sits (cancellation/timeout)."""
        self.pop(job)

    def victim(self, now: float):
        """Who to shed when the bounded queue overflows (never
        ``None`` while the queue is non-empty)."""
        raise NotImplementedError

    def on_admit(self, job) -> None:
        """Bookkeeping hook: *job* was admitted to the machine."""

    def jobs(self) -> list:
        """Live waiting jobs, in arrival order."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(waiting={len(self)})"


class FifoPolicy(AdmissionPolicy):
    """Arrival order, head-or-nobody — the legacy admission queue.

    A deque keeps both admission (``popleft``) and overflow shedding
    (the *newest* waiter, at the right end) O(1); the old list-based
    queue paid an O(n) shift per admitted query.
    """

    name = POLICY_FIFO

    def __init__(self) -> None:
        self._queue: deque = deque()

    def push(self, job) -> None:
        self._queue.append(job)

    def peek(self):
        return self._queue[0] if self._queue else None

    def pop(self, job) -> None:
        if self._queue and self._queue[0] is job:
            self._queue.popleft()
        elif self._queue and self._queue[-1] is job:
            self._queue.pop()
        else:
            self._queue.remove(job)

    def victim(self, now: float):
        return self._queue[-1] if self._queue else None

    def jobs(self) -> list:
        return list(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


class _HeapPolicy(AdmissionPolicy):
    """Lazy-deletion binary heap over a static per-job key.

    ``remove`` tombstones in O(1); dead entries are skimmed off the
    top on the next ``peek``.  Admission work is therefore O(log n)
    per decision regardless of how many queries wait.
    """

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._dead: set[int] = set()
        self._live: dict[int, object] = {}

    def _key(self, job) -> tuple:
        raise NotImplementedError

    def push(self, job) -> None:
        heapq.heappush(self._heap, (*self._key(job), job.order, job))
        self._live[id(job)] = job

    def _skim(self) -> None:
        while self._heap and id(self._heap[0][-1]) in self._dead:
            entry = heapq.heappop(self._heap)
            self._dead.discard(id(entry[-1]))

    def peek(self):
        self._skim()
        return self._heap[0][-1] if self._heap else None

    def pop(self, job) -> None:
        if id(job) not in self._live:
            raise WorkloadError(
                f"cannot pop {job.tag!r}: not in the wait queue")
        del self._live[id(job)]
        self._skim()
        if self._heap and self._heap[0][-1] is job:
            heapq.heappop(self._heap)
        else:
            self._dead.add(id(job))

    def jobs(self) -> list:
        return sorted(self._live.values(), key=lambda job: job.order)

    def __len__(self) -> int:
        return len(self._live)


class PriorityPolicy(_HeapPolicy):
    """Strict priority classes, FIFO within a class.

    Higher ``priority`` is more important.  Head-or-nobody still
    applies within the ordering (a too-big high-priority head blocks
    lower classes — no convoy re-ordering), and the overflow victim
    is the lowest-priority, youngest waiter, so under sustained
    overload the high classes keep their queue slots.
    """

    name = POLICY_PRIORITY

    def __init__(self) -> None:
        super().__init__()
        #: Shed-side heap: lowest priority first, newest first.
        self._shed_heap: list[tuple] = []

    def _key(self, job) -> tuple:
        return (-job.priority, job.arrival)

    def push(self, job) -> None:
        super().push(job)
        heapq.heappush(self._shed_heap,
                       (job.priority, -job.arrival, -job.order, job))

    def victim(self, now: float):
        while self._shed_heap and id(self._shed_heap[0][-1]) not in self._live:
            heapq.heappop(self._shed_heap)
        return self._shed_heap[0][-1] if self._shed_heap else None


class EdfPolicy(_HeapPolicy):
    """Earliest deadline first, with infeasibility shedding.

    Orders by each query's absolute deadline (the timeout machinery's
    ``arrival + timeout`` or explicit ``cancel_at``; deadline-free
    queries sort last, FIFO among themselves).  Doomed work is culled
    at both ends: the engine asks :attr:`sheds_infeasible` policies
    whether the head is *provably* infeasible before admitting it
    (its start-up alone overruns the deadline — shed, never run), and
    the queue-overflow victim is the *least urgent* waiter — latest
    deadline, deadline-free first, youngest on ties — since under
    sustained overload that is the query most likely to be preempted
    by newer, more urgent arrivals until its turn never comes.
    """

    name = POLICY_EDF
    sheds_infeasible = True

    def __init__(self) -> None:
        super().__init__()
        #: Shed-side heap: latest deadline first, youngest first.
        self._shed_heap: list[tuple] = []

    def _key(self, job) -> tuple:
        return (_deadline_of(job), job.arrival)

    def push(self, job) -> None:
        super().push(job)
        heapq.heappush(self._shed_heap,
                       (-_deadline_of(job), -job.arrival, -job.order, job))

    def victim(self, now: float):
        while self._shed_heap and id(self._shed_heap[0][-1]) not in self._live:
            heapq.heappop(self._shed_heap)
        return self._shed_heap[0][-1] if self._shed_heap else None


class FairSharePolicy(AdmissionPolicy):
    """Weighted fair share across tenants.

    Per-tenant FIFO queues plus a cumulative admitted-work tally; the
    next candidate is the head of the queue of the tenant with the
    least ``admitted_work / weight`` (ties break on the tenant name).
    The overflow victim is the *youngest* waiter of the most
    over-share tenant — overload cannot starve a light tenant because
    a heavy one keeps arriving.
    """

    name = POLICY_FAIR_SHARE

    def __init__(self, config: ServingPolicy) -> None:
        self._config = config
        self._queues: dict[str, deque] = {}
        self._admitted_work: dict[str, float] = {}
        self._count = 0

    def _share(self, tenant: str) -> float:
        return (self._admitted_work.get(tenant, 0.0)
                / self._config.weight_of(tenant))

    def push(self, job) -> None:
        self._queues.setdefault(job.tenant, deque()).append(job)
        self._count += 1

    def _pick_tenant(self, reverse: bool = False) -> str | None:
        live = [t for t, q in self._queues.items() if q]
        if not live:
            return None
        if reverse:
            return max(live, key=lambda t: (self._share(t), t))
        return min(live, key=lambda t: (self._share(t), t))

    def peek(self):
        tenant = self._pick_tenant()
        return self._queues[tenant][0] if tenant is not None else None

    def pop(self, job) -> None:
        queue = self._queues.get(job.tenant)
        if not queue:
            raise WorkloadError(
                f"cannot pop {job.tag!r}: not in the wait queue")
        if queue[0] is job:
            queue.popleft()
        elif queue[-1] is job:
            queue.pop()
        else:
            queue.remove(job)
        self._count -= 1

    def victim(self, now: float):
        tenant = self._pick_tenant(reverse=True)
        return self._queues[tenant][-1] if tenant is not None else None

    def on_admit(self, job) -> None:
        self._admitted_work[job.tenant] = (
            self._admitted_work.get(job.tenant, 0.0) + job.complexity)

    def jobs(self) -> list:
        out = [job for queue in self._queues.values() for job in queue]
        out.sort(key=lambda job: job.order)
        return out

    def __len__(self) -> int:
        return self._count


def make_admission_policy(serving: ServingPolicy | None) -> AdmissionPolicy:
    """The runtime wait queue for one workload run.

    ``None`` (serving layer off) still gets the :class:`FifoPolicy`
    deque — the admission *order* is identical to the legacy list, it
    just stops paying O(n) per pop.
    """
    if serving is None or serving.policy == POLICY_FIFO:
        return FifoPolicy()
    if serving.policy == POLICY_PRIORITY:
        return PriorityPolicy()
    if serving.policy == POLICY_EDF:
        return EdfPolicy()
    if serving.policy == POLICY_FAIR_SHARE:
        return FairSharePolicy(serving)
    raise WorkloadError(f"unknown admission policy {serving.policy!r}")


def provably_infeasible(job, now: float) -> bool:
    """Can *job* provably not finish by its deadline?

    The one lower bound that needs no execution model: a query's
    sequential initialization alone takes ``job.startup`` virtual
    seconds after admission, so if ``now + startup`` already overruns
    the deadline the query is doomed no matter how many threads it
    gets.  Conservative by design — EDF must never shed a query that
    could still have made it.
    """
    deadline = _deadline_of(job)
    if deadline == float("inf"):
        return False
    return now + job.startup > deadline
