"""The adaptive scheduler — steps 1-4 assembled — plus baselines.

:class:`AdaptiveScheduler` is the paper's contribution: the degree of
parallelism is chosen per query (decoupled from the degree of
partitioning), distributed top-down over chains and operators, and
each operator gets the consumption strategy its data distribution
calls for.

:class:`StaticScheduler` is the classic static-partitioning baseline
(Gamma/Bubba style): one thread per operator instance, bound to its
own queue — the degree of parallelism *is* the degree of partitioning
and no dynamic balancing happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engine.executor import OperationSchedule, QuerySchedule
from repro.lera.graph import LeraGraph
from repro.machine.machine import Machine
from repro.scheduler.allocation import (
    allocate_to_chains,
    allocate_to_operations,
    choose_thread_count,
)
from repro.scheduler.complexity import query_complexity
from repro.scheduler.strategy_selection import (
    DEFAULT_SKEW_THRESHOLD,
    select_strategy,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.obs.explain import ScheduleExplanation


@dataclass
class AdaptiveScheduler:
    """DBS3's four-step top-down scheduler.

    Attributes:
        machine: Target machine model (processors + cost model).
        skew_threshold: Pmax/P ratio beyond which LPT is selected.
        multi_user_factor: Damping of the single-user thread optimum
            for multi-user throughput ([Rahm93] hook); 1.0 = single
            user.
    """

    machine: Machine
    skew_threshold: float = DEFAULT_SKEW_THRESHOLD
    multi_user_factor: float = 1.0

    def schedule(self, plan: LeraGraph,
                 total_threads: int | None = None,
                 explain: "ScheduleExplanation | None" = None
                 ) -> QuerySchedule:
        """Produce a :class:`QuerySchedule` for *plan*.

        Args:
            plan: A validated Lera-par plan.
            total_threads: Fix the query's degree of parallelism
                explicitly (as the paper's experiments do); ``None``
                lets step 1 choose it from the estimated complexity.
            explain: Optional :class:`~repro.obs.explain.\
ScheduleExplanation` that records each of the four decisions with the
                inputs that drove it.  Recording is passive: the
                returned schedule is identical either way.
        """
        plan.validate()
        costs = self.machine.costs
        if total_threads is None:
            total_threads = choose_thread_count(
                query_complexity(plan, costs), self.machine,
                multi_user_factor=self.multi_user_factor,
                explain=explain)
        elif explain is not None:
            from repro.obs.explain import STEP_THREAD_COUNT
            explain.record(STEP_THREAD_COUNT, "query", total_threads,
                           "fixed by caller (degree of parallelism pinned)")
        chain_allocation = allocate_to_chains(plan, total_threads, costs,
                                              explain=explain)
        operations: dict[str, OperationSchedule] = {}
        for chain in plan.chains():
            per_operation = allocate_to_operations(
                chain, chain_allocation[chain.chain_id], costs,
                explain=explain)
            for node in chain.nodes:
                operations[node.name] = OperationSchedule(
                    threads=per_operation[node.name],
                    strategy=select_strategy(node, costs, self.skew_threshold,
                                             explain=explain),
                )
        return QuerySchedule(operations)


@dataclass
class StaticScheduler:
    """Baseline: one thread per instance, statically bound to its queue.

    This is the thread-allocation strategy DBS3 replaces: "the typical
    thread allocation strategy would assign a single thread per
    operation instance" (Section 3).  Threads never help on other
    instances' queues, so skewed fragments directly become stragglers.
    """

    machine: Machine

    def schedule(self, plan: LeraGraph,
                 total_threads: int | None = None) -> QuerySchedule:
        """One thread per instance; *total_threads* is ignored (the
        degree of parallelism is dictated by the partitioning)."""
        plan.validate()
        operations = {
            node.name: OperationSchedule(
                threads=node.instances,
                strategy="random",
                allow_secondary=False,
            )
            for node in plan.nodes
        }
        return QuerySchedule(operations)
