"""Thread allocation — scheduler steps 1 to 3.

Step 1 chooses the query's total thread count from its estimated
complexity (minimizing estimated response time, start-up included, as
in [Wilschut92]), optionally damped for multi-user throughput
([Rahm93]).  Step 2 distributes the total over the chain tree by
solving the proportional-complexity equation system of Section 3.
Step 3 splits each chain's threads over its operators by complexity
ratio.

The workload layer's "step 0" (:func:`allocate_to_queries`) optionally
generalizes from a CPU-only thread count to multi-resource vectors
(CPU, memory footprint, disk bandwidth) after Garofalakis &
Ioannidis's malleable-scheduling model: a query's grant is capped at
the thread-equivalent of its *binding* resource, so a memory-heavy
query cannot monopolize threads its footprint would stall anyway.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SchedulerError
from repro.lera.graph import Chain, LeraGraph
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.scheduler.complexity import estimate_chains, operator_complexity

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.obs.explain import ScheduleExplanation


def estimated_response_time(work: float, threads: int, machine: Machine) -> float:
    """Estimated response time of *work* on *threads* threads.

    ``T(N) = N * thread_create + (work / min(N, p)) * dilation(N)`` —
    the start-up term grows with the degree of parallelism while the
    execution term shrinks, so low-complexity queries get few threads.
    """
    if threads < 1:
        raise SchedulerError(f"threads must be >= 1, got {threads}")
    startup = threads * machine.costs.thread_create
    effective = min(threads, machine.processors)
    return startup + (work / effective) * machine.dilation(threads)


def choose_thread_count(work: float, machine: Machine,
                        max_threads: int | None = None,
                        multi_user_factor: float = 1.0,
                        explain: "ScheduleExplanation | None" = None,
                        resource_cap: int | None = None) -> int:
    """Step 1: the thread count minimizing estimated response time.

    Args:
        work: Estimated sequential complexity of the query, seconds.
        machine: Target machine (processor count, cost model).
        max_threads: Optional hard cap (e.g. an operator's activation
            count — more threads than activations sit idle).
        multi_user_factor: In (0, 1]; scales the single-user optimum
            down to raise multi-user throughput, the [Rahm93] hook.
        explain: Optional decision recorder (purely passive).
        resource_cap: Optional thread-equivalent cap from a non-CPU
            binding resource (see :func:`allocate_to_queries`'s
            multi-resource path); a second ceiling alongside
            *max_threads*.

    Returns:
        The chosen thread count, at least 1.
    """
    if work < 0:
        raise SchedulerError(f"work must be >= 0, got {work}")
    if not 0 < multi_user_factor <= 1:
        raise SchedulerError(
            f"multi_user_factor must be in (0, 1], got {multi_user_factor}")
    if resource_cap is not None and resource_cap < 1:
        raise SchedulerError(
            f"resource_cap must be >= 1, got {resource_cap}")
    ceiling = max_threads if max_threads is not None else machine.processors
    if resource_cap is not None:
        ceiling = min(ceiling, resource_cap)
    ceiling = max(1, min(ceiling, 2 * machine.processors))
    best_n, best_t = 1, estimated_response_time(work, 1, machine)
    for n in range(2, ceiling + 1):
        t = estimated_response_time(work, n, machine)
        if t < best_t:
            best_n, best_t = n, t
    chosen = max(1, round(best_n * multi_user_factor))
    if explain is not None:
        from repro.obs.explain import STEP_THREAD_COUNT
        explain.record(
            STEP_THREAD_COUNT, "query", chosen,
            "minimizes estimated response time (start-up included)",
            work=work, processors=machine.processors, ceiling=ceiling,
            single_user_optimum=best_n, estimated_time=best_t,
            multi_user_factor=multi_user_factor)
    return chosen


@dataclass(frozen=True)
class ResourceVector:
    """A query's demand (or the machine's capacity) along the three
    scheduled resource axes.

    ``None`` leaves an axis unconstrained — a capacity vector of all
    ``None`` makes the multi-resource path a no-op, and the legacy
    CPU-only call (no vectors at all) is byte-identical to the
    pre-vector allocator.
    """

    cpu: float | None = None
    """Thread-count axis (demand: the four-step schedule's thread
    count; capacity: the machine budget)."""
    memory_bytes: float | None = None
    """Stored-data footprint axis (demand: the query's estimated
    footprint; capacity: the workload memory limit)."""
    disk_bytes: float | None = None
    """Disk-bandwidth axis (demand: bytes the query streams from
    store; capacity: modeled bytes available per granted run)."""

    #: Axis attribute names, in scheduling order.
    AXES = ("cpu", "memory_bytes", "disk_bytes")

    def __post_init__(self) -> None:
        for axis in self.AXES:
            value = getattr(self, axis)
            if value is not None and value < 0:
                raise SchedulerError(
                    f"ResourceVector.{axis} must be >= 0, got {value}")


def _resource_caps(demands: list[int], complexities: list[float],
                   resources: list[ResourceVector],
                   capacities: ResourceVector) -> list[int]:
    """Thread-equivalent cap per query from its binding resource.

    Each query is entitled to its complexity-weight share of every
    capacity axis; where its need exceeds the entitlement, the grant
    scales down by the worst (binding) axis's factor — never below one
    thread, so progress is always possible.
    """
    count = len(demands)
    total_weight = sum(complexities)
    caps = []
    for i in range(count):
        weight = (complexities[i] / total_weight if total_weight > 0
                  else 1.0 / count)
        factor = 1.0
        for axis in ResourceVector.AXES:
            capacity = getattr(capacities, axis)
            need = getattr(resources[i], axis)
            if capacity is None or need is None or need <= 0:
                continue
            allowed = capacity * weight
            factor = min(factor, allowed / need)
        caps.append(max(1, math.floor(demands[i] * factor)))
    return caps


def _largest_remainder(total: int, weights: list[float],
                       minimum: int = 1) -> list[int]:
    """Split *total* integer units proportionally to *weights*.

    Every share is at least *minimum*; the sum equals
    ``max(total, minimum * len(weights))``.
    """
    count = len(weights)
    if count == 0:
        raise SchedulerError("nothing to allocate to")
    total = max(total, minimum * count)
    weight_sum = sum(weights)
    if weight_sum <= 0:
        weights = [1.0] * count
        weight_sum = float(count)
    raw = [total * w / weight_sum for w in weights]
    shares = [max(minimum, int(r)) for r in raw]
    # Largest-remainder correction toward the exact total.
    while sum(shares) > total:
        # Over minimum budget because of the max(minimum, .) clamps;
        # shave the most over-allocated shares above the minimum.
        candidates = [i for i in range(count) if shares[i] > minimum]
        if not candidates:
            break
        victim = max(candidates, key=lambda i: shares[i] - raw[i])
        shares[victim] -= 1
    remainders = sorted(range(count), key=lambda i: raw[i] - shares[i],
                        reverse=True)
    index = 0
    while sum(shares) < total:
        shares[remainders[index % count]] += 1
        index += 1
    return shares


def allocate_to_queries(budget: int, demands: list[int],
                        complexities: list[float],
                        labels: list[str] | None = None,
                        explain: "ScheduleExplanation | None" = None,
                        resources: list[ResourceVector] | None = None,
                        capacities: ResourceVector | None = None
                        ) -> list[int]:
    """Workload step 0: split the machine's budget across running queries.

    The same proportional-complexity equation system the paper applies
    across subqueries (step 2), lifted one level: each *running* query
    is weighted by its estimated remaining complexity, and its grant is
    capped at its *demand* — the thread count its own four-step
    schedule asked for — because threads beyond the demand would sit
    idle in pools the query never builds.

    A lone query always receives its full demand, whatever the budget:
    this is the rule that makes the single-query path of the workload
    engine coincide exactly with :class:`~repro.engine.executor
    .Executor` (the golden-trace parity the Session API promises).

    Args:
        budget: Machine thread budget to distribute (>= 1).
        demands: Per-query demanded thread count (each >= 1).
        complexities: Per-query estimated complexity weights.
        labels: Optional per-query names for the explanation record.
        explain: Optional decision recorder (purely passive).
        resources: Optional per-query :class:`ResourceVector` demands;
            with *capacities*, each query's grant is additionally
            capped at the thread-equivalent of its binding resource
            (the multi-resource generalization of step 0).  ``None``
            (the default) is byte-identical to the CPU-only allocator.
        capacities: Machine capacity vector the running queries share;
            required when *resources* is given.

    Returns:
        Per-query grants, aligned with *demands*; each grant is in
        ``[1, demand]`` and the grants sum to at most
        ``max(budget, len(demands))`` (never less when demand allows).
    """
    count = len(demands)
    if count == 0:
        raise SchedulerError("nothing to allocate to")
    if len(complexities) != count:
        raise SchedulerError(
            f"{count} demands but {len(complexities)} complexities")
    if budget < 1:
        raise SchedulerError(f"budget must be >= 1, got {budget}")
    for demand in demands:
        if demand < 1:
            raise SchedulerError(f"demands must be >= 1, got {demand}")
    if resources is not None:
        if capacities is None:
            raise SchedulerError(
                "resources given without a capacities vector")
        if len(resources) != count:
            raise SchedulerError(
                f"{count} demands but {len(resources)} resource vectors")
        # The binding resource tightens each query's demand cap before
        # the thread split; the water-filling below then never grants
        # past what the scarcest axis supports.
        demands = [min(demand, cap) for demand, cap in
                   zip(demands, _resource_caps(demands, complexities,
                                               resources, capacities))]

    if count == 1:
        grants = [demands[0]]
    else:
        # Water-filling: proportional shares, demand caps, surplus
        # redistributed among the still-uncapped queries.
        grants = [0] * count
        open_queries = list(range(count))
        remaining = budget
        while open_queries:
            shares = _largest_remainder(
                remaining, [complexities[i] for i in open_queries])
            capped = [(i, share) for i, share in zip(open_queries, shares)
                      if share >= demands[i]]
            if not capped:
                for i, share in zip(open_queries, shares):
                    grants[i] = share
                break
            for i, _ in capped:
                grants[i] = demands[i]
                remaining -= demands[i]
            open_queries = [i for i in open_queries if grants[i] == 0]
            if remaining < len(open_queries):
                # Budget exhausted by the caps: floor of one each.
                for i in open_queries:
                    grants[i] = 1
                break
    if explain is not None:
        from repro.obs.explain import STEP_QUERY_SPLIT
        total_weight = sum(complexities)
        for i, grant in enumerate(grants):
            target = labels[i] if labels is not None else f"query:{i}"
            explain.record(
                STEP_QUERY_SPLIT, target, grant,
                ("lone running query: full demand" if count == 1
                 else "complexity share of the machine budget, "
                      "capped at demand"),
                budget=budget, demand=demands[i],
                complexity=complexities[i], total_complexity=total_weight)
    return grants


def allocate_to_chains(plan: LeraGraph, total_threads: int,
                       costs: CostModel,
                       explain: "ScheduleExplanation | None" = None
                       ) -> dict[int, int]:
    """Step 2: threads per chain via the inverted-tree equation system.

    The root chains (no dependents) share the full budget; each
    chain's budget is then split among the chains it depends on,
    proportionally to their *subtree* complexities — solving the
    paper's equations ``N3 + N4 = N5``, ``(T1+T2+T3)/N3 = T4/N4``, ...
    recursively.
    """
    if total_threads < 1:
        raise SchedulerError(f"total_threads must be >= 1, got {total_threads}")
    chains = plan.chains()
    estimates = estimate_chains(plan, costs)
    dependencies = plan.chain_dependencies(chains)
    dependents: dict[int, set[int]] = {c.chain_id: set() for c in chains}
    for chain_id, deps in dependencies.items():
        for dep in deps:
            dependents[dep].add(chain_id)

    allocation: dict[int, int] = {}
    roots = [c.chain_id for c in chains if not dependents[c.chain_id]]
    root_shares = _largest_remainder(
        total_threads, [estimates[r].subtree for r in roots])
    frontier = [(chain_id, share, None)
                for chain_id, share in zip(roots, root_shares)]
    while frontier:
        chain_id, budget, parent = frontier.pop()
        allocation[chain_id] = budget
        if explain is not None:
            from repro.obs.explain import STEP_CHAIN_SPLIT
            explain.record(
                STEP_CHAIN_SPLIT, f"chain:{chain_id}", budget,
                ("share of the query budget" if parent is None
                 else f"share of chain:{parent}'s budget"),
                subtree_complexity=estimates[chain_id].subtree,
                parent_budget=(total_threads if parent is None
                               else allocation[parent]))
        children = sorted(dependencies[chain_id])
        if not children:
            continue
        child_shares = _largest_remainder(
            budget, [estimates[c].subtree for c in children])
        frontier.extend((child, share, chain_id)
                        for child, share in zip(children, child_shares))
    return allocation


def allocate_to_operations(chain: Chain, chain_threads: int,
                           costs: CostModel,
                           explain: "ScheduleExplanation | None" = None
                           ) -> dict[str, int]:
    """Step 3: a chain's threads, split by operator complexity ratio.

    ``NbThreads(Op_i) = NbThreads(Chain) * Complexity(Op_i) /
    Complexity(Chain)``, with every operator getting at least one
    thread (the engine needs a pool per operator).
    """
    weights = [operator_complexity(node.spec, costs) for node in chain.nodes]
    shares = _largest_remainder(chain_threads, weights)
    if explain is not None:
        from repro.obs.explain import STEP_OPERATION_SPLIT
        chain_weight = sum(weights)
        for node, weight, share in zip(chain.nodes, weights, shares):
            explain.record(
                STEP_OPERATION_SPLIT, node.name, share,
                f"complexity share of chain:{chain.chain_id}",
                complexity=weight, chain_complexity=chain_weight,
                chain_threads=chain_threads)
    return {node.name: share for node, share in zip(chain.nodes, shares)}
