"""Complexity estimation (compiler-provided in DBS3).

Every scheduler decision is driven by *estimated* sequential
complexities, computed from static catalog information (fragment
cardinalities) through the same cost model the engine charges.  This
mirrors DBS3, where the ESQL compiler annotates the Lera-par plan with
complexity estimates used at run time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lera.graph import Chain, LeraGraph
from repro.machine.costs import CostModel


def operator_complexity(spec, costs: CostModel) -> float:
    """Estimated total sequential work of one operator, in seconds."""
    return spec.total_complexity(costs)


def chain_complexity(chain: Chain, costs: CostModel) -> float:
    """Estimated sequential work of a whole pipeline chain."""
    return sum(operator_complexity(node.spec, costs) for node in chain.nodes)


def query_complexity(plan: LeraGraph, costs: CostModel) -> float:
    """Estimated sequential work of the full query."""
    return sum(operator_complexity(node.spec, costs) for node in plan.nodes)


@dataclass(frozen=True)
class ChainEstimate:
    """One chain with its estimated complexity and subtree total.

    ``subtree`` adds the complexities of every chain this one
    (transitively) depends on — the quantity the paper's step-2
    equations distribute threads by (e.g. ``(T1 + T2 + T3) / N3 =
    T4 / N4``).
    """

    chain: Chain
    own: float
    subtree: float


def estimate_chains(plan: LeraGraph, costs: CostModel) -> dict[int, ChainEstimate]:
    """Estimate every chain, including dependency-subtree totals."""
    chains = plan.chains()
    dependencies = plan.chain_dependencies(chains)
    own = {c.chain_id: chain_complexity(c, costs) for c in chains}
    subtree: dict[int, float] = {}

    def total(chain_id: int) -> float:
        if chain_id in subtree:
            return subtree[chain_id]
        value = own[chain_id] + sum(total(d) for d in dependencies[chain_id])
        subtree[chain_id] = value
        return value

    return {c.chain_id: ChainEstimate(c, own[c.chain_id], total(c.chain_id))
            for c in chains}
