"""Consumption-strategy selection — scheduler step 4.

"The LPT heuristic should be used in the presence of data skew"
(Section 3).  Skew is detected from static fragment-size information:
the ratio of the most expensive estimated instance to the mean.  For
pipelined operators with many activations the analysis (equation 3)
shows the strategy barely matters, so Random is kept unless the
operator is triggered with few, skewed activations.
"""

from __future__ import annotations

from repro.engine.strategies import LPT, RANDOM
from repro.lera.activation import TRIGGERED
from repro.lera.graph import LeraNode
from repro.machine.costs import CostModel

#: Default Pmax/P ratio beyond which an operator counts as skewed.
DEFAULT_SKEW_THRESHOLD = 1.5


def instance_skew(node: LeraNode, costs: CostModel) -> float:
    """Estimated ``Pmax / P`` over the operator's instances."""
    estimates = node.spec.estimated_instance_costs(costs)
    if not estimates:
        return 1.0
    mean = sum(estimates) / len(estimates)
    if mean <= 0:
        return 1.0
    return max(estimates) / mean


def select_strategy(node: LeraNode, costs: CostModel,
                    skew_threshold: float = DEFAULT_SKEW_THRESHOLD) -> str:
    """Pick Random or LPT for one operator.

    LPT is selected for triggered operators whose estimated
    per-instance costs are skewed beyond *skew_threshold*; everything
    else keeps the Random default.
    """
    if node.trigger_mode != TRIGGERED:
        return RANDOM
    if instance_skew(node, costs) > skew_threshold:
        return LPT
    return RANDOM
