"""Consumption-strategy selection — scheduler step 4.

"The LPT heuristic should be used in the presence of data skew"
(Section 3).  Skew is detected from static fragment-size information:
the ratio of the most expensive estimated instance to the mean.  For
pipelined operators with many activations the analysis (equation 3)
shows the strategy barely matters, so Random is kept unless the
operator is triggered with few, skewed activations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.strategies import LPT, RANDOM
from repro.lera.activation import TRIGGERED
from repro.lera.graph import LeraNode
from repro.machine.costs import CostModel

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.obs.explain import ScheduleExplanation

#: Default Pmax/P ratio beyond which an operator counts as skewed.
DEFAULT_SKEW_THRESHOLD = 1.5


def instance_skew(node: LeraNode, costs: CostModel) -> float:
    """Estimated ``Pmax / P`` over the operator's instances."""
    estimates = node.spec.estimated_instance_costs(costs)
    if not estimates:
        return 1.0
    mean = sum(estimates) / len(estimates)
    if mean <= 0:
        return 1.0
    return max(estimates) / mean


def select_strategy(node: LeraNode, costs: CostModel,
                    skew_threshold: float = DEFAULT_SKEW_THRESHOLD,
                    explain: "ScheduleExplanation | None" = None) -> str:
    """Pick Random or LPT for one operator.

    LPT is selected for triggered operators whose estimated
    per-instance costs are skewed beyond *skew_threshold*; everything
    else keeps the Random default.
    """
    if node.trigger_mode != TRIGGERED:
        strategy = RANDOM
        reason = "pipelined operator: strategy barely matters (eq. 3)"
        skew = None
    else:
        skew = instance_skew(node, costs)
        if skew > skew_threshold:
            strategy = LPT
            reason = "triggered operator with skewed instance costs"
        else:
            strategy = RANDOM
            reason = "estimated skew below threshold"
    if explain is not None:
        from repro.obs.explain import STEP_STRATEGY
        inputs = {"trigger_mode": node.trigger_mode,
                  "skew_threshold": skew_threshold}
        if skew is not None:
            inputs["estimated_skew"] = skew
        explain.record(STEP_STRATEGY, node.name, strategy, reason, **inputs)
    return strategy
