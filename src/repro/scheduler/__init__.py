"""The adaptive scheduler (steps 1-4) and baselines."""

from repro.scheduler.adaptive import AdaptiveScheduler, StaticScheduler
from repro.scheduler.allocation import (
    ResourceVector,
    allocate_to_chains,
    allocate_to_operations,
    allocate_to_queries,
    choose_thread_count,
    estimated_response_time,
)
from repro.scheduler.complexity import (
    ChainEstimate,
    chain_complexity,
    estimate_chains,
    operator_complexity,
    query_complexity,
)
from repro.scheduler.strategy_selection import (
    DEFAULT_SKEW_THRESHOLD,
    instance_skew,
    select_strategy,
)

__all__ = [
    "AdaptiveScheduler",
    "ChainEstimate",
    "DEFAULT_SKEW_THRESHOLD",
    "ResourceVector",
    "StaticScheduler",
    "allocate_to_chains",
    "allocate_to_operations",
    "allocate_to_queries",
    "chain_complexity",
    "choose_thread_count",
    "estimate_chains",
    "estimated_response_time",
    "instance_skew",
    "operator_complexity",
    "query_complexity",
    "select_strategy",
]
