"""Analytical model of Section 4.1 and speed-up mathematics."""

from repro.analysis.formulas import (
    OperatorProfile,
    ideal_time,
    nmax,
    nmax_from_costs,
    overhead_from_times,
    skew_overhead_bound,
    worst_time,
)
from repro.analysis.predictor import (
    OperatorPrediction,
    QueryPrediction,
    predict,
)
from repro.analysis.speedup import (
    SpeedupCurve,
    skew_limited_speedup,
    speedup,
    theoretical_speedup,
)

__all__ = [
    "OperatorPrediction",
    "OperatorProfile",
    "QueryPrediction",
    "SpeedupCurve",
    "ideal_time",
    "nmax",
    "nmax_from_costs",
    "overhead_from_times",
    "predict",
    "skew_limited_speedup",
    "skew_overhead_bound",
    "speedup",
    "theoretical_speedup",
    "worst_time",
]
