"""The paper's analytical model (Section 4.1).

For one operator executed with ``a`` activations on ``n`` threads,
with ``P`` the mean activation processing time and ``Pmax`` the most
expensive activation:

* equation (1): ``Tworst = (1 + v) * Tideal`` with
  ``Tideal = a * P / n``;
* equation (2): ``Tworst <= ((a * P) - Pmax) / n + Pmax``;
* equation (3): ``v <= (Pmax / P) * (n - 1) / a``.

From the same quantities the parallelism ceiling for triggered
operators follows: once ``Pmax > a * P / n`` the response time is the
longest activation, so ``nmax = a * P / Pmax`` is the largest useful
thread count (Section 5.5: nmax = 6 for Zipf 1, 19 for 0.6, 40 for 0.4
with a = 200).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ReproError


def ideal_time(activations: int, mean_cost: float, threads: int) -> float:
    """Equation (1)'s ``Tideal = a * P / n``."""
    _check_positive_threads(threads)
    return activations * mean_cost / threads


def worst_time(activations: int, mean_cost: float, max_cost: float,
               threads: int) -> float:
    """Equation (2)'s upper bound on the worst-case response time.

    ``Tworst <= ((a*P) - Pmax)/n + Pmax``: every activation but the
    most expensive one is processed with full parallelism; the most
    expensive one then runs alone.
    """
    _check_positive_threads(threads)
    total = activations * mean_cost
    return (total - max_cost) / threads + max_cost


def skew_overhead_bound(activations: int, mean_cost: float, max_cost: float,
                        threads: int) -> float:
    """Equation (3)'s bound ``v <= (Pmax/P) * (n-1) / a``.

    Returns the bound on the relative overhead over the ideal time.
    With the paper's worked example (Zipf = 1, a = 200 buckets gives
    Pmax = 34 P; n = 70 threads; a = 20000 tuple activations for the
    pipelined join) this evaluates to ``34 * 69 / 20000 = 0.117``.
    """
    _check_positive_threads(threads)
    if activations <= 0:
        raise ReproError(f"activations must be >= 1, got {activations}")
    if mean_cost <= 0:
        return 0.0
    return (max_cost / mean_cost) * (threads - 1) / activations


def overhead_from_times(measured: float, ideal: float) -> float:
    """Observed ``v`` given a measured and an ideal time: ``T/Tideal - 1``."""
    if ideal <= 0:
        raise ReproError(f"ideal time must be > 0, got {ideal}")
    return measured / ideal - 1.0


def nmax(activations: int, mean_cost: float, max_cost: float) -> float:
    """Largest useful degree of parallelism for a triggered operator.

    ``nmax = a * P / Pmax``.  Beyond this thread count the response
    time is pinned to the longest activation and speed-up plateaus.
    Returns ``inf`` when ``Pmax`` is zero (empty operator).
    """
    if max_cost <= 0:
        return math.inf
    return activations * mean_cost / max_cost


def nmax_from_costs(costs: Sequence[float]) -> float:
    """``nmax`` computed directly from per-activation costs."""
    if not costs:
        return math.inf
    total = sum(costs)
    peak = max(costs)
    if peak <= 0:
        return math.inf
    return total / peak


@dataclass(frozen=True)
class OperatorProfile:
    """Per-activation cost profile of one operator execution.

    Bundles the three analytical inputs and exposes the model's derived
    quantities, so benches and tests can speak the paper's language
    (``profile.v_bound(n)``, ``profile.nmax`` ...).
    """

    costs: tuple[float, ...]

    @classmethod
    def of(cls, costs: Sequence[float]) -> "OperatorProfile":
        return cls(tuple(float(c) for c in costs))

    @property
    def activations(self) -> int:
        return len(self.costs)

    @property
    def total_cost(self) -> float:
        return sum(self.costs)

    @property
    def mean_cost(self) -> float:
        if not self.costs:
            return 0.0
        return self.total_cost / len(self.costs)

    @property
    def max_cost(self) -> float:
        return max(self.costs) if self.costs else 0.0

    @property
    def skew_factor(self) -> float:
        """``Pmax / P`` of this profile (1.0 when uniform)."""
        mean = self.mean_cost
        if mean == 0:
            return 1.0
        return self.max_cost / mean

    @property
    def nmax(self) -> float:
        return nmax_from_costs(self.costs)

    def ideal_time(self, threads: int) -> float:
        return ideal_time(self.activations, self.mean_cost, threads)

    def worst_time(self, threads: int) -> float:
        return worst_time(self.activations, self.mean_cost, self.max_cost, threads)

    def v_bound(self, threads: int) -> float:
        return skew_overhead_bound(self.activations, self.mean_cost,
                                   self.max_cost, threads)

    def lower_bound_time(self, threads: int) -> float:
        """No schedule can beat ``max(Tideal, Pmax)``."""
        return max(self.ideal_time(threads), self.max_cost)


def _check_positive_threads(threads: int) -> None:
    if threads < 1:
        raise ReproError(f"threads must be >= 1, got {threads}")
