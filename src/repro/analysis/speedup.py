"""Speed-up curves: measured, theoretical, and skew-limited.

Figures 14 and 15 plot measured speed-up against the *theoretical*
linear speed-up (capped by the processor count) and, for triggered
operators under skew, against the nmax ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.formulas import OperatorProfile
from repro.errors import ReproError


def speedup(sequential_time: float, parallel_time: float) -> float:
    """Classic speed-up ``Tseq / Tpar``."""
    if parallel_time <= 0:
        raise ReproError(f"parallel time must be > 0, got {parallel_time}")
    return sequential_time / parallel_time


def theoretical_speedup(threads: int, processors: int) -> float:
    """Linear speed-up up to the processor count, flat beyond.

    The paper's "theoretical speed-up" series: with simple queries
    there is no benefit in allocating more threads than processors.
    """
    if threads < 1:
        raise ReproError(f"threads must be >= 1, got {threads}")
    if processors < 1:
        raise ReproError(f"processors must be >= 1, got {processors}")
    return float(min(threads, processors))


def skew_limited_speedup(profile: OperatorProfile, threads: int,
                         processors: int) -> float:
    """Best possible speed-up for a triggered operator under skew.

    The response time cannot drop below ``max(Tideal, Pmax)``, so the
    speed-up plateaus at ``nmax`` once ``threads`` exceeds it.
    """
    effective = min(threads, processors)
    sequential = profile.total_cost
    bound = profile.lower_bound_time(effective)
    if bound <= 0:
        return float(effective)
    return sequential / bound


@dataclass(frozen=True)
class SpeedupCurve:
    """A (threads -> speed-up) series with convenience accessors."""

    thread_counts: tuple[int, ...]
    speedups: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.thread_counts) != len(self.speedups):
            raise ReproError("thread_counts and speedups length mismatch")

    @classmethod
    def measure(cls, thread_counts: Sequence[int],
                times: Sequence[float]) -> "SpeedupCurve":
        """Build a curve from measured times; times[0] must be at 1 thread
        or callers should pass an explicit sequential time via
        :meth:`from_sequential`."""
        if not thread_counts or thread_counts[0] != 1:
            raise ReproError("measure() expects the first point at 1 thread")
        seq = times[0]
        return cls(tuple(thread_counts), tuple(seq / t for t in times))

    @classmethod
    def from_sequential(cls, sequential_time: float, thread_counts: Sequence[int],
                        times: Sequence[float]) -> "SpeedupCurve":
        """Build a curve against an explicit sequential baseline."""
        return cls(tuple(thread_counts),
                   tuple(sequential_time / t for t in times))

    @property
    def peak(self) -> float:
        """Highest speed-up reached along the curve."""
        return max(self.speedups)

    @property
    def peak_threads(self) -> int:
        """Thread count at which the peak occurs."""
        best = max(range(len(self.speedups)), key=lambda i: self.speedups[i])
        return self.thread_counts[best]

    def ceiling(self, tolerance: float = 0.05) -> float:
        """Plateau value: the level the curve saturates at.

        Returns the mean of the points within *tolerance* of the peak,
        a robust estimate of the nmax plateau in Figure 15.
        """
        peak = self.peak
        plateau = [s for s in self.speedups if s >= peak * (1 - tolerance)]
        return sum(plateau) / len(plateau)

    def efficiency_at(self, threads: int) -> float:
        """Speed-up divided by thread count at one measured point."""
        index = self.thread_counts.index(threads)
        return self.speedups[index] / threads
