"""Analytical response-time prediction — the model without the engine.

Combines the cost model with the Section 4.1 equations to predict a
plan's response time for a given schedule *without simulating*: the
same estimates the scheduler uses, assembled into per-chain bounds.

Predictions deliberately mirror the engine's structure:

* sequential start-up (threads + queues);
* per chain, the bottleneck operator's time band
  ``[max(Tideal, Pmax), Tworst]`` from its estimated activation costs;
* processor-sharing dilation when a wave allocates more threads than
  processors;
* chains summed wave by wave along the materialization DAG.

The integration tests check that simulated executions actually land
inside (or within a small machinery margin of) the predicted band —
the same validation the paper performs between its measurements and
its analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.formulas import OperatorProfile
from repro.engine.executor import QuerySchedule
from repro.lera.activation import TRIGGERED
from repro.lera.graph import LeraGraph, LeraNode
from repro.machine.costs import CostModel
from repro.machine.machine import Machine


@dataclass(frozen=True)
class OperatorPrediction:
    """Analytic time band for one operator under a thread count."""

    name: str
    threads: int
    activations: int
    total_cost: float
    max_cost: float
    ideal_time: float
    worst_time: float
    lower_bound: float

    @property
    def nmax(self) -> float:
        """Largest useful thread count implied by the estimates."""
        if self.max_cost <= 0:
            return float("inf")
        return self.total_cost / self.max_cost


@dataclass(frozen=True)
class QueryPrediction:
    """Analytic time band for a whole plan under a schedule."""

    startup_time: float
    lower_bound: float
    ideal_time: float
    worst_time: float
    operators: dict[str, OperatorPrediction]

    def contains(self, measured: float, slack: float = 0.10) -> bool:
        """Is a measured response inside the predicted band (with a
        relative *slack* for queue machinery the analysis ignores)?"""
        return (self.lower_bound * (1 - slack)
                <= measured
                <= self.worst_time * (1 + slack))


def _estimated_profile(node: LeraNode, costs: CostModel) -> OperatorProfile:
    """Per-activation estimated cost profile of one operator."""
    per_instance = node.spec.estimated_instance_costs(costs)
    if node.trigger_mode == TRIGGERED:
        per_activation = node.spec.activations_per_instance()
        return OperatorProfile.of(
            [cost for cost in per_instance for _ in range(per_activation)])
    # Pipelined: activations spread over instances proportionally to
    # nothing in particular — assume uniform routing, the scheduler's
    # own assumption.
    total = node.spec.estimated_activations()
    if total <= 0 or not per_instance:
        return OperatorProfile.of([])
    share = max(1, round(total / len(per_instance)))
    costs_list: list[float] = []
    remaining = total
    for per_act in per_instance:
        take = min(share, remaining)
        costs_list.extend([per_act] * take)
        remaining -= take
        if remaining <= 0:
            break
    if remaining > 0:
        costs_list.extend([per_instance[-1]] * remaining)
    return OperatorProfile.of(costs_list)


def predict(plan: LeraGraph, schedule: QuerySchedule,
            machine: Machine) -> QueryPrediction:
    """Predict the response-time band of *plan* under *schedule*.

    Returns analytic lower/ideal/worst times including start-up and
    wave sequencing; per-operator bands are exposed for inspection.
    """
    costs = machine.costs
    startup = 0.0
    operators: dict[str, OperatorPrediction] = {}
    for node in plan.nodes:
        threads = schedule.of(node.name).threads
        startup += threads * costs.thread_create
        per_queue = (costs.queue_create_pipelined
                     if node.trigger_mode != TRIGGERED
                     else costs.queue_create_triggered)
        startup += node.instances * per_queue
        profile = _estimated_profile(node, costs)
        effective = min(threads, machine.processors)
        operators[node.name] = OperatorPrediction(
            name=node.name,
            threads=threads,
            activations=profile.activations,
            total_cost=profile.total_cost,
            max_cost=profile.max_cost,
            ideal_time=profile.ideal_time(effective),
            worst_time=profile.worst_time(effective),
            lower_bound=profile.lower_bound_time(effective),
        )

    lower = ideal = worst = startup
    for wave in plan.chain_waves():
        wave_threads = sum(schedule.of(node.name).threads
                           for chain in wave for node in chain.nodes)
        dilation = machine.dilation(wave_threads)
        wave_lower = wave_ideal = wave_worst = 0.0
        for chain in wave:
            # A pipelined chain finishes somewhere between its
            # bottleneck operator's time (perfect producer/consumer
            # overlap — the lower/ideal bounds) and the sum of its
            # operators' worst times (no overlap at all — the worst
            # bound).
            chain_lower = max(operators[n.name].lower_bound
                              for n in chain.nodes)
            chain_ideal = max(operators[n.name].ideal_time
                              for n in chain.nodes)
            chain_worst = sum(operators[n.name].worst_time
                              for n in chain.nodes)
            wave_lower = max(wave_lower, chain_lower)
            wave_ideal = max(wave_ideal, chain_ideal)
            wave_worst = max(wave_worst, chain_worst)
        # The lower/ideal bounds assume no processor contention (in the
        # engine, dilation follows the *active* thread count, and
        # parked threads don't contend); the worst bound assumes the
        # full allocation stays active.
        lower += wave_lower
        ideal += wave_ideal
        worst += wave_worst * dilation
    return QueryPrediction(
        startup_time=startup,
        lower_bound=lower,
        ideal_time=ideal,
        worst_time=worst,
        operators=operators,
    )
