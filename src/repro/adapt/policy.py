"""The :class:`SchedulingPolicy` block — one frozen dataclass naming
every knob of the scheduling loop.

The paper's four-step scheduler is *static*: parallelism degree,
thread split, placement and consumption strategy are all fixed before
the first activation runs.  PRs 7–8 made the engine observe exactly
the signals (queue-wait blame, the Fig 12 straggler signature) that
Section 5.4's diagnosis implies we should act on; this block decides
whether the engine *does* act on them.

``policy="static"`` (the default) keeps every decision frozen at
submit time — bit-identical to the engine before the adaptive
controller existed.  ``policy="adaptive"`` arms the
:class:`~repro.adapt.controller.AdaptiveController` at the workload
engine's deterministic control points.  All adaptive decisions are
pure functions of virtual-time state, so runs stay byte-reproducible
per seed either way.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import WorkloadError

#: The two scheduling modes.
POLICY_STATIC = "static"
POLICY_ADAPTIVE = "adaptive"
POLICIES = (POLICY_STATIC, POLICY_ADAPTIVE)


@dataclass(frozen=True)
class SchedulingPolicy:
    """How the workload engine schedules threads, statically or not.

    Nested in :class:`~repro.workload.options.WorkloadOptions`; the
    old flat ``WorkloadOptions(rebalance=...)`` boolean is a deprecated
    alias for :attr:`rebalance` here.
    """

    policy: str = POLICY_STATIC
    """``"static"`` freezes the four-step schedule at submit time
    (bit-identical to the pre-controller engine); ``"adaptive"``
    re-decides at wave boundaries from observed virtual-time state."""
    resplit: bool = True
    """Adaptive only: at each wave boundary, re-split the query's
    thread grant toward the operators carrying the queue-wait blame —
    the saturated producers whose starved consumers spent the previous
    wave idling on empty queues."""
    strategy_switch: bool = True
    """Adaptive only: switch an operator from Random to LPT
    consumption when the Fig 12 equal-counts/unequal-costs signature
    fires — the estimates said the buckets were even (so step 4 chose
    Random) but the previous wave's straggler shows they are not."""
    multi_resource: bool = False
    """Generalize step 0 from a CPU-only thread count to multi-resource
    (CPU, memory-footprint, disk-bandwidth) vectors, after Garofalakis
    & Ioannidis's malleable-scheduling model: a query's grant is capped
    by its *binding* resource, not just the thread budget."""
    rebalance: bool = True
    """Mid-wave helper threads: when a completion re-grants budget to
    the survivors, fresh threads join their still-running pools as
    secondary consumers.  (Both modes; previously the flat
    ``WorkloadOptions(rebalance=...)`` boolean.)"""
    straggler_ratio: float = 2.0
    """Slowest-to-mean relative-finish ratio above which a wave's
    operation counts as straggling (the Fig 12 trigger, same default
    as :class:`~repro.obs.monitor.StragglerMonitor`)."""
    min_threads: int = 2
    """Straggler attribution needs at least this many threads in the
    pool (a one-thread pool has no spread)."""
    idle_threshold: float = 0.5
    """Pool idle share at or above which an operation counts as
    *starved* — its threads spent the wave waiting on empty queues
    (Section 5.4's queue-wait blame)."""
    driver_threshold: float = 0.25
    """Pool idle share at or below which an operation counts as the
    *driver* — the saturated producer carrying the blame for the
    starved pools downstream of it."""
    boost_cap: float = 4.0
    """Upper bound on the resplit weight boost applied to blamed
    producers, so one bad wave can never starve the consumer side of
    the next one outright."""
    switch_skew_threshold: float = 1.5
    """Estimated-cost skew (max/mean over a pool's queues) *below*
    which the estimates count as "equal costs" — the precondition of
    the Fig 12 signature: step 4 saw even buckets and chose Random,
    yet the observed wave straggled on processing skew."""
    disk_bandwidth_bytes: int | None = None
    """Multi-resource only: modeled disk-bandwidth capacity (bytes per
    granted run) the running queries' stored-data footprints share.
    ``None`` leaves the disk axis unbound."""

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise WorkloadError(
                f"unknown scheduling policy {self.policy!r}; "
                f"expected one of {POLICIES}")
        if self.straggler_ratio <= 1.0:
            raise WorkloadError(
                f"straggler_ratio must be > 1, got {self.straggler_ratio}")
        if self.min_threads < 1:
            raise WorkloadError(
                f"min_threads must be >= 1, got {self.min_threads}")
        if not 0.0 < self.idle_threshold <= 1.0:
            raise WorkloadError(
                f"idle_threshold must be in (0, 1], got "
                f"{self.idle_threshold}")
        if not 0.0 <= self.driver_threshold < self.idle_threshold:
            raise WorkloadError(
                f"driver_threshold must be in [0, idle_threshold), got "
                f"{self.driver_threshold} vs {self.idle_threshold}")
        if self.boost_cap < 1.0:
            raise WorkloadError(
                f"boost_cap must be >= 1, got {self.boost_cap}")
        if self.switch_skew_threshold < 1.0:
            raise WorkloadError(
                f"switch_skew_threshold must be >= 1, got "
                f"{self.switch_skew_threshold}")
        if (self.disk_bandwidth_bytes is not None
                and self.disk_bandwidth_bytes <= 0):
            raise WorkloadError(
                f"disk_bandwidth_bytes must be positive, got "
                f"{self.disk_bandwidth_bytes}")

    @property
    def adaptive(self) -> bool:
        """Whether the adaptive controller is armed."""
        return self.policy == POLICY_ADAPTIVE

    def replace(self, **changes) -> "SchedulingPolicy":
        """Copy with the given fields replaced (ergonomic twin of
        :func:`dataclasses.replace`)."""
        return dataclasses.replace(self, **changes)
