"""The online scheduling controller — closing the paper's loop.

The four-step scheduler decides everything *before* execution; the
observability stack (PRs 7–8) measures exactly the signals Section
5.4's diagnosis reads — queue-wait blame, the Fig 12 straggler
signature — but until now nothing acted on them.  The
:class:`AdaptiveController` runs at the workload engine's existing
deterministic control points and feeds those signals back:

* **wave barrier** — :meth:`AdaptiveController.observe_wave` turns
  the per-thread finish/busy/idle stamps into :class:`WaveEvidence`
  via the *same* attribution functions the
  :class:`~repro.obs.monitor.StragglerMonitor` uses
  (:func:`~repro.obs.monitor.straggler_signals`,
  :func:`~repro.obs.monitor.pool_idle_shares`) — what the diagnosis
  blames is exactly what the controller acts on;
* **wave start** — :meth:`AdaptiveController.before_wave` spends the
  evidence on the *next* wave: re-splitting the query's grant toward
  the operators carrying the queue-wait blame (the saturated
  producers whose consumers idled), and switching Random consumers to
  LPT when the Fig 12 equal-counts/unequal-costs signature fired.

Both decisions transfer across the blocking boundary because every
wave of a plan works over the same hash partitioning: a producer that
under-fed its consumer in wave *k* (wrong complexity ratio, a slowed
operator) will under-feed in wave *k+1* too, and a bucket that was
oversized for the build side is oversized for the probe side.

Every decision is a pure function of virtual-time state (thread
stamps, static estimates, policy thresholds), so adaptive runs are
byte-reproducible per seed; with the controller absent
(``policy="static"``) the engine takes the exact legacy code paths —
bit-identical to the pre-controller engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adapt.policy import SchedulingPolicy
from repro.engine.strategies import LPT, RANDOM, make_strategy
from repro.lera.activation import TRIGGERED
from repro.obs.bus import SCHEDULE_RESPLIT, SCHEDULE_SWITCH
from repro.obs.explain import STEP_RESPLIT, STEP_SWITCH, ScheduleExplanation
from repro.obs.monitor import (
    BLAME_PROCESSING_SKEW,
    pool_idle_shares,
    straggler_signals,
)
from repro.scheduler.allocation import _largest_remainder

#: Floor on the starved pool's busy share when computing the resplit
#: boost, so a fully idle consumer cannot drive the ratio to infinity
#: before the policy cap is applied.
BUSY_SHARE_FLOOR = 0.05


@dataclass(frozen=True)
class WaveEvidence:
    """What one finished wave proved about the query's schedule."""

    wave_index: int
    """The finished wave (evidence applies to the next one)."""
    boost: float
    """How much busier the drivers ran than the starved pools (capped
    at the policy's ``boost_cap``); 1.0 when no queue-wait pattern
    fired.  The resplit trigger and the event payload's magnitude."""
    starved_idle: float
    """The *least* idle share among the starved pools — the fraction
    of a consumer pool's threads the previous wave proved redundant,
    conservatively.  What the re-split actually moves."""
    drivers: tuple[str, ...]
    """Saturated producers carrying the queue-wait blame."""
    starved: tuple[str, ...]
    """Consumers whose pools spent the wave idling on empty queues."""
    skewed: tuple[str, ...]
    """Operations whose straggler carried processing-skew blame (the
    observed half of the Fig 12 signature)."""

    @property
    def actionable(self) -> bool:
        return self.boost > 1.0 or bool(self.skewed)


def wave_evidence(started_at: float, ops,
                  policy: SchedulingPolicy) -> WaveEvidence | None:
    """Distill one wave's barrier payload into evidence, or ``None``.

    *ops* is the same ``[(name, [(finished_at, busy, idle), ...]),
    ...]`` payload the monitors read at ``POINT_WAVE``.  Pure and
    deterministic: stamps and thresholds in, evidence out.  Returns
    ``None`` when nothing fired — the bit-identical common case on
    healthy waves.
    """
    signals = straggler_signals(started_at, ops,
                                ratio=policy.straggler_ratio,
                                min_threads=policy.min_threads)
    idle = pool_idle_shares(ops)
    starved = tuple(sorted(
        name for name, share in idle.items()
        if share >= policy.idle_threshold))
    drivers = tuple(sorted(
        name for name, share in idle.items()
        if share <= policy.driver_threshold))
    boost = 1.0
    starved_idle = 0.0
    if starved and drivers:
        driver_busy = max(1.0 - idle[name] for name in drivers)
        starved_busy = min(1.0 - idle[name] for name in starved)
        boost = min(policy.boost_cap,
                    driver_busy / max(starved_busy, BUSY_SHARE_FLOOR))
        starved_idle = min(idle[name] for name in starved)
    skewed = tuple(signal.operation for signal in signals
                   if signal.blame == BLAME_PROCESSING_SKEW)
    evidence = WaveEvidence(wave_index=-1, boost=boost,
                            starved_idle=starved_idle,
                            drivers=drivers, starved=starved,
                            skewed=skewed)
    return evidence if evidence.actionable else None


def resplit_shares(shares: list[int], modes: list[str],
                   starved_idle: float) -> list[int]:
    """Move the consumers' proven-idle threads to the producer side.

    The static split came from estimated complexity ratios; the
    previous wave proved a *starved_idle* fraction of the consumer
    pools redundant (their threads sat on empty queues), so exactly
    that fraction of each pipelined pool — never its last thread —
    migrates to the triggered operators, split among them
    proportionally to their current shares.  Self-calibrating: the
    consumer keeps the threads its observed busy share needs, and the
    thread budget is conserved exactly (``sum(out) == sum(shares)``).
    """
    out = list(shares)
    producers = [i for i, mode in enumerate(modes) if mode == TRIGGERED]
    consumers = [i for i, mode in enumerate(modes) if mode != TRIGGERED]
    if not producers or not consumers:
        return shares
    moved = 0
    for i in consumers:
        spare = min(out[i] - 1, int(out[i] * starved_idle))
        if spare > 0:
            out[i] -= spare
            moved += spare
    if moved == 0:
        return shares
    extra = _largest_remainder(moved, [float(shares[i]) for i in producers],
                               minimum=0)
    for i, add in zip(producers, extra):
        out[i] += add
    return out


class AdaptiveController:
    """Mid-flight scheduling decisions for one workload run.

    Owned by a ``_WorkloadRun`` when ``SchedulingPolicy(policy=
    "adaptive")``; ``None`` otherwise (the escape hatch every layer
    keeps).  Emits a ``schedule.resplit`` / ``schedule.switch`` event
    on the workload bus for every decision taken, and records the same
    decisions on :attr:`explanation` (surfaced as
    ``WorkloadResult.decisions``).
    """

    def __init__(self, policy: SchedulingPolicy, bus) -> None:
        self.policy = policy
        self.bus = bus
        self.explanation = ScheduleExplanation()
        self._pending: dict[str, WaveEvidence] = {}

    def __repr__(self) -> str:
        return (f"AdaptiveController(policy={self.policy.policy!r}, "
                f"decisions={len(self.explanation)})")

    # -- wave barrier ----------------------------------------------------------

    def observe_wave(self, tag: str, wave_index: int, started_at: float,
                     ops) -> None:
        """Bank evidence from a finished wave for the query's next one."""
        if not (self.policy.resplit or self.policy.strategy_switch):
            return
        evidence = wave_evidence(started_at, ops, self.policy)
        if evidence is not None:
            self._pending[tag] = WaveEvidence(
                wave_index=wave_index, boost=evidence.boost,
                starved_idle=evidence.starved_idle,
                drivers=evidence.drivers, starved=evidence.starved,
                skewed=evidence.skewed)

    # -- wave start ------------------------------------------------------------

    def before_wave(self, tag: str, wave_index: int, wave_ops,
                    base: list[int], wave_total: int,
                    shares: list[int], at: float) -> list[int]:
        """Spend banked evidence on the wave about to start.

        Returns the (possibly re-split) per-operation shares and
        applies any strategy switches directly to the runtimes —
        before their pools are built, so the whole wave runs under the
        switched strategy.  Without banked evidence this returns
        *shares* untouched.
        """
        evidence = self._pending.pop(tag, None)
        if evidence is None:
            return shares
        shares = self._maybe_resplit(tag, wave_index, wave_ops, base,
                                     wave_total, shares, evidence, at)
        self._maybe_switch(tag, wave_index, wave_ops, evidence, at)
        return shares

    def _maybe_resplit(self, tag: str, wave_index: int, wave_ops,
                       base: list[int], wave_total: int,
                       shares: list[int], evidence: WaveEvidence,
                       at: float) -> list[int]:
        if (not self.policy.resplit or evidence.boost <= 1.0
                or len(wave_ops) < 2):
            return shares
        modes = [op.node.trigger_mode for op in wave_ops]
        if len(set(modes)) < 2:
            # All producers or all consumers: no contrast to shift.
            return shares
        resplit = resplit_shares(shares, modes, evidence.starved_idle)
        if resplit == shares:
            return shares
        before = {op.name: share for op, share in zip(wave_ops, shares)}
        after = {op.name: share for op, share in zip(wave_ops, resplit)}
        self.bus.emit(SCHEDULE_RESPLIT, at, tag=tag, wave=wave_index,
                      before=before, after=after,
                      boost=evidence.boost,
                      starved_idle=evidence.starved_idle,
                      drivers=list(evidence.drivers),
                      starved=list(evidence.starved))
        self.explanation.record(
            STEP_RESPLIT, f"{tag}/w{wave_index}", after,
            "previous wave starved its consumers: their idle threads "
            "move to the producers carrying the queue-wait blame",
            before=before, boost=evidence.boost,
            starved_idle=evidence.starved_idle,
            drivers=list(evidence.drivers),
            starved=list(evidence.starved))
        return resplit

    def _maybe_switch(self, tag: str, wave_index: int, wave_ops,
                      evidence: WaveEvidence, at: float) -> None:
        if not self.policy.strategy_switch or not evidence.skewed:
            return
        for op in wave_ops:
            if op.node.trigger_mode != TRIGGERED:
                continue
            if op.strategy.name != RANDOM:
                continue
            estimates = [queue.cost_estimate for queue in op.queues]
            if len(estimates) < 2:
                continue
            mean = sum(estimates) / len(estimates)
            skew = max(estimates) / mean if mean > 0.0 else 1.0
            if skew > self.policy.switch_skew_threshold:
                # The estimates themselves flagged skew — step 4 had
                # its chance; the Fig 12 signature is specifically
                # *equal* estimated costs with *unequal* observed ones.
                continue
            op.strategy = make_strategy(LPT)
            self.bus.emit(SCHEDULE_SWITCH, at, tag=tag, wave=wave_index,
                          operation=op.name, before=RANDOM, after=LPT,
                          estimated_skew=skew,
                          observed=list(evidence.skewed))
            self.explanation.record(
                STEP_SWITCH, op.name, LPT,
                "Fig 12 signature: estimates said equal bucket costs "
                "but the previous wave straggled on processing skew",
                estimated_skew=skew, observed=list(evidence.skewed),
                wave=wave_index, query=tag)
