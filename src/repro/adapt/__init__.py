"""Adaptive scheduling: diagnostics-driven decisions at run time.

The blessed surface of the adaptive layer is the frozen
:class:`SchedulingPolicy` block (nested in
:class:`~repro.workload.options.WorkloadOptions` as ``scheduling=``)
plus the controller machinery the workload engine arms when
``policy="adaptive"``.
"""

from repro.adapt.controller import (
    AdaptiveController,
    WaveEvidence,
    resplit_shares,
    wave_evidence,
)
from repro.adapt.policy import (
    POLICIES,
    POLICY_ADAPTIVE,
    POLICY_STATIC,
    SchedulingPolicy,
)

__all__ = [
    "POLICIES",
    "POLICY_ADAPTIVE",
    "POLICY_STATIC",
    "AdaptiveController",
    "SchedulingPolicy",
    "WaveEvidence",
    "resplit_shares",
    "wave_evidence",
]
