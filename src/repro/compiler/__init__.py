"""Query compiler: SQL subset -> logical algebra -> Lera-par plan."""

from repro.compiler.logical import (
    Comparison,
    LogicalFilter,
    LogicalJoin,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    base_relations,
)
from repro.compiler.optimizer import (
    EQ_SELECTIVITY,
    NEQ_SELECTIVITY,
    RANGE_SELECTIVITY,
    NormalizedQuery,
    RelationTerm,
    default_selectivity,
    normalize,
)
from repro.compiler.parallelizer import CompiledQuery, parallelize
from repro.compiler.parser import parse


def compile_query(sql: str, catalog, algorithm: str = "nested_loop") -> CompiledQuery:
    """Full pipeline: parse, normalize, parallelize one SQL query."""
    return parallelize(normalize(parse(sql), catalog), catalog, algorithm)


__all__ = [
    "CompiledQuery",
    "Comparison",
    "EQ_SELECTIVITY",
    "LogicalFilter",
    "LogicalJoin",
    "LogicalNode",
    "LogicalProject",
    "LogicalScan",
    "NEQ_SELECTIVITY",
    "NormalizedQuery",
    "RANGE_SELECTIVITY",
    "RelationTerm",
    "base_relations",
    "compile_query",
    "default_selectivity",
    "normalize",
    "parallelize",
    "parse",
]
