"""A small SQL front-end.

DBS3 compiles ESQL; this reproduction accepts the subset needed for
the paper's workloads:

.. code-block:: sql

    SELECT [cols | *] FROM A
    SELECT * FROM A WHERE a1 < 100 AND a2 = 3
    SELECT * FROM A JOIN B ON A.k = B.j [WHERE A.x < 5 [AND ...]]
    SELECT g, COUNT(*), SUM(x) FROM A [WHERE ...] GROUP BY g
    SELECT AVG(x) FROM A

Identifiers may be qualified (``A.k``) or bare when unambiguous; the
parser produces a logical tree, leaving name resolution against the
catalog to the parallelizer.
"""

from __future__ import annotations

import re

from repro.compiler.logical import (
    Comparison,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalNode,
    LogicalProject,
    LogicalScan,
)
from repro.errors import CompilationError
from repro.lera.aggregates import AGGREGATE_FUNCTIONS, AggregateExpr

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<number>-?\d+(?:\.\d+)?)
      | (?P<string>'(?:[^'\\]|\\.)*')
      | (?P<op><=|>=|<>|!=|=|<|>)
      | (?P<punct>[(),.*])
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    )""",
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "join", "on", "where", "and", "group", "by"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise CompilationError(f"cannot tokenize near {remainder[:20]!r}")
        position = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "word" and value.lower() in _KEYWORDS:
            tokens.append(("keyword", value.lower()))
        else:
            tokens.append((kind, value))
    return tokens


class _Tokens:
    """Cursor over the token stream."""

    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self._tokens = tokens
        self._index = 0

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)

    def peek(self) -> tuple[str, str] | None:
        if self.exhausted:
            return None
        return self._tokens[self._index]

    def next(self) -> tuple[str, str]:
        if self.exhausted:
            raise CompilationError("unexpected end of query")
        token = self._tokens[self._index]
        self._index += 1
        return token

    def expect_keyword(self, word: str) -> None:
        kind, value = self.next()
        if kind != "keyword" or value != word:
            raise CompilationError(f"expected {word.upper()}, got {value!r}")

    def accept_keyword(self, word: str) -> bool:
        token = self.peek()
        if token == ("keyword", word):
            self._index += 1
            return True
        return False

    def accept_punct(self, symbol: str) -> bool:
        token = self.peek()
        if token == ("punct", symbol):
            self._index += 1
            return True
        return False


def _identifier(tokens: _Tokens) -> str:
    """A possibly qualified identifier, returned in ``rel.attr`` form."""
    kind, value = tokens.next()
    if kind != "word":
        raise CompilationError(f"expected identifier, got {value!r}")
    if tokens.accept_punct("."):
        kind2, attr = tokens.next()
        if kind2 != "word":
            raise CompilationError(f"expected attribute after '.', got {attr!r}")
        return f"{value}.{attr}"
    return value


def _constant(tokens: _Tokens) -> object:
    kind, value = tokens.next()
    if kind == "number":
        return float(value) if "." in value else int(value)
    if kind == "string":
        return value[1:-1].replace("\\'", "'")
    raise CompilationError(f"expected constant, got {value!r}")


def _comparisons(tokens: _Tokens) -> tuple[Comparison, ...]:
    comparisons = []
    while True:
        attribute = _identifier(tokens)
        kind, op = tokens.next()
        if kind != "op":
            raise CompilationError(f"expected comparison operator, got {op!r}")
        value = _constant(tokens)
        comparisons.append(Comparison(attribute, op, value))
        if not tokens.accept_keyword("and"):
            break
    return tuple(comparisons)


def _select_item(tokens: _Tokens):
    """One SELECT-list entry: an identifier or an aggregate call."""
    token = tokens.peek()
    if token is not None and token[0] == "word" \
            and token[1].lower() in AGGREGATE_FUNCTIONS:
        saved = tokens._index
        function = tokens.next()[1].lower()
        if tokens.accept_punct("("):
            if tokens.accept_punct("*"):
                if function != "count":
                    raise CompilationError(
                        f"{function.upper()}(*) is not valid; only COUNT(*)")
                attribute = None
            else:
                attribute = _identifier(tokens)
            if not tokens.accept_punct(")"):
                raise CompilationError(
                    f"missing ')' after {function.upper()}(...)")
            return AggregateExpr(function, attribute)
        tokens._index = saved  # a column merely named like a function
    return _identifier(tokens)


def parse(sql: str) -> LogicalNode:
    """Parse one query into a logical tree.

    Raises :class:`CompilationError` on any syntax problem.
    """
    tokens = _Tokens(_tokenize(sql))
    tokens.expect_keyword("select")

    items: list = []
    if tokens.accept_punct("*"):
        pass
    else:
        while True:
            items.append(_select_item(tokens))
            if not tokens.accept_punct(","):
                break
    columns = [item for item in items if isinstance(item, str)]
    has_aggregates = any(isinstance(item, AggregateExpr) for item in items)
    if len(columns) != len(items) and not has_aggregates:
        raise CompilationError("malformed SELECT list")

    tokens.expect_keyword("from")
    left_name = _identifier(tokens)
    node: LogicalNode = LogicalScan(left_name)

    while tokens.accept_keyword("join"):
        right_name = _identifier(tokens)
        tokens.expect_keyword("on")
        left_key = _identifier(tokens)
        kind, op = tokens.next()
        if (kind, op) != ("op", "="):
            raise CompilationError(f"JOIN ... ON requires '=', got {op!r}")
        right_key = _identifier(tokens)
        node = LogicalJoin(node, LogicalScan(right_name), left_key, right_key)

    if tokens.accept_keyword("where"):
        node = LogicalFilter(node, _comparisons(tokens))

    group_by = None
    if tokens.accept_keyword("group"):
        tokens.expect_keyword("by")
        group_by = _identifier(tokens)

    if not tokens.exhausted:
        kind, value = tokens.next()
        raise CompilationError(f"unexpected trailing token {value!r}")

    if has_aggregates or group_by is not None:
        if not has_aggregates:
            raise CompilationError(
                "GROUP BY without aggregates is not supported")
        for column in columns:
            bare = column.split(".")[-1]
            if group_by is None or bare != group_by.split(".")[-1]:
                raise CompilationError(
                    f"non-aggregated column {column!r} must be the "
                    f"GROUP BY attribute")
        return LogicalAggregate(node, group_by, tuple(items))

    return LogicalProject(node, tuple(columns))
