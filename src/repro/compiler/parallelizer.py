"""Lowering normalized queries to Lera-par plans.

This is the compile-time parallelization step: given the catalog's
static partitioning information, choose the plan shape —

* both operands co-partitioned on the join attribute -> **IdealJoin**;
* otherwise, stream the operand that is not usefully partitioned
  through a Transmit into a pipelined join -> **AssocJoin**;
* a filtered streamed operand becomes Figure 1's filter-join pipeline;

and produce the physical plan plus its output schema and projection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.optimizer import (
    NormalizedQuery,
    RelationTerm,
    default_selectivity,
)
from repro.errors import CompilationError
from repro.lera.graph import LeraGraph
from repro.lera.operators import JOIN_NESTED_LOOP
from repro.lera.aggregates import AggregateExpr
from repro.lera.plans import (
    aggregate_plan,
    assoc_join_plan,
    chain_join_plan,
    filter_join_plan,
    ideal_join_plan,
    index_scan_plan,
    selection_plan,
)
from repro.lera.predicates import TRUE, Predicate, attribute_predicate, conjunction
from repro.storage.catalog import Catalog, TableEntry
from repro.storage.schema import Schema
from repro.storage.tuples import Row


@dataclass(frozen=True)
class CompiledQuery:
    """A ready-to-execute plan with result-shaping metadata."""

    plan: LeraGraph
    output_schema: Schema
    projection: tuple[int, ...] | None
    description: str

    @property
    def final_schema(self) -> Schema:
        if self.projection is None:
            return self.output_schema
        taken: set[str] = set()
        attributes = []
        for position in self.projection:
            attribute = self.output_schema[position]
            name = attribute.name
            suffix = 2
            while name in taken:
                name = f"{attribute.name}_{suffix}"
                suffix += 1
            taken.add(name)
            attributes.append(attribute.renamed(name))
        return Schema(attributes)

    def shape_rows(self, rows: list[Row]) -> list[Row]:
        """Apply the SELECT-list projection to raw plan output."""
        if self.projection is None:
            return rows
        positions = self.projection
        return [tuple(row[p] for p in positions) for row in rows]


def _predicate_for(term: RelationTerm, schema: Schema) -> Predicate:
    """Compile a term's pushed-down comparisons into one predicate."""
    if not term.comparisons:
        return TRUE
    parts = [attribute_predicate(schema, c.attribute, c.op, c.value,
                                 selectivity=default_selectivity(c.op))
             for c in term.comparisons]
    return conjunction(*parts)


def _column_map(portions: list[tuple[str, Schema]],
                output_schema: Schema) -> dict[str, int]:
    """Qualified and bare column names -> output positions.

    ``portions`` lists (relation name, original schema) in output
    order; collisions in the concatenated schema got numeric suffixes,
    so positions are tracked positionally.
    """
    mapping: dict[str, int] = {}
    for i, attribute in enumerate(output_schema):
        mapping.setdefault(attribute.name, i)
    offset = 0
    for relation_name, schema in portions:
        for j, attribute in enumerate(schema):
            mapping[f"{relation_name}.{attribute.name}"] = offset + j
        offset += len(schema)
    return mapping


def _projection(columns: tuple[str, ...],
                mapping: dict[str, int]) -> tuple[int, ...] | None:
    if not columns:
        return None
    positions = []
    for column in columns:
        if column not in mapping:
            raise CompilationError(
                f"SELECT column {column!r} not in join output; "
                f"known: {sorted(mapping)[:12]}...")
        positions.append(mapping[column])
    return tuple(positions)


def _partitioned_on(entry: TableEntry, key: str) -> bool:
    return entry.spec.keys == (key,)


def parallelize(query: NormalizedQuery, catalog: Catalog,
                algorithm: str = JOIN_NESTED_LOOP) -> CompiledQuery:
    """Lower a normalized query to a physical Lera-par plan.

    Raises :class:`CompilationError` for shapes outside the supported
    fragment (e.g. filters on the statically partitioned operand of a
    join, or joins where neither operand is partitioned on its key).
    """
    algorithm = query.algorithm or algorithm
    left_entry = catalog.entry(query.left.name)
    left_schema = left_entry.relation.schema

    if query.is_aggregate:
        predicate = _predicate_for(query.left, left_schema)
        aggregates = tuple(item for item in query.select_items
                           if isinstance(item, AggregateExpr))
        plan = aggregate_plan(left_entry, aggregates,
                              group_by=query.group_by, predicate=predicate)
        spec = plan.node("aggregate").spec
        output_schema = spec.output_schema
        # SELECT-list order: the group column sits at position 0, each
        # aggregate at 1 + its occurrence index (offset 0 when global).
        offset = 0 if query.group_by is None else 1
        positions = []
        aggregate_order = list(aggregates)
        for item in query.select_items:
            if isinstance(item, AggregateExpr):
                positions.append(offset + aggregate_order.index(item))
            else:
                positions.append(0)
        projection = tuple(positions)
        identity = tuple(range(len(output_schema)))
        group_label = (f" GROUP BY {query.group_by}"
                       if query.group_by is not None else "")
        return CompiledQuery(
            plan=plan,
            output_schema=output_schema,
            projection=None if projection == identity else projection,
            description=(f"aggregate({left_entry.name}: "
                         f"{', '.join(a.column_name for a in aggregates)}"
                         f"{group_label})"),
        )

    if query.is_chain:
        return _parallelize_chain(query, catalog, algorithm)

    if not query.is_join:
        mapping = _column_map([(left_entry.name, left_schema)], left_schema)
        comparisons = query.left.comparisons
        if (len(comparisons) == 1
                and comparisons[0].op in ("=", "==")
                and left_entry.index_on(comparisons[0].attribute) is not None):
            comparison = comparisons[0]
            plan = index_scan_plan(left_entry, comparison.attribute,
                                   comparison.value)
            return CompiledQuery(
                plan=plan,
                output_schema=left_schema,
                projection=_projection(query.columns, mapping),
                description=(f"index_scan({left_entry.name}."
                             f"{comparison.attribute} = "
                             f"{comparison.value!r})"),
            )
        predicate = _predicate_for(query.left, left_schema)
        plan = selection_plan(left_entry, predicate)
        return CompiledQuery(
            plan=plan,
            output_schema=left_schema,
            projection=_projection(query.columns, mapping),
            description=f"selection({left_entry.name}: {predicate.description})",
        )

    right_entry = catalog.entry(query.right.name)
    right_schema = right_entry.relation.schema
    left_key, right_key = query.left_key, query.right_key
    sides = {
        query.left.name: (left_entry, query.left, left_key),
        query.right.name: (right_entry, query.right, right_key),
    }
    filtered = [name for name, (_, term, _) in sides.items() if term.filtered]

    copartitioned = (_partitioned_on(left_entry, left_key)
                     and _partitioned_on(right_entry, right_key)
                     and left_entry.spec.compatible_with(right_entry.spec))

    if not filtered and copartitioned:
        plan = ideal_join_plan(left_entry, right_entry, left_key, right_key,
                               algorithm=algorithm)
        output_schema = left_schema.concat(right_schema)
        mapping = _column_map(
            [(left_entry.name, left_schema), (right_entry.name, right_schema)],
            output_schema)
        return CompiledQuery(
            plan, output_schema, _projection(query.columns, mapping),
            description=(f"IdealJoin({left_entry.name}.{left_key} = "
                         f"{right_entry.name}.{right_key}, {algorithm})"),
        )

    if len(filtered) > 1:
        raise CompilationError(
            "filters on both join operands are not supported: the stored "
            "operand of a pipelined join cannot be filtered in-pipeline")

    # Choose the stored (statically partitioned) side and the streamed
    # side.  A filtered operand must stream (its filter pipelines into
    # the join); otherwise prefer storing the larger operand so the
    # smaller one is transmitted, as the paper's AssocJoin does.
    if filtered:
        stream_name = filtered[0]
        stored_name = (query.right.name if stream_name == query.left.name
                       else query.left.name)
    elif _partitioned_on(left_entry, left_key) and not _partitioned_on(right_entry, right_key):
        stored_name, stream_name = query.left.name, query.right.name
    elif _partitioned_on(right_entry, right_key) and not _partitioned_on(left_entry, left_key):
        stored_name, stream_name = query.right.name, query.left.name
    elif copartitioned or (_partitioned_on(left_entry, left_key)
                           and _partitioned_on(right_entry, right_key)):
        if left_entry.cardinality >= right_entry.cardinality:
            stored_name, stream_name = query.left.name, query.right.name
        else:
            stored_name, stream_name = query.right.name, query.left.name
    else:
        raise CompilationError(
            f"neither {query.left.name!r} (partitioned on "
            f"{left_entry.spec.keys}) nor {query.right.name!r} (partitioned "
            f"on {right_entry.spec.keys}) is partitioned on its join key; "
            f"repartitioning both operands is not supported")

    stored_entry, _, stored_key = sides[stored_name]
    stream_entry, stream_term, stream_key = sides[stream_name]
    if not _partitioned_on(stored_entry, stored_key):
        raise CompilationError(
            f"stored operand {stored_name!r} must be partitioned on its join "
            f"key {stored_key!r} (is partitioned on {stored_entry.spec.keys}); "
            f"its filter cannot be pipelined" if stream_term.filtered else
            f"stored operand {stored_name!r} is not partitioned on "
            f"{stored_key!r}")

    stream_schema = stream_entry.relation.schema
    stored_schema = stored_entry.relation.schema
    output_schema = stream_schema.concat(stored_schema)
    mapping = _column_map(
        [(stream_entry.name, stream_schema), (stored_entry.name, stored_schema)],
        output_schema)

    if stream_term.filtered:
        predicate = _predicate_for(stream_term, stream_schema)
        plan = filter_join_plan(stream_entry, stored_entry, predicate,
                                stream_key, stored_key, algorithm=algorithm)
        description = (f"FilterJoin(sigma[{predicate.description}]"
                       f"({stream_name}) -> {stored_name}, {algorithm})")
    else:
        plan = assoc_join_plan(stored_entry, stream_entry, stored_key,
                               stream_key, algorithm=algorithm)
        description = (f"AssocJoin({stream_name} >> {stored_name}."
                       f"{stored_key}, {algorithm})")
    return CompiledQuery(plan, output_schema,
                         _projection(query.columns, mapping), description)


def _parallelize_chain(query: NormalizedQuery, catalog: Catalog,
                       algorithm: str) -> CompiledQuery:
    """Lower an n-way left-deep join chain to a multi-phase plan.

    The first two relations must be co-partitioned on their join keys;
    every later relation must be partitioned on its own join key (its
    phase's intermediate is hash-repartitioned to match through a
    Store, so each phase is an IdealJoin).
    """
    first = catalog.entry(query.left.name)
    second = catalog.entry(query.right.name)
    if not (_partitioned_on(first, query.left_key)
            and _partitioned_on(second, query.right_key)
            and first.spec.compatible_with(second.spec)):
        raise CompilationError(
            f"multi-join: {first.name!r} and {second.name!r} must be "
            f"co-partitioned on their join keys")
    portions: list[tuple[str, Schema]] = [
        (first.name, first.relation.schema),
        (second.name, second.relation.schema),
    ]
    offsets = {first.name: 0,
               second.name: len(first.relation.schema)}
    running_schema = first.relation.schema.concat(second.relation.schema)

    extensions = []
    for step_name, prev_rel, prev_attr, step_key in query.chain_steps:
        entry = catalog.entry(step_name)
        if prev_rel not in offsets:
            raise CompilationError(
                f"{prev_rel!r} is not part of the join chain before "
                f"{step_name!r}")
        prev_schema = dict(portions)[prev_rel]
        position = offsets[prev_rel] + prev_schema.position(prev_attr)
        intermediate_key = running_schema[position].name
        extensions.append((entry, intermediate_key, step_key))
        offsets[step_name] = len(running_schema)
        portions.append((step_name, entry.relation.schema))
        running_schema = running_schema.concat(entry.relation.schema)

    plan = chain_join_plan(first, second, query.left_key, query.right_key,
                           extensions, algorithm=algorithm)
    mapping = _column_map(portions, running_schema)
    names = " >< ".join(name for name, _ in portions)
    return CompiledQuery(
        plan=plan,
        output_schema=running_schema,
        projection=_projection(query.columns, mapping),
        description=f"ChainJoin({names}, {len(extensions) + 1} phases, "
                    f"{algorithm})",
    )
