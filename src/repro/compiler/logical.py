"""Logical query algebra.

The compiler's input representation: a tiny relational algebra
sufficient for the paper's workloads (selections, equi-joins,
projections over stored relations).  The optimizer normalizes a
logical tree and the parallelizer lowers it to a Lera-par plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompilationError


@dataclass(frozen=True)
class Comparison:
    """One ``attribute OP constant`` restriction."""

    attribute: str
    op: str
    value: object

    def describe(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


@dataclass(frozen=True)
class LogicalScan:
    """Read one stored relation."""

    relation: str


@dataclass(frozen=True)
class LogicalFilter:
    """Conjunctive restriction over a child node."""

    child: "LogicalNode"
    comparisons: tuple[Comparison, ...]

    def __post_init__(self) -> None:
        if not self.comparisons:
            raise CompilationError("filter needs at least one comparison")


@dataclass(frozen=True)
class LogicalJoin:
    """Equi-join of two children on one attribute pair."""

    left: "LogicalNode"
    right: "LogicalNode"
    left_key: str
    right_key: str
    algorithm: str | None = None


@dataclass(frozen=True)
class LogicalProject:
    """Column projection, applied to the final result."""

    child: "LogicalNode"
    columns: tuple[str, ...] = field(default=())
    """Empty tuple means ``SELECT *``."""


@dataclass(frozen=True)
class LogicalAggregate:
    """Grouped aggregation over a child node.

    ``select_items`` preserves the SELECT-list order: each element is
    either a bare attribute name (which must be the GROUP BY
    attribute) or an :class:`~repro.lera.aggregates.AggregateExpr`.
    """

    child: "LogicalNode"
    group_by: str | None
    select_items: tuple

    def __post_init__(self) -> None:
        from repro.lera.aggregates import AggregateExpr
        if not any(isinstance(item, AggregateExpr)
                   for item in self.select_items):
            raise CompilationError("aggregate query without aggregates")

    @property
    def aggregates(self) -> tuple:
        from repro.lera.aggregates import AggregateExpr
        return tuple(item for item in self.select_items
                     if isinstance(item, AggregateExpr))


LogicalNode = (LogicalScan | LogicalFilter | LogicalJoin | LogicalProject
               | LogicalAggregate)


def base_relations(node: LogicalNode) -> list[str]:
    """Names of the stored relations a logical tree reads."""
    if isinstance(node, LogicalScan):
        return [node.relation]
    if isinstance(node, LogicalFilter):
        return base_relations(node.child)
    if isinstance(node, LogicalProject):
        return base_relations(node.child)
    if isinstance(node, LogicalAggregate):
        return base_relations(node.child)
    if isinstance(node, LogicalJoin):
        return base_relations(node.left) + base_relations(node.right)
    raise CompilationError(f"unknown logical node {type(node).__name__}")
