"""Logical optimization: name resolution, filter pushdown, estimates.

A deliberately small optimizer in the spirit of the DBS3 compiler
chain ([Lanzelotte94] handles full optimization there): it resolves
attribute references against the catalog, pushes conjunctive filters
down to the relation they restrict, attaches System-R-style default
selectivities, and normalizes the tree into a flat
:class:`NormalizedQuery` the parallelizer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.logical import (
    Comparison,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalNode,
    LogicalProject,
    LogicalScan,
)
from repro.errors import CatalogError, CompilationError
from repro.storage.catalog import Catalog

#: Default selectivities when no statistics apply (System R heritage).
EQ_SELECTIVITY = 0.01
RANGE_SELECTIVITY = 0.33
NEQ_SELECTIVITY = 0.9


def default_selectivity(op: str) -> float:
    """Textbook default selectivity for one comparison operator."""
    if op in ("=", "=="):
        return EQ_SELECTIVITY
    if op in ("!=", "<>"):
        return NEQ_SELECTIVITY
    return RANGE_SELECTIVITY


@dataclass(frozen=True)
class RelationTerm:
    """One base relation with the filters pushed down onto it."""

    name: str
    comparisons: tuple[Comparison, ...] = ()

    @property
    def filtered(self) -> bool:
        return bool(self.comparisons)

    def selectivity(self) -> float:
        """Combined estimated selectivity of the pushed-down filters."""
        estimate = 1.0
        for comparison in self.comparisons:
            estimate *= default_selectivity(comparison.op)
        return estimate


@dataclass(frozen=True)
class NormalizedQuery:
    """Flat normal form: at most one join, filters pushed to operands.

    Aggregate queries additionally carry the (resolved) GROUP BY
    attribute and the SELECT-list items in order.
    """

    left: RelationTerm
    right: RelationTerm | None = None
    left_key: str | None = None
    right_key: str | None = None
    columns: tuple[str, ...] = ()
    algorithm: str | None = None
    group_by: str | None = None
    select_items: tuple = ()
    #: Later joins of a left-deep chain: (relation, previous relation,
    #: previous attribute, relation's join key), resolved.
    chain_steps: tuple = ()

    @property
    def is_join(self) -> bool:
        return self.right is not None

    @property
    def is_chain(self) -> bool:
        return bool(self.chain_steps)

    @property
    def is_aggregate(self) -> bool:
        return bool(self.select_items)


def _entry(catalog: Catalog, name: str):
    """Catalog lookup surfaced as a compilation failure."""
    try:
        return catalog.entry(name)
    except CatalogError as error:
        raise CompilationError(str(error)) from error


def _resolve(reference: str, relations: list[str],
             catalog: Catalog) -> tuple[str, str]:
    """Resolve ``rel.attr`` or bare ``attr`` to (relation, attribute)."""
    if "." in reference:
        relation, attribute = reference.split(".", 1)
        if relation not in relations:
            raise CompilationError(
                f"{reference!r} references {relation!r}, not in FROM clause "
                f"{relations}")
        if attribute not in _entry(catalog, relation).relation.schema:
            raise CompilationError(
                f"relation {relation!r} has no attribute {attribute!r}")
        return relation, attribute
    owners = [name for name in relations
              if reference in _entry(catalog, name).relation.schema]
    if not owners:
        raise CompilationError(
            f"attribute {reference!r} not found in {relations}")
    if len(owners) > 1:
        raise CompilationError(
            f"attribute {reference!r} is ambiguous between {owners}; "
            f"qualify it")
    return owners[0], reference


def normalize(tree: LogicalNode, catalog: Catalog) -> NormalizedQuery:
    """Resolve names and push filters down; returns the normal form."""
    columns: tuple[str, ...] = ()
    group_by: str | None = None
    select_items: tuple = ()
    if isinstance(tree, LogicalAggregate):
        if isinstance(tree.child, LogicalJoin) or (
                isinstance(tree.child, LogicalFilter)
                and isinstance(tree.child.child, LogicalJoin)):
            raise CompilationError(
                "aggregates over joins are not supported; materialize the "
                "join first (see two_phase_join_plan)")
        group_by = tree.group_by
        select_items = tree.select_items
        tree = tree.child
    elif isinstance(tree, LogicalProject):
        columns = tree.columns
        tree = tree.child

    comparisons: tuple[Comparison, ...] = ()
    if isinstance(tree, LogicalFilter):
        comparisons = tree.comparisons
        tree = tree.child

    if isinstance(tree, LogicalScan):
        relations = [tree.relation]
        _entry(catalog, tree.relation)  # existence check
        pushed = tuple(
            Comparison(_resolve(c.attribute, relations, catalog)[1], c.op, c.value)
            for c in comparisons)
        if group_by is not None:
            group_by = _resolve(group_by, relations, catalog)[1]
        if select_items:
            from repro.lera.aggregates import AggregateExpr
            resolved_items = []
            for item in select_items:
                if isinstance(item, AggregateExpr):
                    attribute = item.attribute
                    if attribute is not None:
                        attribute = _resolve(attribute, relations, catalog)[1]
                    resolved_items.append(AggregateExpr(item.function, attribute))
                else:
                    resolved_items.append(_resolve(item, relations, catalog)[1])
            select_items = tuple(resolved_items)
        return NormalizedQuery(left=RelationTerm(tree.relation, pushed),
                               columns=columns, group_by=group_by,
                               select_items=select_items)

    if isinstance(tree, LogicalJoin) and isinstance(tree.left, LogicalJoin):
        return _normalize_chain(tree, comparisons, columns, catalog)

    if isinstance(tree, LogicalJoin):
        if not isinstance(tree.left, LogicalScan) or not isinstance(tree.right, LogicalScan):
            raise CompilationError(
                "only left-deep joins of stored relations are supported")
        left_name = tree.left.relation
        right_name = tree.right.relation
        relations = [left_name, right_name]
        left_rel, left_key = _resolve(tree.left_key, relations, catalog)
        right_rel, right_key = _resolve(tree.right_key, relations, catalog)
        if left_rel == right_rel:
            raise CompilationError(
                f"join keys both resolve to {left_rel!r}; need one per operand")
        if left_rel == right_name:
            # ON B.j = A.k written backwards — swap keys, keep operands.
            left_key, right_key = right_key, left_key
        by_relation: dict[str, list[Comparison]] = {left_name: [], right_name: []}
        for comparison in comparisons:
            owner, attribute = _resolve(comparison.attribute, relations, catalog)
            by_relation[owner].append(
                Comparison(attribute, comparison.op, comparison.value))
        return NormalizedQuery(
            left=RelationTerm(left_name, tuple(by_relation[left_name])),
            right=RelationTerm(right_name, tuple(by_relation[right_name])),
            left_key=left_key,
            right_key=right_key,
            columns=columns,
            algorithm=tree.algorithm,
        )

    raise CompilationError(
        f"unsupported logical tree root {type(tree).__name__}")


def _normalize_chain(tree: LogicalJoin, comparisons, columns,
                     catalog: Catalog) -> NormalizedQuery:
    """Flatten a left-deep join chain (three or more relations)."""
    if comparisons:
        raise CompilationError(
            "WHERE filters are not supported on multi-join queries")
    # Walk down to the base join, collecting the later steps.
    raw_steps = []
    node: LogicalNode = tree
    while isinstance(node, LogicalJoin) and isinstance(node.left, LogicalJoin):
        if not isinstance(node.right, LogicalScan):
            raise CompilationError("only left-deep join chains are supported")
        raw_steps.append((node.right.relation, node.left_key, node.right_key))
        node = node.left
    if not (isinstance(node.left, LogicalScan)
            and isinstance(node.right, LogicalScan)):
        raise CompilationError("only left-deep join chains are supported")
    raw_steps.reverse()

    left_name = node.left.relation
    right_name = node.right.relation
    relations = [left_name, right_name]
    left_rel, left_key = _resolve(node.left_key, relations, catalog)
    right_rel, right_key = _resolve(node.right_key, relations, catalog)
    if left_rel == right_rel:
        raise CompilationError(
            f"join keys both resolve to {left_rel!r}; need one per operand")
    if left_rel == right_name:
        left_key, right_key = right_key, left_key

    chain_steps = []
    for step_name, raw_a, raw_b in raw_steps:
        if step_name in relations:
            raise CompilationError(
                f"relation {step_name!r} appears twice in the join chain")
        scope = relations + [step_name]
        rel_a, attr_a = _resolve(raw_a, scope, catalog)
        rel_b, attr_b = _resolve(raw_b, scope, catalog)
        if rel_a == step_name and rel_b != step_name:
            new_attr, prev_rel, prev_attr = attr_a, rel_b, attr_b
        elif rel_b == step_name and rel_a != step_name:
            new_attr, prev_rel, prev_attr = attr_b, rel_a, attr_a
        else:
            raise CompilationError(
                f"the ON clause of {step_name!r} must relate it to an "
                f"earlier relation")
        chain_steps.append((step_name, prev_rel, prev_attr, new_attr))
        relations.append(step_name)
    return NormalizedQuery(
        left=RelationTerm(left_name),
        right=RelationTerm(right_name),
        left_key=left_key,
        right_key=right_key,
        columns=columns,
        chain_steps=tuple(chain_steps),
    )
