"""Relation schemas.

A :class:`Schema` is an ordered list of named, typed attributes.  Rows
are plain Python tuples whose positions match the schema; the schema is
the single source of truth for attribute-name to position resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError

#: Attribute kinds understood by the storage layer.
ATTRIBUTE_KINDS = ("int", "float", "str")


@dataclass(frozen=True)
class Attribute:
    """A single named, typed column of a relation."""

    name: str
    kind: str = "int"

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.kind not in ATTRIBUTE_KINDS:
            raise SchemaError(
                f"unknown attribute kind {self.kind!r}; "
                f"expected one of {ATTRIBUTE_KINDS}"
            )

    def renamed(self, name: str) -> "Attribute":
        """Return a copy of this attribute under a new name."""
        return Attribute(name, self.kind)


class Schema:
    """An ordered, immutable collection of :class:`Attribute`.

    Supports position lookup by name, projection, and concatenation
    (for join outputs).  Duplicate attribute names are rejected so that
    name resolution is always unambiguous.
    """

    __slots__ = ("_attributes", "_positions")

    def __init__(self, attributes: Iterable[Attribute]) -> None:
        self._attributes: tuple[Attribute, ...] = tuple(attributes)
        positions: dict[str, int] = {}
        for index, attribute in enumerate(self._attributes):
            if attribute.name in positions:
                raise SchemaError(f"duplicate attribute name {attribute.name!r}")
            positions[attribute.name] = index
        self._positions = positions

    # -- construction helpers -------------------------------------------------

    @classmethod
    def of_ints(cls, *names: str) -> "Schema":
        """Build a schema of integer attributes from bare names."""
        return cls(Attribute(name, "int") for name in names)

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __getitem__(self, index: int) -> Attribute:
        return self._attributes[index]

    def __contains__(self, name: object) -> bool:
        return name in self._positions

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        inner = ", ".join(f"{a.name}:{a.kind}" for a in self._attributes)
        return f"Schema({inner})"

    # -- name resolution ------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names, in schema order."""
        return tuple(a.name for a in self._attributes)

    def position(self, name: str) -> int:
        """Return the tuple position of attribute *name*.

        Raises :class:`SchemaError` when the attribute does not exist.
        """
        try:
            return self._positions[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {self.names}"
            ) from None

    def positions(self, names: Sequence[str]) -> tuple[int, ...]:
        """Resolve several attribute names to positions at once."""
        return tuple(self.position(name) for name in names)

    # -- derivation -----------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a new schema restricted to *names*, in the given order."""
        return Schema(self._attributes[self.position(name)] for name in names)

    def concat(self, other: "Schema", prefix_left: str = "",
               prefix_right: str = "") -> "Schema":
        """Concatenate two schemas, as produced by a join.

        Optional prefixes (e.g. ``"a."`` / ``"b."``) disambiguate
        explicitly; any name still colliding after prefixing gets a
        numeric suffix (``name_2``, ``name_3``, ...) so join outputs
        are always well-formed.
        """
        left = [a.renamed(prefix_left + a.name) if prefix_left else a for a in self]
        right = [a.renamed(prefix_right + a.name) if prefix_right else a for a in other]
        taken = {a.name for a in left}
        resolved = []
        for attribute in right:
            name = attribute.name
            suffix = 2
            while name in taken:
                name = f"{attribute.name}_{suffix}"
                suffix += 1
            taken.add(name)
            resolved.append(attribute.renamed(name))
        return Schema(left + resolved)
