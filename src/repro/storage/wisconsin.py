"""Wisconsin benchmark relations [Bitton83].

All paper experiments use Wisconsin relations (``DewittA`` etc.), so
the generator here reproduces the classic schema: two uniformly
distributed unique attributes, a ladder of modulo attributes with known
selectivities, and (optionally) the three 52-byte string attributes.

``unique1`` is a pseudo-random permutation of ``0..n-1`` (so selections
on it are uniformly spread over the relation) and ``unique2`` is
sequential, exactly as in the original benchmark definition.
"""

from __future__ import annotations

import random

from repro.errors import SchemaError
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, Schema

#: Integer attributes of the Wisconsin schema, in order.
WISCONSIN_INT_ATTRIBUTES = (
    "unique1", "unique2", "two", "four", "ten", "twenty",
    "onePercent", "tenPercent", "twentyPercent", "fiftyPercent",
    "unique3", "evenOnePercent", "oddOnePercent",
)

#: String attributes (optional — they triple the memory footprint).
WISCONSIN_STRING_ATTRIBUTES = ("stringu1", "stringu2", "string4")

_STRING4_CYCLE = ("AAAA", "HHHH", "OOOO", "VVVV")


def wisconsin_schema(with_strings: bool = False) -> Schema:
    """The Wisconsin benchmark schema.

    Args:
        with_strings: Include the three 52-byte string attributes.
    """
    attributes = [Attribute(name, "int") for name in WISCONSIN_INT_ATTRIBUTES]
    if with_strings:
        attributes += [Attribute(name, "str") for name in WISCONSIN_STRING_ATTRIBUTES]
    return Schema(attributes)


def _unique_string(value: int, width: int = 7, pad_to: int = 52) -> str:
    """The Wisconsin 'stringu' encoding: value in base 26, A-padded."""
    letters = []
    v = value
    for _ in range(width):
        letters.append(chr(ord("A") + v % 26))
        v //= 26
    body = "".join(reversed(letters))
    return body + "x" * (pad_to - len(body))


def generate_wisconsin(name: str, cardinality: int, seed: int = 0,
                       with_strings: bool = False) -> Relation:
    """Generate one Wisconsin relation of the given cardinality.

    Args:
        name: Relation name (e.g. ``"DewittA"``).
        cardinality: Number of tuples; must be >= 0.
        seed: Seed for the ``unique1`` permutation, making databases
            reproducible.
        with_strings: Also populate the string attributes.

    Returns:
        A :class:`Relation` following the Wisconsin value rules:
        ``two = unique1 % 2``, ``onePercent = unique1 % (n/100)`` etc.
    """
    if cardinality < 0:
        raise SchemaError(f"cardinality must be >= 0, got {cardinality}")
    rng = random.Random(seed)
    unique1 = list(range(cardinality))
    rng.shuffle(unique1)
    rows = []
    for unique2 in range(cardinality):
        u1 = unique1[unique2]
        # The percentage attributes use the benchmark's fixed modulo
        # bases: each onePercent value selects 1% of the tuples, each
        # tenPercent value 10%, and so on.
        row = (
            u1, unique2,
            u1 % 2, u1 % 4, u1 % 10, u1 % 20,
            u1 % 100, u1 % 10, u1 % 5, u1 % 2,
            u1, (u1 % 100) * 2, (u1 % 100) * 2 + 1,
        )
        if with_strings:
            row = row + (_unique_string(u1), _unique_string(unique2),
                         _STRING4_CYCLE[unique2 % 4])
        rows.append(row)
    return Relation(name, wisconsin_schema(with_strings), rows)
