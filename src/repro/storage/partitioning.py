"""Static hash partitioning — the Lera-par storage model.

Relations are partitioned by hashing one or more attributes; fragments
are then distributed onto disks round-robin, so the *degree of
partitioning* is independent of the number of disks (Section 2 of the
paper).  Co-partitioning of two relations (same key domain, same
degree, same method) is what lets the compiler emit an IdealJoin
instead of an AssocJoin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import PartitioningError
from repro.storage.fragment import Fragment
from repro.storage.relation import Relation
from repro.storage.tuples import Row, stable_hash


@dataclass(frozen=True)
class PartitioningSpec:
    """Describes how a relation is (or should be) partitioned.

    Attributes:
        keys: Attribute names hashed to pick the fragment.
        degree: Number of fragments produced.
        method: Partitioning method; only ``"hash"`` is implemented,
            matching the paper's storage model.
    """

    keys: tuple[str, ...]
    degree: int
    method: str = "hash"

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise PartitioningError(f"degree must be >= 1, got {self.degree}")
        if not self.keys:
            raise PartitioningError("at least one partitioning key is required")
        if self.method != "hash":
            raise PartitioningError(f"unsupported partitioning method {self.method!r}")

    @classmethod
    def on(cls, key: str, degree: int) -> "PartitioningSpec":
        """Convenience constructor for single-key hash partitioning."""
        return cls((key,), degree)

    def compatible_with(self, other: "PartitioningSpec") -> bool:
        """True when two partitionings place equal keys in equal fragments.

        Compatibility requires the same method and degree; keys may
        have different *names* (each relation names its own join
        attribute) but must be single-key-for-single-key, since
        multi-key hashing mixes values.
        """
        return (self.method == other.method
                and self.degree == other.degree
                and len(self.keys) == len(other.keys))


def fragment_of(key_values: Sequence[object], degree: int) -> int:
    """Map a key-value vector to its fragment number."""
    if len(key_values) == 1:
        return stable_hash(key_values[0]) % degree
    return stable_hash(tuple(key_values)) % degree


class HashPartitioner:
    """Partitions relations according to a :class:`PartitioningSpec`."""

    def __init__(self, spec: PartitioningSpec) -> None:
        self.spec = spec

    def fragment_for_row(self, row: Row, positions: Sequence[int]) -> int:
        """Fragment number of a single row given key positions."""
        return fragment_of([row[p] for p in positions], self.spec.degree)

    def partition(self, relation: Relation) -> list[Fragment]:
        """Split *relation* into ``spec.degree`` fragments.

        Every row lands in exactly one fragment; fragment ``i``
        contains precisely the rows whose hashed key equals ``i``
        modulo the degree.
        """
        positions = relation.schema.positions(self.spec.keys)
        fragments = [Fragment(relation.name, i, relation.schema)
                     for i in range(self.spec.degree)]
        degree = self.spec.degree
        if len(positions) == 1:
            position = positions[0]
            for row in relation.rows:
                fragments[stable_hash(row[position]) % degree].append(row)
        else:
            for row in relation.rows:
                key = tuple(row[p] for p in positions)
                fragments[stable_hash(key) % degree].append(row)
        return fragments


def repartition_row(row: Row, position: int, degree: int) -> int:
    """Dynamic repartitioning of one tuple (the Transmit operator).

    Uses the same hash as static partitioning so that a repartitioned
    stream lines up with a statically partitioned build side.
    """
    return stable_hash(row[position]) % degree
