"""Relations: named, schema-typed collections of rows."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.storage.schema import Schema
from repro.storage.tuples import Row, row_size_bytes


class Relation:
    """A named, memory-resident relation.

    Rows are stored as a list of tuples matching ``schema``.  The class
    is deliberately simple — partitioning into :class:`~repro.storage
    .fragment.Fragment` objects is what the engine actually operates
    on; a ``Relation`` is the logical, un-fragmented view.
    """

    __slots__ = ("name", "schema", "rows")

    def __init__(self, name: str, schema: Schema, rows: Iterable[Row] = ()) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        self.name = name
        self.schema = schema
        self.rows: list[Row] = list(rows)

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, |rows|={len(self.rows)})"

    # -- accessors ------------------------------------------------------------

    @property
    def cardinality(self) -> int:
        """Number of rows."""
        return len(self.rows)

    def column(self, name: str) -> list:
        """Materialize one attribute column as a list."""
        position = self.schema.position(name)
        return [row[position] for row in self.rows]

    def size_bytes(self) -> int:
        """Approximate total footprint of the relation, in bytes."""
        return sum(row_size_bytes(row) for row in self.rows)

    # -- row-level operations (reference implementations) ----------------------

    def select(self, predicate: Callable[[Row], bool], name: str | None = None) -> "Relation":
        """Sequential reference selection, used by tests as ground truth."""
        return Relation(name or f"{self.name}_sel", self.schema,
                        (row for row in self.rows if predicate(row)))

    def project(self, names: Sequence[str], name: str | None = None) -> "Relation":
        """Sequential reference projection (duplicate-preserving)."""
        positions = self.schema.positions(names)
        return Relation(name or f"{self.name}_proj", self.schema.project(names),
                        (tuple(row[p] for p in positions) for row in self.rows))

    def join(self, other: "Relation", left_key: str, right_key: str,
             name: str | None = None) -> "Relation":
        """Sequential reference equi-join, used by tests as ground truth.

        Builds a hash table on *other* and probes with *self*; output
        schema is the concatenation of both input schemas (caller must
        ensure names do not collide, e.g. via distinct relation
        attribute names).
        """
        left_pos = self.schema.position(left_key)
        right_pos = other.schema.position(right_key)
        table: dict[object, list[Row]] = {}
        for row in other.rows:
            table.setdefault(row[right_pos], []).append(row)
        out_schema = self.schema.concat(other.schema)
        matches = (left + right
                   for left in self.rows
                   for right in table.get(left[left_pos], ()))
        return Relation(name or f"{self.name}_{other.name}", out_schema, matches)

    def sorted_by(self, key: str) -> "Relation":
        """Return a copy sorted on one attribute (ascending)."""
        position = self.schema.position(key)
        return Relation(self.name, self.schema,
                        sorted(self.rows, key=lambda row: row[position]))
