"""Storage substrate: relations, fragments, partitioning, catalog.

This package implements Lera-par's statically partitioned storage
model: relations are hash partitioned into fragments which are placed
round-robin on (simulated) disks, plus the Wisconsin benchmark
generator and Zipf skew machinery used by every experiment.
"""

from repro.storage.catalog import Catalog, TableEntry
from repro.storage.disks import Disk, DiskArray
from repro.storage.fragment import Fragment
from repro.storage.indexes import HashIndex, SortedIndex, build_index
from repro.storage.io import relation_from_csv, relation_to_csv
from repro.storage.partitioning import (
    HashPartitioner,
    PartitioningSpec,
    fragment_of,
    repartition_row,
)
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, Schema
from repro.storage.skew import (
    skew_ratio,
    theoretical_skew_ratio,
    zipf_cardinalities,
    zipf_weights,
)
from repro.storage.statistics import FragmentStatistics
from repro.storage.tuples import Row, concat_rows, project_row, stable_hash
from repro.storage.wisconsin import generate_wisconsin, wisconsin_schema

__all__ = [
    "Attribute",
    "Catalog",
    "Disk",
    "DiskArray",
    "Fragment",
    "FragmentStatistics",
    "HashIndex",
    "HashPartitioner",
    "PartitioningSpec",
    "Relation",
    "Row",
    "Schema",
    "SortedIndex",
    "TableEntry",
    "build_index",
    "concat_rows",
    "fragment_of",
    "generate_wisconsin",
    "relation_from_csv",
    "relation_to_csv",
    "project_row",
    "repartition_row",
    "skew_ratio",
    "stable_hash",
    "theoretical_skew_ratio",
    "wisconsin_schema",
    "zipf_cardinalities",
    "zipf_weights",
]
