"""Simulated disk array and round-robin fragment placement.

The paper's measurements are memory-resident (the INRIA KSR1 had a
single disk), so disks here are placement *metadata*: they record where
a fragment would live and let the degree of partitioning exceed the
number of disks, exactly as Lera-par's storage model allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import PartitioningError
from repro.storage.fragment import Fragment


@dataclass
class Disk:
    """One simulated disk: an identifier plus the fragments placed on it."""

    disk_id: int
    fragments: list[Fragment] = field(default_factory=list)

    @property
    def load_bytes(self) -> int:
        """Total bytes of all fragments placed on this disk."""
        return sum(f.size_bytes() for f in self.fragments)

    @property
    def fragment_count(self) -> int:
        return len(self.fragments)


class DiskArray:
    """A fixed array of simulated disks with round-robin placement."""

    def __init__(self, disk_count: int) -> None:
        if disk_count < 1:
            raise PartitioningError(f"disk_count must be >= 1, got {disk_count}")
        self.disks = [Disk(i) for i in range(disk_count)]

    def __len__(self) -> int:
        return len(self.disks)

    def place_round_robin(self, fragments: Sequence[Fragment]) -> None:
        """Assign fragments to disks round-robin (fragment i -> disk i mod D).

        Mutates each fragment's ``disk`` attribute and records the
        placement on the disk, mirroring the paper: "relation fragments
        are distributed onto disks in a round-robin fashion".
        """
        disk_count = len(self.disks)
        for fragment in fragments:
            disk = self.disks[fragment.index % disk_count]
            fragment.disk = disk.disk_id
            disk.fragments.append(fragment)

    def balance_ratio(self) -> float:
        """Max/mean fragment count across disks (1.0 = perfectly even)."""
        counts = [d.fragment_count for d in self.disks]
        total = sum(counts)
        if total == 0:
            return 1.0
        mean = total / len(counts)
        return max(counts) / mean
