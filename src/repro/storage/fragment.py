"""Fragments: the unit of static partitioning.

A fragment is one horizontal slice of a partitioned relation.  In
Lera-par each operator whose input is a partitioned relation gets one
*instance per fragment*, so fragments are also the unit of
intra-operator parallelism and — for triggered operators — the unit of
sequential work.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.storage.schema import Schema
from repro.storage.tuples import Row, row_size_bytes


class Fragment:
    """One fragment of a partitioned relation.

    Attributes:
        relation_name: Name of the relation this fragment belongs to.
        index: Fragment number within the partitioning (0-based).
        schema: Schema shared with the parent relation.
        rows: The fragment's rows.
        disk: Identifier of the (simulated) disk holding the fragment,
            assigned round-robin by the placement policy; ``None`` for
            transient fragments produced at run time.
    """

    __slots__ = ("relation_name", "index", "schema", "rows", "disk",
                 "_size_cache")

    def __init__(self, relation_name: str, index: int, schema: Schema,
                 rows: Iterable[Row] = (), disk: int | None = None) -> None:
        self.relation_name = relation_name
        self.index = index
        self.schema = schema
        self.rows: list[Row] = list(rows)
        self.disk = disk
        self._size_cache: int | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return (f"Fragment({self.relation_name!r}[{self.index}], "
                f"|rows|={len(self.rows)}, disk={self.disk})")

    @property
    def cardinality(self) -> int:
        """Number of rows in the fragment."""
        return len(self.rows)

    def size_bytes(self) -> int:
        """Approximate footprint of the fragment, in bytes.

        Memoized — the engine's cost accounting asks for footprints on
        hot paths; :meth:`append` invalidates the cache.  Mutating
        ``rows`` directly bypasses the invalidation, so incremental
        builders must go through :meth:`append`.
        """
        size = self._size_cache
        if size is None:
            size = sum(row_size_bytes(row) for row in self.rows)
            self._size_cache = size
        return size

    def append(self, row: Row) -> None:
        """Add one row (used when building fragments incrementally)."""
        self.rows.append(row)
        self._size_cache = None
