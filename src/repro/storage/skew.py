"""Zipf-skewed fragment cardinalities.

The paper models skewed databases with a Zipf function [Zipf49]: the
degree of skew ``theta`` ranges from 0 (uniform) to 1 (high skew) and
determines fragment cardinalities.  Fragment ``i`` (1-based) receives a
share proportional to ``1 / i**theta``.

This module provides the Zipf mathematics plus a partitioner that
builds a relation whose fragment cardinalities follow the Zipf law
while remaining a *correct* hash partitioning (every tuple's join key
still hashes to its fragment), which is what lets skewed databases run
real joins with verifiable results.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import PartitioningError


def zipf_weights(degree: int, theta: float) -> list[float]:
    """Normalized Zipf weights for fragments ``1..degree``.

    ``theta = 0`` yields uniform weights; ``theta = 1`` the classic
    harmonic distribution.  Weights sum to 1.0.
    """
    if degree < 1:
        raise PartitioningError(f"degree must be >= 1, got {degree}")
    if theta < 0:
        raise PartitioningError(f"theta must be >= 0, got {theta}")
    raw = [1.0 / (i ** theta) for i in range(1, degree + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def zipf_cardinalities(total: int, degree: int, theta: float) -> list[int]:
    """Integer fragment cardinalities summing exactly to *total*.

    Uses largest-remainder rounding so the sum is exact and the
    distribution is as close to the real-valued Zipf shares as integer
    cardinalities allow.  The first fragment is always the largest
    (for ``theta > 0``).
    """
    if total < 0:
        raise PartitioningError(f"total must be >= 0, got {total}")
    weights = zipf_weights(degree, theta)
    shares = [w * total for w in weights]
    floors = [int(s) for s in shares]
    remainder = total - sum(floors)
    # Distribute the leftover units to the largest fractional parts.
    by_fraction = sorted(range(degree), key=lambda i: shares[i] - floors[i],
                         reverse=True)
    for i in by_fraction[:remainder]:
        floors[i] += 1
    return floors


def skew_ratio(cardinalities: Sequence[int]) -> float:
    """``Pmax / P`` — largest fragment over mean fragment size.

    This is the skew factor of equation (3) when activation cost is
    proportional to fragment cardinality.  Returns 1.0 for an empty or
    all-zero partitioning.
    """
    total = sum(cardinalities)
    if total == 0 or not cardinalities:
        return 1.0
    mean = total / len(cardinalities)
    return max(cardinalities) / mean


def theoretical_skew_ratio(degree: int, theta: float) -> float:
    """``Pmax / P`` implied by a pure Zipf law (no rounding)."""
    weights = zipf_weights(degree, theta)
    return max(weights) * degree


def sample_zipf_fragment(degree: int, theta: float, rng: random.Random) -> int:
    """Draw one fragment index (0-based) according to Zipf weights.

    Used by the workload generator to produce tuple streams whose
    *redistribution* is skewed (RS in Walton's taxonomy).
    """
    weights = zipf_weights(degree, theta)
    return rng.choices(range(degree), weights=weights, k=1)[0]
