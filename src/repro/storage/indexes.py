"""Fragment-local indexes.

Two index kinds back the paper's join algorithms:

* :class:`HashIndex` — the classic equi-join build structure.
* :class:`SortedIndex` — the "temporary index built on the fly" used in
  Experiment 3 (Figure 17): a sorted array with binary-search lookup,
  whose ``n log n`` build cost is what makes high partitioning degrees
  profitable (smaller fragments build super-linearly cheaper).

Indexes store rows directly (fragments are memory-resident), and both
expose ``lookup(key) -> list[Row]`` plus build statistics used by the
cost model.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Iterable, Sequence

from repro.storage.tuples import Row


class HashIndex:
    """Hash index on one attribute position of a set of rows."""

    __slots__ = ("key_position", "_table", "build_rows")

    def __init__(self, rows: Iterable[Row], key_position: int) -> None:
        self.key_position = key_position
        self._table: dict[object, list[Row]] = {}
        count = 0
        for row in rows:
            self._table.setdefault(row[key_position], []).append(row)
            count += 1
        self.build_rows = count

    def __len__(self) -> int:
        return self.build_rows

    def lookup(self, key: object) -> list[Row]:
        """All rows whose key attribute equals *key* (possibly empty)."""
        return self._table.get(key, [])

    def distinct_keys(self) -> int:
        """Number of distinct key values indexed."""
        return len(self._table)

    @staticmethod
    def build_cost_units(cardinality: int) -> float:
        """Abstract cost units to build the index: linear in rows."""
        return float(cardinality)


class SortedIndex:
    """Sorted-array index with binary search — the paper's temp index.

    Build sorts the rows on the key (``O(n log n)``); lookups use
    ``bisect`` (``O(log n)`` plus the match count).
    """

    __slots__ = ("key_position", "_keys", "_rows", "build_rows")

    def __init__(self, rows: Iterable[Row], key_position: int) -> None:
        self.key_position = key_position
        pairs = sorted(((row[key_position], row) for row in rows),
                       key=lambda pair: pair[0])
        self._keys = [key for key, _ in pairs]
        self._rows = [row for _, row in pairs]
        self.build_rows = len(self._rows)

    def __len__(self) -> int:
        return self.build_rows

    def lookup(self, key: object) -> list[Row]:
        """All rows whose key attribute equals *key* (possibly empty)."""
        lo = bisect_left(self._keys, key)
        hi = bisect_right(self._keys, key)
        return self._rows[lo:hi]

    def range_lookup(self, low: object, high: object) -> list[Row]:
        """Rows with ``low <= key <= high`` (inclusive range scan)."""
        lo = bisect_left(self._keys, low)
        hi = bisect_right(self._keys, high)
        return self._rows[lo:hi]

    @staticmethod
    def build_cost_units(cardinality: int) -> float:
        """Abstract cost units to build: ``n * log2(n)`` comparisons."""
        if cardinality <= 1:
            return float(cardinality)
        return cardinality * math.log2(cardinality)


def build_index(rows: Sequence[Row], key_position: int, kind: str = "hash"):
    """Factory: build a ``hash`` or ``sorted`` index over *rows*."""
    if kind == "hash":
        return HashIndex(rows, key_position)
    if kind == "sorted":
        return SortedIndex(rows, key_position)
    raise ValueError(f"unknown index kind {kind!r}")
