"""Row-level helpers.

Rows are plain Python tuples for compactness; every helper here is a
thin, allocation-conscious function over them.  A stable, process-
independent hash is provided so that hash partitioning is reproducible
across runs regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

from typing import Sequence

Row = tuple
"""Type alias: a relation row is a plain tuple."""

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def stable_hash(value: object) -> int:
    """Deterministic 64-bit hash, stable across processes and runs.

    Integers hash to themselves (like CPython) so that modulo
    partitioning on integer keys is transparent and easy to reason
    about in tests; strings and floats go through FNV-1a over their
    UTF-8/repr bytes.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value & _MASK64
    if isinstance(value, str):
        data = value.encode("utf-8")
    elif isinstance(value, float):
        data = repr(value).encode("ascii")
    elif isinstance(value, tuple):
        combined = _FNV_OFFSET
        for item in value:
            combined = ((combined ^ stable_hash(item)) * _FNV_PRIME) & _MASK64
        return combined
    else:
        data = repr(value).encode("utf-8", errors="replace")
    digest = _FNV_OFFSET
    for byte in data:
        digest = ((digest ^ byte) * _FNV_PRIME) & _MASK64
    return digest


def project_row(row: Row, positions: Sequence[int]) -> Row:
    """Return the sub-tuple of *row* at *positions*, in order."""
    return tuple(row[p] for p in positions)


def concat_rows(left: Row, right: Row) -> Row:
    """Concatenate two rows, as a join does."""
    return left + right


def row_size_bytes(row: Row, default_int: int = 8, default_str_overhead: int = 1) -> int:
    """Approximate the storage footprint of a row, in bytes.

    Used by the machine model to account cache-residency; integers and
    floats count ``default_int`` bytes, strings their length plus a
    small overhead.  This mirrors the fixed-width record accounting of
    the Wisconsin benchmark rather than CPython object sizes.
    """
    size = 0
    for value in row:
        if isinstance(value, str):
            size += len(value) + default_str_overhead
        else:
            size += default_int
    return size
