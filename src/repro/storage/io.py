"""Loading and saving relations (CSV).

A small, dependency-free data-interchange layer: relations round-trip
through CSV with a header row, with values converted according to the
schema's attribute kinds (``int`` / ``float`` / ``str``).  When no
schema is given on load, kinds are inferred from the first data row.
"""

from __future__ import annotations

import csv
import pathlib

from repro.errors import SchemaError
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, Schema

_CONVERTERS = {
    "int": int,
    "float": float,
    "str": str,
}

#: Optional fault hook consulted before every load/save, called as
#: ``hook(mode, path)`` with mode ``"read"``/``"write"``; it may raise
#: :class:`~repro.errors.FaultError` to model an I/O failure.  ``None``
#: (the default) costs one module-global check per call.  Installed by
#: :func:`repro.faults.injector.io_faults`.
_io_fault_hook = None


def set_io_fault_hook(hook):
    """Install (or clear, with ``None``) the I/O fault hook.

    Returns the previous hook so callers can restore it.
    """
    global _io_fault_hook
    previous = _io_fault_hook
    _io_fault_hook = hook
    return previous


def relation_to_csv(relation: Relation, path: str | pathlib.Path) -> None:
    """Write *relation* to *path* as CSV with a header row."""
    path = pathlib.Path(path)
    if _io_fault_hook is not None:
        _io_fault_hook("write", path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.names)
        writer.writerows(relation.rows)


def _infer_schema(names: list[str], first_row: list[str]) -> Schema:
    attributes = []
    for name, value in zip(names, first_row):
        kind = "str"
        try:
            int(value)
            kind = "int"
        except ValueError:
            try:
                float(value)
                kind = "float"
            except ValueError:
                pass
        attributes.append(Attribute(name, kind))
    return Schema(attributes)


def relation_from_csv(name: str, path: str | pathlib.Path,
                      schema: Schema | None = None) -> Relation:
    """Load a relation from a CSV file with a header row.

    Args:
        name: Name for the loaded relation.
        path: CSV file; the first row must be the attribute names.
        schema: Expected schema; values are converted to its attribute
            kinds.  ``None`` infers kinds from the first data row
            (columns of an empty file default to ``str``).

    Raises:
        SchemaError: On a missing header, a header/schema mismatch, or
            a value that does not convert to its attribute kind.
    """
    path = pathlib.Path(path)
    if _io_fault_hook is not None:
        _io_fault_hook("read", path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: empty file, expected a header row") \
                from None
        raw_rows = list(reader)

    if schema is None:
        if raw_rows:
            schema = _infer_schema(header, raw_rows[0])
        else:
            schema = Schema(Attribute(name_, "str") for name_ in header)
    elif tuple(header) != schema.names:
        raise SchemaError(
            f"{path}: header {tuple(header)} does not match schema "
            f"{schema.names}")

    converters = [_CONVERTERS[attribute.kind] for attribute in schema]
    rows = []
    for line_number, raw in enumerate(raw_rows, start=2):
        if len(raw) != len(schema):
            raise SchemaError(
                f"{path}:{line_number}: {len(raw)} values for "
                f"{len(schema)} attributes")
        try:
            rows.append(tuple(convert(value)
                              for convert, value in zip(converters, raw)))
        except ValueError as error:
            raise SchemaError(f"{path}:{line_number}: {error}") from None
    return Relation(name, schema, rows)
