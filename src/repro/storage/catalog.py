"""The catalog: partitioned relations known to the system.

Registering a relation partitions it according to its
:class:`~repro.storage.partitioning.PartitioningSpec`, places the
fragments round-robin on the disk array, and records fragment
statistics for the scheduler.  The catalog also answers the
co-partitioning question that decides IdealJoin vs AssocJoin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import CatalogError
from repro.storage.disks import DiskArray
from repro.storage.fragment import Fragment
from repro.storage.partitioning import HashPartitioner, PartitioningSpec
from repro.storage.relation import Relation
from repro.storage.statistics import FragmentStatistics


@dataclass
class TableEntry:
    """Everything the system knows about one stored relation."""

    relation: Relation
    spec: PartitioningSpec
    fragments: list[Fragment]
    statistics: FragmentStatistics
    indexes: dict[str, list] = field(default_factory=dict)
    """Permanent per-fragment indexes, keyed by attribute name."""

    @property
    def name(self) -> str:
        return self.relation.name

    @property
    def degree(self) -> int:
        """Degree of partitioning of the stored relation."""
        return self.spec.degree

    @property
    def cardinality(self) -> int:
        return self.relation.cardinality

    def create_index(self, attribute: str, kind: str = "hash") -> None:
        """Build a permanent index on *attribute* over every fragment.

        Equality selections on an indexed attribute compile to index
        probes instead of fragment scans.  Re-creating an existing
        index replaces it.
        """
        from repro.storage.indexes import build_index
        position = self.relation.schema.position(attribute)
        self.indexes[attribute] = [
            build_index(fragment.rows, position, kind)
            for fragment in self.fragments
        ]

    def index_on(self, attribute: str) -> list | None:
        """Per-fragment indexes for *attribute*, or None."""
        return self.indexes.get(attribute)


class Catalog:
    """Name -> :class:`TableEntry` registry with a shared disk array."""

    def __init__(self, disk_count: int = 1) -> None:
        self._entries: dict[str, TableEntry] = {}
        self.disks = DiskArray(disk_count)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[TableEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    # -- registration -----------------------------------------------------

    def register(self, relation: Relation, spec: PartitioningSpec) -> TableEntry:
        """Partition *relation* per *spec*, place it on disks, record it.

        Raises :class:`CatalogError` if the name is already taken or
        the partitioning key is not in the relation's schema.
        """
        if relation.name in self._entries:
            raise CatalogError(f"relation {relation.name!r} already registered")
        for key in spec.keys:
            if key not in relation.schema:
                raise CatalogError(
                    f"partitioning key {key!r} not in schema of {relation.name!r}")
        fragments = HashPartitioner(spec).partition(relation)
        self.disks.place_round_robin(fragments)
        entry = TableEntry(relation, spec, fragments, FragmentStatistics.of(fragments))
        self._entries[relation.name] = entry
        return entry

    def register_fragments(self, relation: Relation, spec: PartitioningSpec,
                           fragments: list[Fragment]) -> TableEntry:
        """Register pre-built fragments (e.g. skew-controlled databases).

        The caller guarantees the fragments actually honour *spec*;
        only structural checks (count, total cardinality) are applied.
        """
        if relation.name in self._entries:
            raise CatalogError(f"relation {relation.name!r} already registered")
        if len(fragments) != spec.degree:
            raise CatalogError(
                f"{len(fragments)} fragments supplied for degree {spec.degree}")
        total = sum(f.cardinality for f in fragments)
        if total != relation.cardinality:
            raise CatalogError(
                f"fragments hold {total} rows, relation has {relation.cardinality}")
        self.disks.place_round_robin(fragments)
        entry = TableEntry(relation, spec, fragments, FragmentStatistics.of(fragments))
        self._entries[relation.name] = entry
        return entry

    def drop(self, name: str) -> None:
        """Remove a relation from the catalog (fragments stay on disks' history)."""
        if name not in self._entries:
            raise CatalogError(f"unknown relation {name!r}")
        del self._entries[name]

    # -- lookup -------------------------------------------------------------

    def entry(self, name: str) -> TableEntry:
        """Look up a relation; raises :class:`CatalogError` if absent."""
        try:
            return self._entries[name]
        except KeyError:
            raise CatalogError(f"unknown relation {name!r}") from None

    def copartitioned(self, left: str, right: str) -> bool:
        """True when the two relations can be IdealJoin-ed.

        Both must be hash partitioned with compatible specs (same
        method and degree); the join itself must also be on the
        partitioning keys, which the compiler checks separately.
        """
        return self.entry(left).spec.compatible_with(self.entry(right).spec)
