"""Fragment statistics — what the scheduler's skew handling runs on.

The paper implements LPT *without estimating per-activation times*:
"we can arrange the operation instances in decreasing order of
estimated execution time, for instance, based on static information on
fragment sizes" (Section 4.1).  These statistics are that static
information: per-fragment cardinalities plus derived skew measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.storage.fragment import Fragment


@dataclass(frozen=True)
class FragmentStatistics:
    """Cardinality statistics over the fragments of one relation."""

    cardinalities: tuple[int, ...]

    @classmethod
    def of(cls, fragments: Sequence[Fragment]) -> "FragmentStatistics":
        """Collect statistics from materialized fragments."""
        return cls(tuple(f.cardinality for f in fragments))

    @property
    def degree(self) -> int:
        """Number of fragments."""
        return len(self.cardinalities)

    @property
    def total(self) -> int:
        """Total cardinality across fragments."""
        return sum(self.cardinalities)

    @property
    def largest(self) -> int:
        """Cardinality of the biggest fragment (drives ``Pmax``)."""
        return max(self.cardinalities) if self.cardinalities else 0

    @property
    def mean(self) -> float:
        """Mean fragment cardinality (drives ``P``)."""
        if not self.cardinalities:
            return 0.0
        return self.total / self.degree

    @property
    def skew_ratio(self) -> float:
        """``Pmax / P``: largest over mean fragment cardinality."""
        mean = self.mean
        if mean == 0:
            return 1.0
        return self.largest / mean

    def is_skewed(self, threshold: float = 1.5) -> bool:
        """Heuristic skew detector used by scheduler step 4.

        A perfectly uniform partitioning has ratio 1.0; hash
        partitioning of uniform data stays close to that.  A ratio
        above *threshold* indicates AVS/TPS worth switching to LPT for.
        """
        return self.skew_ratio > threshold

    def descending_order(self) -> list[int]:
        """Fragment indexes sorted by decreasing cardinality.

        This is the LPT service order for triggered operators.
        """
        return sorted(range(self.degree),
                      key=lambda i: self.cardinalities[i], reverse=True)
