"""Post-mortem execution diagnostics.

The observability layer (:mod:`repro.obs`) records what happened;
this layer answers the paper's questions about it:

* :func:`~repro.diag.critical_path.critical_path` — the longest
  dependency chain through the activation graph, with per-operator
  blame (busy, queue-wait, capacity-block, Allcache penalty): *which
  operator limits the response time?*
* :func:`~repro.diag.imbalance.diagnose_imbalance` — ranked skew
  findings per operator (instance-queue imbalance, thread stragglers,
  steal pressure, idle pools) with paper-grounded remediation hints:
  *how badly did skew defeat the thread pools?*
* :class:`~repro.diag.registry.RunRegistry` /
  :func:`~repro.diag.registry.compare` — persisted
  :class:`~repro.diag.registry.RunRecord` files and structured A/B
  regression reports: *did Random vs LPT actually change the
  bottleneck?*

Everything consumes an observed execution
(``ExecutionOptions(observe=True)``) or a reloaded JSONL event log
(:func:`repro.obs.export.read_jsonl`) — both give identical results.
Entry points: :func:`~repro.diag.report.diagnose`,
``python -m repro --diagnose``, ``python -m repro compare A B``.
"""

from repro.diag.critical_path import (
    CriticalPath,
    OperatorBlame,
    PathSegment,
    critical_path,
)
from repro.diag.imbalance import (
    FRAGMENT_SKEW,
    IDLE_POOL,
    REDISTRIBUTION_SKEW,
    STEAL_PRESSURE,
    THREAD_IMBALANCE,
    Finding,
    diagnose_imbalance,
    render_findings,
)
from repro.diag.registry import (
    RunComparison,
    RunRecord,
    RunRegistry,
    compare,
)
from repro.diag.report import Diagnosis, diagnose
from repro.diag.run import ObservedRun, OpView

__all__ = [
    "CriticalPath",
    "OperatorBlame",
    "PathSegment",
    "critical_path",
    "Finding",
    "diagnose_imbalance",
    "render_findings",
    "REDISTRIBUTION_SKEW",
    "FRAGMENT_SKEW",
    "THREAD_IMBALANCE",
    "STEAL_PRESSURE",
    "IDLE_POOL",
    "RunComparison",
    "RunRecord",
    "RunRegistry",
    "compare",
    "Diagnosis",
    "diagnose",
    "ObservedRun",
    "OpView",
]
