"""The imbalance doctor: automated skew attribution.

Scores every operator's load distribution — across its instance
queues and across its thread pool — and emits ranked findings with
remediation hints grounded in the paper's vocabulary: redistribution
vs attribution skew (Walton's taxonomy, via the Join Product Skew
framework of Afrati et al.), Random vs LPT consumption (Section 5 of
the DBS3 paper), the degree of partitioning, and the grain knob.

The doctor is deliberately heuristic — thresholds, not proofs — but
every score is a real measured ratio, so a finding always points at a
number that can be re-derived from the event log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.diag.run import ObservedRun, OpView
from repro.lera.activation import TRIGGERED

#: Finding kinds.
REDISTRIBUTION_SKEW = "redistribution-skew"
FRAGMENT_SKEW = "fragment-skew"          # triggered ops: attribution skew
THREAD_IMBALANCE = "thread-imbalance"
STEAL_PRESSURE = "steal-pressure"
IDLE_POOL = "idle-pool"

#: Score thresholds below which a dimension is considered healthy.
INSTANCE_IMBALANCE_THRESHOLD = 1.5  # max/mean work (or count) per instance
THREAD_IMBALANCE_THRESHOLD = 1.5    # max/mean busy time per thread
STEAL_THRESHOLD = 0.25              # secondary share of dequeue batches
IDLE_THRESHOLD = 0.6                # idle share of pool lifetime


@dataclass(frozen=True)
class Finding:
    """One ranked diagnosis of one operator.

    ``severity`` weighs the raw ``score`` by the operator's share of
    the query's total busy time, so a badly skewed but tiny operator
    ranks below a mildly skewed dominant one.
    """

    kind: str
    operation: str
    severity: float
    score: float
    message: str
    hint: str

    def render(self) -> str:
        return (f"[{self.severity:6.3f}] {self.operation}: "
                f"{self.kind} — {self.message}\n"
                f"         hint: {self.hint}")

    def to_json(self) -> dict:
        return {"kind": self.kind, "operation": self.operation,
                "severity": self.severity, "score": self.score,
                "message": self.message, "hint": self.hint}


def _instance_skew_finding(op: OpView, run: ObservedRun,
                           work_share: float) -> Finding | None:
    """Per-instance load skew, scored on *work* when reconstructible.

    Activation counts per queue miss the Figure 12 case (a uniform
    stream probing a skewed stored operand sends equal counts but
    unequal costs), so the primary score is the max/mean of
    per-instance busy time; the count imbalance is reported alongside.
    """
    instance_work = run.instance_busy_times(op.name)
    total_work = sum(instance_work)
    if total_work > 0 and len(instance_work) > 1:
        mean = total_work / len(instance_work)
        worst = max(range(len(instance_work)),
                    key=instance_work.__getitem__)
        ratio = instance_work[worst] / mean
        share = instance_work[worst] / total_work
        quantity = "work"
    else:
        total = sum(op.queue_activations)
        if total == 0 or not op.queue_activations:
            return None
        worst = max(range(len(op.queue_activations)),
                    key=op.queue_activations.__getitem__)
        ratio = op.queue_imbalance
        share = op.queue_activations[worst] / total
        quantity = "activations"
    if ratio <= INSTANCE_IMBALANCE_THRESHOLD:
        return None
    message = (f"instance {worst} of {op.name} holds {share:.0%} of its "
               f"{quantity} (max/mean {ratio:.1f} over "
               f"{op.instances} instances; activation-count max/mean "
               f"{op.queue_imbalance:.1f})")
    if op.trigger_mode == TRIGGERED:
        kind = FRAGMENT_SKEW
        hint = ("fragment-size skew (attribution skew): the stored "
                "fragments are uneven; LPT consumption schedules the "
                "large activations first, and the grain knob "
                "(grain=k) splits them — see Figure 13")
    else:
        kind = REDISTRIBUTION_SKEW
        hint = ("redistribution skew: the transmit's hash placement "
                "floods few consumer queues; LPT or finer "
                "fragmentation (a higher degree of partitioning) "
                "spreads the per-queue load — see Figures 12/17")
    return Finding(kind, op.name, (ratio - 1.0) * work_share, ratio,
                   message, hint)


def _thread_finding(op: OpView, run: ObservedRun,
                    work_share: float) -> Finding | None:
    busy = run.thread_busy_times(op.name)
    if not busy or op.threads <= 1:
        return None
    total = sum(busy.values())
    if total <= 0:
        return None
    mean = total / op.threads
    worst = max(busy, key=busy.__getitem__)
    ratio = busy[worst] / mean
    if ratio <= THREAD_IMBALANCE_THRESHOLD:
        return None
    message = (f"thread {worst} did {busy[worst]:.3f}s of {op.name}'s "
               f"{total:.3f}s busy time (max/mean {ratio:.1f} over "
               f"{op.threads} threads)")
    hint = ("a straggler thread: shared queues with secondary access "
            "normally absorb this — check allow_secondary and the "
            "consumption strategy (LPT when a few large activations "
            "dominate, Section 5.4)")
    return Finding(THREAD_IMBALANCE, op.name, (ratio - 1.0) * work_share,
                   ratio, message, hint)


def _steal_finding(op: OpView, work_share: float) -> Finding | None:
    ratio = op.steal_ratio
    if ratio <= STEAL_THRESHOLD:
        return None
    message = (f"{op.secondary_accesses} of {op.dequeue_batches} dequeue "
               f"batches ({ratio:.0%}) came from secondary queues")
    hint = ("heavy stealing is the design absorbing placement skew, but "
            "each secondary access pays the extra mutex cost; if it "
            "persists, re-partition (align main-queue placement with "
            "the load) or lower the thread count")
    return Finding(STEAL_PRESSURE, op.name, ratio * work_share, ratio,
                   message, hint)


def _idle_finding(op: OpView, work_share: float) -> Finding | None:
    fraction = op.idle_fraction
    if fraction <= IDLE_THRESHOLD:
        return None
    message = (f"{op.name}'s pool of {op.threads} threads was idle "
               f"{fraction:.0%} of its accounted lifetime")
    hint = ("an oversized pool or upstream starvation: fewer threads "
            "(scheduler step 3 splits per-operator), or rebalance the "
            "chain split if a pipelined producer cannot keep up")
    return Finding(IDLE_POOL, op.name, fraction * work_share, fraction,
                   message, hint)


def diagnose_imbalance(source) -> list[Finding]:
    """Score every operator; return findings ranked worst-first.

    *source* is anything :meth:`ObservedRun.of` accepts (a live
    observed execution, a reloaded log, or a JSONL path).
    """
    run = ObservedRun.of(source)
    total_busy = sum(op.busy_time for op in run.ops.values())
    findings: list[Finding] = []
    for op in run.ops.values():
        work_share = op.busy_time / total_busy if total_busy > 0 else 0.0
        for finding in (
            _instance_skew_finding(op, run, work_share),
            _thread_finding(op, run, work_share),
            _steal_finding(op, work_share),
            _idle_finding(op, work_share),
        ):
            if finding is not None:
                findings.append(finding)
    findings.sort(key=lambda f: (-f.severity, f.operation, f.kind))
    return findings


def render_findings(findings: list[Finding]) -> str:
    """The ranked findings as a text report."""
    if not findings:
        return "imbalance doctor: no findings — load is balanced"
    lines = [f"imbalance doctor: {len(findings)} finding"
             f"{'s' if len(findings) != 1 else ''} (worst first)"]
    lines.extend(finding.render() for finding in findings)
    return "\n".join(lines)
