"""Critical-path analysis over the activation dependency graph.

*Which operator limits the response time?*  Garofalakis & Ioannidis
frame parallel query response time as the length of the longest
dependency chain through the schedule; this module extracts exactly
that chain from an observed execution.

The dependency graph is implicit in the span trace plus the event
stream:

* **same-thread edges** — a thread executes serially, so each span
  depends on the previous span of its thread; any gap between them is
  time the thread spent polling, parked, or blocked;
* **cross-operation edges** — a pipelined consumer's activation
  depends on the producer activation that enqueued its input row.
  Individual rows are not tracked post-mortem, so the edge used is the
  *latest producer span finishing at or before the consumer span
  starts* — the tightest dependency consistent with the engine's
  progressive-visibility rule (a producer's rows become consumable no
  later than its span end).

A longest-path dynamic program over this DAG yields, for every span,
the heaviest chain of *dependent work* ending at it: the score is the
chain's total busy time — inter-span gaps ride along (they become the
wait/block segments of the report) but score nothing, otherwise any
thread alive for the whole wave would trivially "win" with a chain
that is all idle gap.  The **critical path** is the heaviest chain
overall.  Two invariants follow structurally and are pinned by the
tests:

* every chain is a sequence of non-overlapping, contiguous time
  segments, so its length (busy plus gaps) is at most the elapsed
  virtual time;
* the same-thread edges alone form a chain per thread, so the
  critical path carries at least the busiest single thread's busy
  time (and hence at least any operator's busiest-thread time).

Gaps on the path are attributed per operator: a gap closed by a
cross-operation edge is *queue-wait charged to the producer* (the
consumer starved waiting for input); a same-thread gap is queue-wait
charged to the span's own operator; any portion of a gap during which
the thread sat in a back-pressure block is *capacity-block charged to
the blocking consumer*.  Allcache penalties of on-path spans complete
the blame.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.diag.run import ObservedRun
from repro.errors import ReproError
from repro.obs.bus import BLOCK, MEMORY, UNBLOCK

#: Time tolerance for dependency edges: a producer span ending within
#: EPS after a consumer span starts still counts as its predecessor
#: (float accumulation across thread clocks).
EPS = 1e-9

#: Segment kinds.
BUSY = "busy"
WAIT = "wait"      # queue-wait: no consumable input (or polling)
BLOCKED = "block"  # back-pressure: downstream queue at capacity


@dataclass(frozen=True)
class PathSegment:
    """One contiguous time segment of the critical path."""

    kind: str            # BUSY, WAIT or BLOCKED
    operation: str       # operation of the span this segment leads to
    charged_to: str      # operation the segment's time is blamed on
    thread_id: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class OperatorBlame:
    """Where one operator's share of the critical path went."""

    operation: str
    busy: float = 0.0     # on-path activation/finalize work
    wait: float = 0.0     # queue-wait charged to this operator
    block: float = 0.0    # capacity-block charged to this operator
    penalty: float = 0.0  # Allcache penalties inside on-path spans

    @property
    def total(self) -> float:
        """Path time charged to this operator (penalty is a subset of
        busy — the remote-access surcharge is paid inside the span —
        so it is reported but not added again)."""
        return self.busy + self.wait + self.block

    def to_json(self) -> dict:
        return {"busy": self.busy, "wait": self.wait, "block": self.block,
                "penalty": self.penalty, "total": self.total}


@dataclass
class CriticalPath:
    """The heaviest dependency chain of one observed execution."""

    segments: list[PathSegment]
    blame: dict[str, OperatorBlame] = field(default_factory=dict)

    @property
    def start(self) -> float:
        return self.segments[0].start

    @property
    def end(self) -> float:
        return self.segments[-1].end

    @property
    def length(self) -> float:
        """Path length = sum of segment durations (= end - start, the
        segments being contiguous)."""
        return sum(segment.duration for segment in self.segments)

    @property
    def bottleneck(self) -> str:
        """The operator with the largest total blame."""
        return max(self.blame.values(), key=lambda b: b.total).operation

    def busy_total(self) -> float:
        return sum(b.busy for b in self.blame.values())

    def wait_total(self) -> float:
        return sum(b.wait for b in self.blame.values())

    def block_total(self) -> float:
        return sum(b.block for b in self.blame.values())

    def to_json(self) -> dict:
        """Compact JSON form (what the run registry persists)."""
        return {
            "length": self.length,
            "start": self.start,
            "end": self.end,
            "segments": len(self.segments),
            "bottleneck": self.bottleneck,
            "blame": {name: blame.to_json()
                      for name, blame in sorted(self.blame.items())},
        }

    def render(self) -> str:
        """Human-readable report: blame table plus a hop summary."""
        lines = [
            f"critical path: {self.length:.3f}s over "
            f"{len(self.segments)} segments "
            f"({self.start:.3f}s .. {self.end:.3f}s virtual)",
            f"  busy {self.busy_total():.3f}s"
            f" + queue-wait {self.wait_total():.3f}s"
            f" + capacity-block {self.block_total():.3f}s",
            f"  bottleneck operator: {self.bottleneck}",
            "  per-operator blame (on-path time):",
        ]
        ranked = sorted(self.blame.values(), key=lambda b: -b.total)
        for blame in ranked:
            share = blame.total / self.length if self.length > 0 else 0.0
            lines.append(
                f"    {blame.operation:<12} total={blame.total:8.3f}s "
                f"({share:5.1%})  busy={blame.busy:.3f}s "
                f"wait={blame.wait:.3f}s block={blame.block:.3f}s "
                f"allcache={blame.penalty:.4f}s")
        hops = _hop_summary(self.segments)
        lines.append(f"  path shape: {hops}")
        return "\n".join(lines)


def _hop_summary(segments: list[PathSegment], limit: int = 12) -> str:
    """Compress the segment chain to `op(busy)` hops for display."""
    hops: list[str] = []
    for segment in segments:
        if segment.kind != BUSY:
            continue
        if hops and hops[-1].startswith(segment.operation + "("):
            continue
        hops.append(f"{segment.operation}(t{segment.thread_id})")
    if len(hops) > limit:
        head = hops[: limit // 2]
        tail = hops[-(limit - limit // 2):]
        hops = head + [f"... {len(hops) - limit} hops ..."] + tail
    return " -> ".join(hops) if hops else "(empty)"


# -- block intervals ---------------------------------------------------------

def _block_intervals(run: ObservedRun
                     ) -> dict[int, list[tuple[float, float, str]]]:
    """Per-thread ``(start, end, blocking_consumer)`` back-pressure
    intervals, from paired ``queue.block`` / ``queue.unblock`` events."""
    opened: dict[int, tuple[float, str]] = {}
    intervals: dict[int, list[tuple[float, float, str]]] = {}
    for event in run.events:
        if event.kind == BLOCK and event.thread_id is not None:
            target = (event.data or {}).get("target", event.operation or "?")
            opened[event.thread_id] = (event.t, target)
        elif event.kind == UNBLOCK and event.thread_id is not None:
            start = opened.pop(event.thread_id, None)
            if start is not None:
                intervals.setdefault(event.thread_id, []).append(
                    (start[0], event.t, start[1]))
    for spans in intervals.values():
        spans.sort()
    return intervals


def _split_gap(gap_start: float, gap_end: float, thread_id: int,
               operation: str, wait_charge: str,
               blocks: dict[int, list[tuple[float, float, str]]]
               ) -> list[PathSegment]:
    """Split one inter-span gap into wait/block segments (forward
    order), charging block time to the blocking consumer."""
    segments: list[PathSegment] = []
    cursor = gap_start
    for b_start, b_end, target in blocks.get(thread_id, ()):
        if b_end <= gap_start or b_start >= gap_end:
            continue
        lo = max(b_start, cursor)
        hi = min(b_end, gap_end)
        if lo > cursor:
            segments.append(PathSegment(WAIT, operation, wait_charge,
                                        thread_id, cursor, lo))
        if hi > lo:
            segments.append(PathSegment(BLOCKED, operation, target,
                                        thread_id, lo, hi))
            cursor = hi
    if gap_end > cursor:
        segments.append(PathSegment(WAIT, operation, wait_charge,
                                    thread_id, cursor, gap_end))
    return segments


# -- the longest-path dynamic program ----------------------------------------

def critical_path(source) -> CriticalPath:
    """Extract the critical path of an observed execution.

    *source* is anything :meth:`ObservedRun.of` accepts: a live
    observed :class:`~repro.engine.metrics.QueryExecution`, a
    :class:`~repro.obs.export.LoadedRun`, or a JSONL log path.
    """
    run = ObservedRun.of(source)
    spans = run.trace.events
    if not spans:
        raise ReproError("observed run has an empty span trace; "
                         "nothing to extract a critical path from")

    # Same-thread predecessor of every span.
    prev_on_thread: dict[int, int | None] = {}
    order_by_thread: dict[int, list[int]] = {}
    for i, span in enumerate(spans):
        order_by_thread.setdefault(span.thread_id, []).append(i)
    for indices in order_by_thread.values():
        indices.sort(key=lambda i: (spans[i].start, spans[i].end))
        previous: int | None = None
        for i in indices:
            prev_on_thread[i] = previous
            previous = i

    # Per-producer-operation spans sorted by end, for the
    # latest-finishing-before-start lookup.
    by_op: dict[str, list[int]] = {}
    for i, span in enumerate(spans):
        by_op.setdefault(span.operation, []).append(i)
    op_ends: dict[str, list[float]] = {}
    for name, indices in by_op.items():
        indices.sort(key=lambda i: (spans[i].end, spans[i].start))
        op_ends[name] = [spans[i].end for i in indices]

    # Heaviest chain ending at each span, in dependency-safe order
    # (every predecessor ends no later than its successor starts, so
    # (end, start) order visits predecessors first).  The score is the
    # chain's total busy time; gaps are attributed during backtrack
    # but score nothing.
    chain: dict[int, float] = {}
    choice: dict[int, int | None] = {}
    processed_ends: list[float] = []
    prefix_best: list[int] = []  # argmax chain over processed[:k+1]
    for i in sorted(range(len(spans)),
                    key=lambda i: (spans[i].end, spans[i].start)):
        span = spans[i]
        best_len = span.duration
        best_pred: int | None = None
        candidates: list[int] = []
        same = prev_on_thread[i]
        if same is not None:
            candidates.append(same)
        producers = run.producers_of(span.operation)
        for producer in producers:
            indices = by_op.get(producer)
            if not indices:
                continue
            j = bisect_right(op_ends[producer], span.start + EPS) - 1
            if j >= 0:
                candidates.append(indices[j])
        if same is None and not producers:
            # Wave barrier: the first span of a thread running a
            # producer-less (triggered) operation was seeded only after
            # every earlier wave completed, so the heaviest chain
            # finishing before it is a genuine predecessor.
            j = bisect_right(processed_ends, span.start + EPS) - 1
            if j >= 0:
                candidates.append(prefix_best[j])
        for pred in candidates:
            if pred not in chain:  # zero-width tie not yet visited
                continue
            pred_end = spans[pred].end
            if pred_end > span.start + EPS:
                continue
            length = chain[pred] + span.duration
            if length > best_len:
                best_len = length
                best_pred = pred
        chain[i] = best_len
        choice[i] = best_pred
        processed_ends.append(span.end)
        if prefix_best and chain[prefix_best[-1]] >= best_len:
            prefix_best.append(prefix_best[-1])
        else:
            prefix_best.append(i)

    tip = max(chain, key=chain.__getitem__)
    blocks = _block_intervals(run)

    # Backtrack, emitting contiguous segments in forward order.
    reversed_segments: list[PathSegment] = []
    i: int | None = tip
    on_path: list[int] = []
    while i is not None:
        span = spans[i]
        on_path.append(i)
        reversed_segments.append(PathSegment(
            BUSY, span.operation, span.operation, span.thread_id,
            span.start, span.end))
        pred = choice[i]
        if pred is not None:
            pred_span = spans[pred]
            gap_start = min(pred_span.end, span.start)
            if span.start - gap_start > 0.0:
                # Cross-operation starvation is the producer's fault;
                # a same-thread gap is the operator's own wait.
                wait_charge = (pred_span.operation
                               if pred_span.operation != span.operation
                               else span.operation)
                reversed_segments.extend(reversed(_split_gap(
                    gap_start, span.start, span.thread_id,
                    span.operation, wait_charge, blocks)))
        i = pred

    segments = list(reversed(reversed_segments))
    blame: dict[str, OperatorBlame] = {}

    def _blame(operation: str) -> OperatorBlame:
        entry = blame.get(operation)
        if entry is None:
            entry = blame[operation] = OperatorBlame(operation)
        return entry

    for segment in segments:
        entry = _blame(segment.charged_to)
        if segment.kind == BUSY:
            entry.busy += segment.duration
        elif segment.kind == BLOCKED:
            entry.block += segment.duration
        else:
            entry.wait += segment.duration

    _attribute_penalties(run, spans, on_path, _blame)
    return CriticalPath(segments=segments, blame=blame)


def _attribute_penalties(run: ObservedRun, spans, on_path: list[int],
                         get_blame) -> None:
    """Sum Allcache penalties of on-path spans into the blame table.

    Activation penalties are emitted at the span's start instant,
    finalize penalties at its end; matching is per-thread by interval
    containment (with tolerance), each event charged at most once.
    """
    path_by_thread: dict[int, list[tuple[float, float, str]]] = {}
    for i in on_path:
        span = spans[i]
        path_by_thread.setdefault(span.thread_id, []).append(
            (span.start, span.end, span.operation))
    for intervals in path_by_thread.values():
        intervals.sort()
    for event in run.events:
        if event.kind != MEMORY or event.thread_id is None:
            continue
        intervals = path_by_thread.get(event.thread_id)
        if not intervals:
            continue
        starts = [interval[0] for interval in intervals]
        j = bisect_right(starts, event.t + EPS) - 1
        if j < 0:
            continue
        start, end, operation = intervals[j]
        if event.t <= end + EPS:
            get_blame(operation).penalty += (event.data or {}).get(
                "penalty", 0.0)
