"""One-call diagnosis: critical path + imbalance doctor, one report.

:func:`diagnose` is the layer's front door — everything else
(:mod:`repro.diag.critical_path`, :mod:`repro.diag.imbalance`,
:mod:`repro.diag.registry`) is reachable from its result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.diag.critical_path import CriticalPath, critical_path
from repro.diag.imbalance import Finding, diagnose_imbalance, render_findings
from repro.diag.run import ObservedRun


@dataclass
class Diagnosis:
    """The full post-mortem of one observed execution."""

    run: ObservedRun
    critical_path: CriticalPath
    findings: list[Finding]

    @property
    def bottleneck(self) -> str:
        return self.critical_path.bottleneck

    def render(self) -> str:
        run = self.run
        lines = [
            f"diagnosis ({run.source} run): "
            f"elapsed {run.response_time:.3f}s virtual, "
            f"start-up {run.startup_time:.3f}s, "
            f"{run.total_threads} threads over {len(run.ops)} operations",
            "",
            self.critical_path.render(),
            "",
            render_findings(self.findings),
        ]
        return "\n".join(lines)


def diagnose(source) -> Diagnosis:
    """Diagnose an observed execution (live, reloaded, or a JSONL path).

    Produces the critical path through the activation dependency graph
    and the imbalance doctor's ranked findings.  Purely post-mortem:
    nothing here touches the engine or charges virtual time.
    """
    run = ObservedRun.of(source)
    return Diagnosis(
        run=run,
        critical_path=critical_path(run),
        findings=diagnose_imbalance(run),
    )
