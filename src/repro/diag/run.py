"""A uniform view over an observed execution, live or reloaded.

The diagnostics layer never touches the engine: everything it needs —
per-operation aggregates, the structured event stream, the activation
span trace — exists both on a live
:class:`~repro.engine.metrics.QueryExecution` (run with
``ExecutionOptions(observe=True)``) and in a reloaded JSONL event log
(:func:`repro.obs.export.read_jsonl`).  :class:`ObservedRun` adapts
either source to one shape, which is what makes "diagnosing from a
reloaded log gives results identical to diagnosing the live
execution" true by construction: both paths feed the analyses the
exact same numbers (floats survive the JSON round trip bit-exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from bisect import bisect_right

from repro.engine.trace import ExecutionTrace
from repro.errors import ReproError
from repro.obs.bus import DEQUEUE, ENQUEUE, Event
from repro.obs.export import LoadedRun, read_jsonl

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.engine.metrics import QueryExecution


@dataclass(frozen=True)
class OpView:
    """Per-operation aggregates, identical from both sources."""

    name: str
    trigger_mode: str
    instances: int
    threads: int
    strategy: str
    started_at: float
    finished_at: float
    busy_time: float
    idle_time: float
    work: float
    activations: int
    queue_activations: tuple[int, ...]
    enqueues: int
    dequeue_batches: int
    secondary_accesses: int
    polls: int
    memory_penalty: float

    @property
    def steal_ratio(self) -> float:
        """Fraction of dequeue batches taken from a secondary queue."""
        if self.dequeue_batches == 0:
            return 0.0
        return self.secondary_accesses / self.dequeue_batches

    @property
    def queue_imbalance(self) -> float:
        """Max/mean activations per instance queue (1.0 = even)."""
        total = sum(self.queue_activations)
        if total == 0 or not self.queue_activations:
            return 1.0
        mean = total / len(self.queue_activations)
        return max(self.queue_activations) / mean

    @property
    def idle_fraction(self) -> float:
        """Idle share of the pool's accounted lifetime."""
        lifetime = self.busy_time + self.idle_time
        if lifetime <= 0:
            return 0.0
        return self.idle_time / lifetime


@dataclass
class ObservedRun:
    """One observed execution, normalized for analysis."""

    response_time: float
    startup_time: float
    total_threads: int
    dilation: float
    ops: dict[str, OpView]
    events: list[Event]
    trace: ExecutionTrace
    source: str = "live"
    status: str = "done"
    """Terminal status of the run (``done`` / ``cancelled`` /
    ``timed_out`` / ``failed``): a cancelled run's diagnosis is a
    partial post-mortem, not a performance report."""

    #: consumer operation -> producer operations, derived lazily from
    #: the ``queue.enqueue`` events (which carry ``consumer=...``).
    _producers: dict[str, set[str]] | None = field(
        default=None, repr=False, compare=False)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_execution(cls, execution: "QueryExecution") -> "ObservedRun":
        """Adapt a live observed execution."""
        if execution.obs is None or execution.trace is None:
            raise ReproError(
                "execution was not observed; run with ExecutionOptions("
                "observe=True) to diagnose it")
        ops = {
            name: OpView(
                name=name,
                trigger_mode=op.trigger_mode,
                instances=op.instances,
                threads=op.threads,
                strategy=op.strategy,
                started_at=op.started_at,
                finished_at=op.finished_at,
                busy_time=op.busy_time,
                idle_time=op.idle_time,
                work=op.work,
                activations=op.activations,
                queue_activations=tuple(op.queue_activations),
                enqueues=op.enqueues,
                dequeue_batches=op.dequeue_batches,
                secondary_accesses=op.secondary_accesses,
                polls=op.polls,
                memory_penalty=op.memory_penalty,
            )
            for name, op in execution.operations.items()
        }
        return cls(
            response_time=execution.response_time,
            startup_time=execution.startup_time,
            total_threads=execution.total_threads,
            dilation=execution.dilation,
            ops=ops,
            events=list(execution.obs.events),
            trace=execution.trace,
            source="live",
            status=execution.status,
        )

    @classmethod
    def from_loaded(cls, loaded: LoadedRun) -> "ObservedRun":
        """Adapt a reloaded JSONL event log."""
        if loaded.schema < 2:
            raise ReproError(
                f"event log has schema {loaded.schema}; diagnosis needs the "
                f"schema-2 span and timing records — re-export the run")
        ops = {
            record["name"]: OpView(
                name=record["name"],
                trigger_mode=record["trigger_mode"],
                instances=record["instances"],
                threads=record["threads"],
                strategy=record["strategy"],
                started_at=record["started_at"],
                finished_at=record["finished_at"],
                busy_time=record["busy_time"],
                idle_time=record["idle_time"],
                work=record["work"],
                activations=record["activations"],
                queue_activations=tuple(record["queue_activations"]),
                enqueues=record["enqueues"],
                dequeue_batches=record["dequeue_batches"],
                secondary_accesses=record["secondary_accesses"],
                polls=record["polls"],
                memory_penalty=record["memory_penalty"],
            )
            for record in loaded.ops
        }
        return cls(
            response_time=loaded.meta["response_time"],
            startup_time=loaded.meta["startup_time"],
            total_threads=loaded.meta["total_threads"],
            dilation=loaded.meta["dilation"],
            ops=ops,
            events=list(loaded.events),
            trace=loaded.trace,
            source="jsonl",
            status=loaded.status,
        )

    @classmethod
    def of(cls, source) -> "ObservedRun":
        """Coerce any diagnosable source: an :class:`ObservedRun`, a
        live execution, a :class:`LoadedRun`, or a JSONL path."""
        if isinstance(source, cls):
            return source
        if isinstance(source, LoadedRun):
            return cls.from_loaded(source)
        if isinstance(source, (str, Path)):
            return cls.from_loaded(read_jsonl(source))
        return cls.from_execution(source)

    # -- derived views ------------------------------------------------------

    def producers_of(self, operation: str) -> set[str]:
        """Operations that feed *operation* through a pipeline edge."""
        if self._producers is None:
            producers: dict[str, set[str]] = {}
            for event in self.events:
                if event.kind == ENQUEUE and event.data is not None:
                    consumer = event.data.get("consumer")
                    if consumer is not None and event.operation is not None:
                        producers.setdefault(consumer, set()).add(
                            event.operation)
            self._producers = producers
        return self._producers.get(operation, set())

    def thread_busy_times(self, operation: str | None = None
                          ) -> dict[int, float]:
        """Per-thread busy time from the span trace (optionally one
        operation's pool only)."""
        busy: dict[int, float] = {}
        for span in self.trace.events:
            if operation is not None and span.operation != operation:
                continue
            busy[span.thread_id] = busy.get(span.thread_id, 0.0) + \
                span.duration
        return busy

    def instance_busy_times(self, operation: str) -> list[float]:
        """Per-instance activation work, reconstructed post-mortem.

        The engine does not meter cost per queue (that would be
        hot-path work), but the event stream implies it: a thread
        processes the batch it just dequeued before dequeuing again,
        so every activation span belongs to the *latest*
        ``queue.dequeue`` of its thread at or before the span's start,
        and that event names the instance.  This is what exposes
        *work* skew — the Figure 12 signature, where the uniform
        stream sends equal activation *counts* to every instance but
        the skewed stored operand makes some instances' activations
        arbitrarily more expensive.
        """
        op = self.ops[operation] if operation in self.ops else None
        instances = op.instances if op is not None else 0
        dequeues: dict[int, tuple[list[float], list[int]]] = {}
        for event in self.events:
            if (event.kind == DEQUEUE and event.operation == operation
                    and event.thread_id is not None
                    and event.data is not None):
                times, targets = dequeues.setdefault(
                    event.thread_id, ([], []))
                times.append(event.t)
                targets.append(event.data["instance"])
                instances = max(instances, event.data["instance"] + 1)
        busy = [0.0] * instances
        for span in self.trace.events:
            if span.operation != operation or span.kind != "activation":
                continue
            thread_dequeues = dequeues.get(span.thread_id)
            if thread_dequeues is None:
                continue
            times, targets = thread_dequeues
            index = bisect_right(times, span.start + 1e-9) - 1
            if index >= 0:
                busy[targets[index]] += span.duration
        return busy
