"""The run registry: persisted run records and regression comparison.

``BENCH_engine.json`` keeps the wall-clock trajectory; this registry
keeps the *virtual-time* trajectory: every recorded run persists a
compact :class:`RunRecord` — metrics, critical path, imbalance
findings, optionally the scheduler's explained decisions — as one
JSON file under ``benchmarks/results/runs/``.  :func:`compare` then
turns any two records into a structured A/B / regression report:
elapsed and critical-path deltas against a tolerance gate, bottleneck
shift, and per-operator deltas.  That is the paper's §5 methodology
(Random vs LPT, degree sweeps) turned into a reusable primitive: *did
the change move the bottleneck, or just the clock?*
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.diag.report import Diagnosis, diagnose
from repro.errors import ReproError

#: Record format version, stored in every file.
RECORD_SCHEMA = 1

#: Where records live unless overridden (or the env var below is set).
DEFAULT_RUNS_DIR = Path("benchmarks/results/runs")

#: Environment override for the registry root (tests, CI sandboxes).
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: Default relative-elapsed tolerance of the regression gate.
DEFAULT_TOLERANCE = 0.05

_ID_SANITIZER = re.compile(r"[^A-Za-z0-9._-]+")


def sanitize_run_id(run_id: str) -> str:
    """Make *run_id* filesystem-safe (conservative allow-list)."""
    cleaned = _ID_SANITIZER.sub("_", run_id.strip())
    if not cleaned:
        raise ReproError(f"unusable run id {run_id!r}")
    return cleaned


@dataclass
class RunRecord:
    """One persisted run: enough to compare, small enough to commit."""

    run_id: str
    label: str
    created_at: str
    workload: dict
    elapsed: float
    startup: float
    total_threads: int
    dilation: float
    ops: list[dict]
    critical_path: dict
    findings: list[dict]
    explanation: list[dict] | None = None
    status: str = "done"
    #: Workload tail latency (p50/p95/p99/max/mean/count over the
    #: completed queries' end-to-end virtual latencies) and terminal
    #: status counts; ``None`` on single-query records and on records
    #: written before workload telemetry existed.
    latency: dict | None = None
    status_counts: dict | None = None
    schema: int = RECORD_SCHEMA

    @classmethod
    def from_diagnosis(cls, diagnosis: Diagnosis, run_id: str,
                       label: str = "", workload: dict | None = None,
                       explanation: list[dict] | None = None,
                       created_at: str | None = None) -> "RunRecord":
        """Distil one :class:`~repro.diag.report.Diagnosis`."""
        run = diagnosis.run
        ops = [
            {
                "name": op.name,
                "trigger_mode": op.trigger_mode,
                "instances": op.instances,
                "threads": op.threads,
                "strategy": op.strategy,
                "activations": op.activations,
                "busy_time": op.busy_time,
                "idle_time": op.idle_time,
                "work": op.work,
                "steal_ratio": op.steal_ratio,
                "queue_imbalance": op.queue_imbalance,
                "memory_penalty": op.memory_penalty,
            }
            for op in run.ops.values()
        ]
        if created_at is None:
            created_at = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
        return cls(
            run_id=sanitize_run_id(run_id),
            label=label,
            created_at=created_at,
            workload=dict(workload or {}),
            elapsed=run.response_time,
            startup=run.startup_time,
            total_threads=run.total_threads,
            dilation=run.dilation,
            ops=ops,
            critical_path=diagnosis.critical_path.to_json(),
            findings=[finding.to_json() for finding in diagnosis.findings],
            explanation=explanation,
            status=getattr(run, "status", "done"),
        )

    @classmethod
    def of(cls, source, run_id: str, **kwargs) -> "RunRecord":
        """Diagnose *source* (anything :func:`diagnose` accepts) and
        record it in one step."""
        return cls.from_diagnosis(diagnose(source), run_id, **kwargs)

    @classmethod
    def from_workload(cls, result, run_id: str, label: str = "",
                      workload: dict | None = None,
                      created_at: str | None = None) -> "RunRecord":
        """Distil one telemetry-enabled workload run.

        *result* is a :class:`~repro.workload.engine.WorkloadResult`
        with observability on; the record carries the makespan as
        ``elapsed`` plus the tail-latency percentiles and terminal
        status counts, so ``python -m repro compare`` gates workload
        runs on p95/p99 as well as the clock.
        """
        report = result.report()
        if created_at is None:
            created_at = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
        return cls(
            run_id=sanitize_run_id(run_id),
            label=label,
            created_at=created_at,
            workload=dict(workload or {}),
            elapsed=result.makespan,
            startup=0.0,
            total_threads=max(
                (e.total_threads for e in result.executions.values()),
                default=0),
            dilation=1.0,
            ops=[],
            critical_path={},
            findings=[],
            status="done",
            latency=dict(report.latency) or None,
            status_counts=dict(report.statuses),
        )

    # -- (de)serialization ---------------------------------------------------

    def to_json(self) -> dict:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "label": self.label,
            "created_at": self.created_at,
            "workload": self.workload,
            "elapsed": self.elapsed,
            "startup": self.startup,
            "total_threads": self.total_threads,
            "dilation": self.dilation,
            "ops": self.ops,
            "critical_path": self.critical_path,
            "findings": self.findings,
            "explanation": self.explanation,
            "status": self.status,
            "latency": self.latency,
            "status_counts": self.status_counts,
        }

    @classmethod
    def from_json(cls, document: dict) -> "RunRecord":
        if document.get("schema", 0) > RECORD_SCHEMA:
            raise ReproError(
                f"run record schema {document.get('schema')} is newer than "
                f"this reader (knows up to {RECORD_SCHEMA})")
        return cls(
            run_id=document["run_id"],
            label=document.get("label", ""),
            created_at=document.get("created_at", ""),
            workload=document.get("workload", {}),
            elapsed=document["elapsed"],
            startup=document["startup"],
            total_threads=document["total_threads"],
            dilation=document.get("dilation", 1.0),
            ops=document["ops"],
            critical_path=document["critical_path"],
            findings=document.get("findings", []),
            explanation=document.get("explanation"),
            status=document.get("status", "done"),
            latency=document.get("latency"),
            status_counts=document.get("status_counts"),
            schema=document.get("schema", RECORD_SCHEMA),
        )

    @property
    def bottleneck(self) -> str:
        return self.critical_path.get("bottleneck", "?")

    @property
    def top_finding(self) -> dict | None:
        return self.findings[0] if self.findings else None

    def op(self, name: str) -> dict | None:
        for entry in self.ops:
            if entry["name"] == name:
                return entry
        return None


class RunRegistry:
    """A directory of :class:`RunRecord` JSON files."""

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get(RUNS_DIR_ENV) or DEFAULT_RUNS_DIR
        self.root = Path(root)

    def path_of(self, run_id: str) -> Path:
        return self.root / f"{sanitize_run_id(run_id)}.json"

    def save(self, record: RunRecord) -> Path:
        """Persist (overwriting any previous record of the same id)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_of(record.run_id)
        path.write_text(json.dumps(record.to_json(), indent=1) + "\n",
                        encoding="utf-8")
        return path

    def load(self, run_id: str) -> RunRecord:
        path = self.path_of(run_id)
        if not path.exists():
            raise ReproError(
                f"no run {run_id!r} in {self.root} "
                f"(have: {', '.join(self.run_ids()) or 'none'})")
        return RunRecord.from_json(json.loads(path.read_text()))

    def run_ids(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))

    def record(self, source, run_id: str, **kwargs) -> Path:
        """Diagnose *source* and persist the record; returns the path."""
        return self.save(RunRecord.of(source, run_id, **kwargs))


# -- comparison --------------------------------------------------------------

@dataclass(frozen=True)
class OpDelta:
    """Per-operator A-to-B change."""

    operation: str
    busy_a: float
    busy_b: float
    blame_a: float
    blame_b: float

    @property
    def busy_delta(self) -> float:
        return self.busy_b - self.busy_a

    @property
    def blame_delta(self) -> float:
        return self.blame_b - self.blame_a


@dataclass
class RunComparison:
    """Structured A/B report between two run records."""

    a: RunRecord
    b: RunRecord
    tolerance: float
    elapsed_delta: float       # (b - a) / a, relative
    path_delta: float          # critical-path length delta, relative
    regressed: bool
    improved: bool
    bottleneck_shifted: bool
    op_deltas: list[OpDelta] = field(default_factory=list)
    #: Worst relative p95/p99 movement when both records carry
    #: workload latency percentiles; ``None`` otherwise.  Feeds the
    #: ``regressed`` gate like ``elapsed_delta`` does.
    tail_delta: float | None = None

    @property
    def clean(self) -> bool:
        """Neither gate tripped and the bottleneck stayed put."""
        return not (self.regressed or self.improved
                    or self.bottleneck_shifted)

    @property
    def verdict(self) -> str:
        if self.regressed:
            if (self.tail_delta is not None
                    and self.tail_delta > max(self.elapsed_delta, 0.0)):
                base = f"REGRESSION (+{self.tail_delta:.1%} tail latency)"
            else:
                base = f"REGRESSION (+{self.elapsed_delta:.1%} elapsed)"
        elif self.improved:
            base = f"improvement ({self.elapsed_delta:+.1%} elapsed)"
        else:
            base = (f"within tolerance ({self.elapsed_delta:+.1%} vs "
                    f"±{self.tolerance:.0%})")
        if self.bottleneck_shifted:
            base += (f"; bottleneck shifted "
                     f"{self.a.bottleneck} -> {self.b.bottleneck}")
        return base

    def to_json(self) -> dict:
        return {
            "a": self.a.run_id,
            "b": self.b.run_id,
            "tolerance": self.tolerance,
            "elapsed_a": self.a.elapsed,
            "elapsed_b": self.b.elapsed,
            "elapsed_delta": self.elapsed_delta,
            "path_delta": self.path_delta,
            "regressed": self.regressed,
            "improved": self.improved,
            "tail_delta": self.tail_delta,
            "bottleneck_a": self.a.bottleneck,
            "bottleneck_b": self.b.bottleneck,
            "bottleneck_shifted": self.bottleneck_shifted,
            "verdict": self.verdict,
            "ops": [
                {"operation": d.operation,
                 "busy_a": d.busy_a, "busy_b": d.busy_b,
                 "blame_a": d.blame_a, "blame_b": d.blame_b}
                for d in self.op_deltas
            ],
        }

    def render(self) -> str:
        a, b = self.a, self.b
        lines = [
            f"compare {a.run_id} (A) vs {b.run_id} (B): {self.verdict}",
            f"  elapsed       : {a.elapsed:.3f}s -> {b.elapsed:.3f}s "
            f"({self.elapsed_delta:+.1%})",
            f"  critical path : "
            f"{a.critical_path.get('length', 0.0):.3f}s -> "
            f"{b.critical_path.get('length', 0.0):.3f}s "
            f"({self.path_delta:+.1%})",
            f"  bottleneck    : {a.bottleneck} -> {b.bottleneck}"
            + ("  ** shifted **" if self.bottleneck_shifted else ""),
            f"  threads       : {a.total_threads} -> {b.total_threads}",
        ]
        if self.tail_delta is not None:
            lat_a, lat_b = a.latency or {}, b.latency or {}
            lines.append(
                f"  tail latency  : p95 {lat_a.get('p95', 0.0):.3f}s -> "
                f"{lat_b.get('p95', 0.0):.3f}s, p99 "
                f"{lat_a.get('p99', 0.0):.3f}s -> "
                f"{lat_b.get('p99', 0.0):.3f}s "
                f"(worst {self.tail_delta:+.1%})")
        if a.status_counts or b.status_counts:
            lines.append(
                f"  statuses      : {a.status_counts or {}} -> "
                f"{b.status_counts or {}}")
        lines.append("  per-operator (busy | on-path blame):")
        for delta in self.op_deltas:
            lines.append(
                f"    {delta.operation:<12} "
                f"busy {delta.busy_a:8.3f}s -> {delta.busy_b:8.3f}s "
                f"({delta.busy_delta:+8.3f}s)   "
                f"blame {delta.blame_a:8.3f}s -> {delta.blame_b:8.3f}s "
                f"({delta.blame_delta:+8.3f}s)")
        top_a, top_b = a.top_finding, b.top_finding
        if top_a or top_b:
            lines.append("  top finding:")
            lines.append(f"    A: " + _finding_line(top_a))
            lines.append(f"    B: " + _finding_line(top_b))
        return "\n".join(lines)


def _finding_line(finding: dict | None) -> str:
    if not finding:
        return "(none)"
    return (f"{finding['operation']}: {finding['kind']} "
            f"[severity {finding['severity']:.3f}]")


def _relative_delta(a: float, b: float) -> float:
    if a == 0:
        return 0.0 if b == 0 else float("inf")
    return (b - a) / a


def compare(a: RunRecord, b: RunRecord,
            tolerance: float = DEFAULT_TOLERANCE) -> RunComparison:
    """Compare run *b* against baseline *a*.

    The elapsed gate is relative: ``regressed`` when B's elapsed
    exceeds A's by more than *tolerance*, ``improved`` when it
    undercuts it by more.  When both records carry workload latency
    percentiles (:meth:`RunRecord.from_workload`), the worst relative
    p95/p99 movement is gated by the same tolerance — a workload can
    hold its makespan while its tail collapses, and that is a
    regression too.  The bottleneck shift compares the critical-path
    blame winners.  Per-operator rows cover the union of operations
    (0.0 where one side lacks the operation), ranked by the largest
    absolute blame movement.
    """
    elapsed_delta = _relative_delta(a.elapsed, b.elapsed)
    tail_delta = None
    if a.latency and b.latency:
        tail_moves = [
            _relative_delta(a.latency[q], b.latency[q])
            for q in ("p95", "p99") if q in a.latency and q in b.latency]
        tail_delta = max(tail_moves) if tail_moves else None
    path_delta = _relative_delta(a.critical_path.get("length", 0.0),
                                 b.critical_path.get("length", 0.0))
    blame_a = a.critical_path.get("blame", {})
    blame_b = b.critical_path.get("blame", {})
    names: list[str] = []
    for record in (a, b):
        for entry in record.ops:
            if entry["name"] not in names:
                names.append(entry["name"])
    deltas = []
    for name in names:
        op_a, op_b = a.op(name), b.op(name)
        deltas.append(OpDelta(
            operation=name,
            busy_a=op_a["busy_time"] if op_a else 0.0,
            busy_b=op_b["busy_time"] if op_b else 0.0,
            blame_a=blame_a.get(name, {}).get("total", 0.0),
            blame_b=blame_b.get(name, {}).get("total", 0.0),
        ))
    deltas.sort(key=lambda d: -abs(d.blame_delta))
    return RunComparison(
        a=a,
        b=b,
        tolerance=tolerance,
        elapsed_delta=elapsed_delta,
        path_delta=path_delta,
        regressed=(elapsed_delta > tolerance
                   or (tail_delta is not None and tail_delta > tolerance)),
        improved=elapsed_delta < -tolerance,
        bottleneck_shifted=a.bottleneck != b.bottleneck,
        op_deltas=deltas,
        tail_delta=tail_delta,
    )
