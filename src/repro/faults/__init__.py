"""Deterministic fault injection for the virtual-time engine.

The paper's claim is that DBS3's dynamic thread pools *absorb* adverse
run-time conditions — busy processors, skewed fragments, memory
shortage.  This package makes those conditions injectable: a seeded,
declarative :class:`FaultPlan` describes processor slowdown/stall
windows, disk latency/error spikes, mid-run memory pressure, and
transient activation failures; a :class:`FaultInjector` applies them
through guarded hooks in the simulator.  A run without a plan (the
default everywhere) is bit-identical to an engine without this
package.
"""

from repro.faults.injector import FaultInjector, io_faults
from repro.faults.plan import (
    ActivationFaults,
    DiskFault,
    FaultPlan,
    MemoryPressure,
    SlowdownWindow,
    StallWindow,
)

__all__ = [
    "ActivationFaults",
    "DiskFault",
    "FaultInjector",
    "FaultPlan",
    "MemoryPressure",
    "SlowdownWindow",
    "StallWindow",
    "io_faults",
]
