"""Declarative, seeded fault plans.

A :class:`FaultPlan` is pure data: typed descriptions of *what* should
go wrong and *when*, in virtual time.  It carries its own seed, so the
same plan replayed against the same workload produces the same faults
activation-for-activation — the chaos harness and the determinism
tests rely on this.  Applying a plan is the
:class:`~repro.faults.injector.FaultInjector`'s job.

Fault vocabulary (all windows are half-open ``[t0, t1)`` in virtual
seconds):

* :class:`SlowdownWindow` — targeted threads process work ``factor``
  times slower inside the window (a processor busy with outside work).
* :class:`StallWindow` — targeted threads freeze entirely inside the
  window (a page fault storm, a preempted processor).
* :class:`DiskFault` — triggered (fragment-scan) activations of one
  operator pay extra I/O latency and/or fail transiently at a seeded
  rate.
* :class:`MemoryPressure` — at instant ``at`` the machine's Allcache
  budget shrinks to ``factor`` of its current size; eviction pressure
  follows naturally.
* :class:`ActivationFaults` — any activation of the targeted operator
  fails transiently at a seeded rate and is retried with capped
  exponential virtual-time backoff; after ``max_retries`` failed
  attempts the query aborts with
  :class:`~repro.errors.ExecutionFaultError`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields

from repro.errors import FaultError


def _check_window(t0: float, t1: float) -> None:
    if t0 < 0 or t1 <= t0:
        raise FaultError(f"fault window [{t0}, {t1}) is empty or negative")


def _check_rate(rate: float, label: str) -> None:
    if not 0.0 <= rate <= 1.0:
        raise FaultError(f"{label} must be within [0, 1], got {rate}")


@dataclass(frozen=True)
class SlowdownWindow:
    """Targeted threads run ``factor`` times slower during ``[t0, t1)``.

    ``operation``/``thread_ids`` select the victims; ``None`` matches
    everything, so ``SlowdownWindow(0.0, 1.0, 4.0)`` slows the whole
    machine.  Overlapping windows multiply.
    """

    t0: float
    t1: float
    factor: float
    operation: str | None = None
    thread_ids: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        _check_window(self.t0, self.t1)
        if self.factor < 1.0:
            raise FaultError(
                f"slowdown factor must be >= 1 (got {self.factor}); "
                "factors below 1 would model a speed-up, not a fault")


@dataclass(frozen=True)
class StallWindow:
    """Targeted threads freeze entirely during ``[t0, t1)``."""

    t0: float
    t1: float
    operation: str | None = None
    thread_ids: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        _check_window(self.t0, self.t1)


@dataclass(frozen=True)
class DiskFault:
    """I/O trouble on one operator's fragment scans.

    Applies to *triggered* (control/chunk) activations only — the ones
    that model reading a fragment off storage.  ``extra_latency`` is
    added to every such activation's cost inside the window;
    ``error_rate`` makes the scan fail transiently (retried like an
    :class:`ActivationFaults` failure).
    """

    operation: str
    extra_latency: float = 0.0
    error_rate: float = 0.0
    instances: tuple[int, ...] | None = None
    t0: float = 0.0
    t1: float = float("inf")
    max_retries: int = 5
    backoff: float = 0.01
    backoff_cap: float = 0.16

    def __post_init__(self) -> None:
        if self.t0 < 0 or self.t1 <= self.t0:
            raise FaultError(
                f"disk fault window [{self.t0}, {self.t1}) is empty")
        if self.extra_latency < 0:
            raise FaultError("extra_latency must be >= 0")
        _check_rate(self.error_rate, "error_rate")
        if self.max_retries < 0 or self.backoff <= 0 or self.backoff_cap <= 0:
            raise FaultError("retry parameters must be positive")


@dataclass(frozen=True)
class MemoryPressure:
    """At instant ``at`` the Allcache budget shrinks to ``factor`` of
    its current size (another workload grabbed the memory)."""

    at: float
    factor: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError("memory pressure instant must be >= 0")
        if not 0.0 < self.factor < 1.0:
            raise FaultError(
                f"memory pressure factor must be in (0, 1), got {self.factor}")


@dataclass(frozen=True)
class ActivationFaults:
    """Transient activation failures for one operator (or all of them).

    Each processing attempt of a matching activation fails with
    probability ``rate`` (drawn from the plan's seeded RNG).  A failed
    attempt charges the wasted work, then re-enqueues the *same*
    activation at ``now + backoff`` through the normal queue, so the
    Random/LPT consumption strategies redistribute the retry; the
    backoff doubles per attempt up to ``backoff_cap``.  The attempt
    after ``max_retries`` failures aborts the query.
    """

    operation: str | None = None
    rate: float = 0.0
    max_retries: int = 3
    backoff: float = 0.01
    backoff_cap: float = 0.16
    wasted_cost: float | None = None

    def __post_init__(self) -> None:
        _check_rate(self.rate, "activation fault rate")
        if self.max_retries < 0 or self.backoff <= 0 or self.backoff_cap <= 0:
            raise FaultError("retry parameters must be positive")
        if self.wasted_cost is not None and self.wasted_cost < 0:
            raise FaultError("wasted_cost must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded bundle of faults to inject into one run.

    An empty plan (``FaultPlan()``) injects nothing; attaching it to a
    run must leave the run bit-identical to not attaching a plan at
    all — the fault-free-parity invariant the chaos harness asserts.
    """

    seed: int = 0
    slowdowns: tuple[SlowdownWindow, ...] = ()
    stalls: tuple[StallWindow, ...] = ()
    disk: tuple[DiskFault, ...] = ()
    memory: tuple[MemoryPressure, ...] = ()
    activations: tuple[ActivationFaults, ...] = ()
    io_error_paths: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in ("slowdowns", "stalls", "disk", "memory",
                     "activations", "io_error_paths"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                raise FaultError(f"FaultPlan.{name} must be a tuple")

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (self.slowdowns or self.stalls or self.disk
                    or self.memory or self.activations
                    or self.io_error_paths)

    def describe(self) -> str:
        """One line per fault, for the chaos CLI."""
        lines = [f"fault plan (seed={self.seed})"]
        for group in fields(self):
            if group.name in ("seed",):
                continue
            for item in getattr(self, group.name):
                lines.append(f"  {item!r}")
        if self.is_empty:
            lines.append("  (empty)")
        return "\n".join(lines)

    @classmethod
    def generate(cls, seed: int, operations: tuple[str, ...],
                 horizon: float = 1.0) -> "FaultPlan":
        """A random-but-reproducible plan for chaos sweeps.

        Draws every fault from ``random.Random(seed)``: one or two
        slowdown windows, possibly a stall, low-rate transient
        activation failures with generous retry budgets (the sweep
        asserts invariants of *surviving* runs; aborts are exercised
        by dedicated tests), and possibly memory pressure.
        ``operations`` are the operator names eligible as targets;
        ``horizon`` scales the windows to the expected run length.
        """
        if not operations:
            raise FaultError("generate() needs at least one operation name")
        rng = random.Random(seed)
        slowdowns = []
        for _ in range(rng.randint(1, 2)):
            t0 = rng.uniform(0.0, 0.5 * horizon)
            slowdowns.append(SlowdownWindow(
                t0=t0,
                t1=t0 + rng.uniform(0.1, 0.6) * horizon,
                factor=rng.uniform(1.5, 6.0),
                operation=rng.choice(list(operations) + [None]),
            ))
        stalls = []
        if rng.random() < 0.5:
            t0 = rng.uniform(0.0, 0.4 * horizon)
            stalls.append(StallWindow(
                t0=t0, t1=t0 + rng.uniform(0.05, 0.2) * horizon,
                operation=rng.choice(operations)))
        activations = [ActivationFaults(
            operation=rng.choice(operations),
            rate=rng.uniform(0.01, 0.10),
            max_retries=25,
            backoff=rng.uniform(0.002, 0.01),
            backoff_cap=0.08,
        )]
        memory = []
        if rng.random() < 0.5:
            memory.append(MemoryPressure(
                at=rng.uniform(0.1, 0.6) * horizon,
                factor=rng.uniform(0.3, 0.8)))
        return cls(
            seed=seed,
            slowdowns=tuple(slowdowns),
            stalls=tuple(stalls),
            memory=tuple(memory),
            activations=tuple(activations),
        )
